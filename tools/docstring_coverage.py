#!/usr/bin/env python3
"""Docstring-coverage checker (stdlib-only ``interrogate`` equivalent).

Walks the AST of every ``.py`` file under the given paths and counts
docstrings on *public API surface*: modules, public classes, and public
functions/methods (names not starting with ``_``, plus ``__init__``
methods that take documented-worthy parameters are exempted -- the
class docstring documents construction).  Nested (closure) functions
are implementation detail and are not counted.

Used two ways:

* CI and developers: ``python tools/docstring_coverage.py --fail-under
  100 src/repro/memory src/repro/netsim src/repro/engine``
* the doc-drift guard: ``tests/docs/test_docstring_coverage.py``
  imports :func:`scan_paths` and asserts the documented thresholds.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Tuple, Union

_Def = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


@dataclass
class CoverageReport:
    """Totals plus the list of undocumented public definitions."""

    total: int = 0
    documented: int = 0
    missing: List[str] = field(default_factory=list)

    @property
    def percent(self) -> float:
        """Documented fraction in percent (an empty surface is 100%)."""
        return 100.0 if self.total == 0 else 100.0 * self.documented / self.total

    def merge(self, other: "CoverageReport") -> None:
        """Fold another report's counts into this one."""
        self.total += other.total
        self.documented += other.documented
        self.missing.extend(other.missing)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _count(node: ast.AST, qualname: str, path: Path, report: CoverageReport) -> None:
    """Count one module/class body's direct public definitions."""
    body = getattr(node, "body", [])
    for child in body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(child.name):
                continue
            label = f"{path}:{child.lineno} {qualname}{child.name}"
            report.total += 1
            if ast.get_docstring(child):
                report.documented += 1
            else:
                report.missing.append(label)
            if isinstance(child, ast.ClassDef):
                _count(child, f"{qualname}{child.name}.", path, report)


def scan_file(path: Path) -> CoverageReport:
    """Coverage of one Python file (module docstring included)."""
    report = CoverageReport()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    report.total += 1
    if ast.get_docstring(tree):
        report.documented += 1
    else:
        report.missing.append(f"{path}:1 <module>")
    _count(tree, "", path, report)
    return report


def scan_paths(paths: Iterable[Union[str, Path]]) -> CoverageReport:
    """Aggregate coverage over files and directories (recursive)."""
    report = CoverageReport()
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            report.merge(scan_file(file))
    return report


def main(argv: Union[List[str], None] = None) -> int:
    """CLI entry point: print the summary, exit 1 below the threshold."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="files or directories to scan")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=100.0,
        help="minimum coverage percent (default 100)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-miss listing"
    )
    args = parser.parse_args(argv)

    report = scan_paths(args.paths)
    if report.missing and not args.quiet:
        print("undocumented public definitions:")
        for miss in report.missing:
            print(f"  {miss}")
    print(
        f"docstring coverage: {report.documented}/{report.total} "
        f"({report.percent:.1f}%), threshold {args.fail_under:.1f}%"
    )
    return 0 if report.percent >= args.fail_under else 1


if __name__ == "__main__":
    sys.exit(main())
