#!/usr/bin/env python
"""Strict-typing ratchet runner: ``mypy --strict`` over the typed surface.

The typed surface is :data:`repro.lint.config.STRICT_TYPED_MODULES` --
the single source of truth shared with the ``typing-missing-annotation``
lint rule (which enforces the AST-checkable half of the contract even
where mypy is not installed).  The ratchet: modules are only ever added
to that tuple, so the strictly-typed surface monotonically grows.

mypy is an *optional* dependency (the test container does not ship it);
like ``tools/build_kernel_ext.py`` without Cython, a missing backend
skips gracefully:

* default: print a notice and exit 0 when mypy is absent;
* ``--require``: exit 3 instead (the CI lint job installs mypy and
  passes this so a silently-skipped gate cannot look green).

Exit codes: 0 clean/skipped, 1 type errors, 2 usage error, 3 mypy
missing under ``--require``.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def strict_typed_files() -> list[Path]:
    """The committed strict-typed surface, as existing file paths."""
    sys.path.insert(0, str(SRC))
    from repro.lint.config import STRICT_TYPED_MODULES

    files = []
    for rel in STRICT_TYPED_MODULES:
        path = SRC / rel
        if not path.is_file():
            raise SystemExit(f"strict-typed module missing on disk: {rel}")
        files.append(path)
    return files


def main(argv: list[str] | None = None) -> int:
    """Run the ratchet; see the module docstring for exit codes."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 3) when mypy is not installed instead of skipping",
    )
    args = parser.parse_args(argv)

    files = strict_typed_files()
    if importlib.util.find_spec("mypy") is None:
        message = (
            f"typecheck: mypy is not installed; skipping the strict gate "
            f"over {len(files)} module(s)"
        )
        if args.require:
            print(f"{message} -- and --require forbids skipping", file=sys.stderr)
            return 3
        print(message)
        return 0

    cmd = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO / "mypy.ini"),
        *map(str, files),
    ]
    print(f"typecheck: mypy --strict over {len(files)} module(s)")
    return subprocess.run(cmd, cwd=REPO).returncode


if __name__ == "__main__":
    sys.exit(main())
