"""Omega at work: consensus and a replicated state machine.

The reason Omega matters (and why it is the *weakest* useful failure
detector [19]): it turns shared-memory Paxos from "safe but maybe
stuck" into "safe and live".  This example:

1. runs single-shot consensus driven by the paper's Algorithm 1;
2. reruns it in "anarchy" mode (everyone proposes) -- still safe;
3. replicates a 6-command log across 3 processes while the current
   leader crashes mid-stream.

Run:  python examples/consensus_smr.py
"""

from __future__ import annotations

from repro import CrashPlan, Run
from repro.analysis.report import format_table
from repro.apps.consensus import ConsensusProcess
from repro.apps.smr import ReplicatedStateMachine


def main() -> None:
    # ------------------------------------------------------------------
    print("1. Single-shot consensus on Omega (n=4, inputs v0..v3)")
    result = Run(ConsensusProcess, n=4, seed=5, horizon=1500.0).execute()
    rows = [[alg.pid, alg.decision, f"{alg.decided_at:.0f}"] for alg in result.algorithms]
    print(format_table(["pid", "decision", "decided at"], rows))
    values = {alg.decision for alg in result.algorithms}
    print(f"agreement: {len(values) == 1}\n")

    # ------------------------------------------------------------------
    print("2. Anarchy mode: every process proposes concurrently (safety stress)")
    result = Run(
        ConsensusProcess, n=4, seed=6, horizon=1500.0, algo_config={"anarchy": True}
    ).execute()
    values = {alg.decision for alg in result.algorithms if alg.decision is not None}
    print(f"distinct decided values: {sorted(map(str, values))} (must be exactly one)\n")

    # ------------------------------------------------------------------
    print("3. Replicated state machine; leader crashes at t=500 (n=3)")
    commands = [f"set x={i}" for i in range(6)]
    result = Run(
        ReplicatedStateMachine,
        n=3,
        seed=11,
        horizon=12000.0,
        crash_plan=CrashPlan.single(3, 0, 500.0),
        algo_config={"commands": commands},
    ).execute()
    survivor = result.algorithms[1]
    rows = [
        [slot, command, f"p{proposer}", f"{t:.0f}"]
        for (slot, t), (command, proposer) in zip(survivor.decide_times, survivor.log)
    ]
    print(format_table(["slot", "command", "proposer", "decided at"], rows))
    same = result.algorithms[1].log == result.algorithms[2].log
    print(f"replica logs identical: {same}")
    print("note the proposer column: the crashed leader's slots end early and a")
    print("survivor elected by Omega finishes the log.")


if __name__ == "__main__":
    main()
