"""Quickstart: elect an eventual leader in simulated shared memory.

Runs the paper's write-efficient algorithm (Figure 2) on four
processes, crashes the elected leader mid-run, and shows the oracle
re-electing a correct process -- the core Omega behaviour.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CrashPlan, Run, WriteEfficientOmega
from repro.analysis.report import format_table
from repro.analysis.write_stats import forever_writers, growing_registers


def main() -> None:
    n, horizon = 4, 3000.0
    print(f"Electing an eventual leader among {n} processes (horizon {horizon:.0f})")
    print("Crash plan: pid 0 (the initial favourite) crashes at t=1000\n")

    result = Run(
        WriteEfficientOmega,
        n=n,
        seed=7,
        horizon=horizon,
        crash_plan=CrashPlan.single(n, 0, 1000.0),
    ).execute()

    # --- the election timeline, as each process saw it -----------------
    print("leader() outputs over time (sampled):")
    rows = []
    for t in (0.0, 500.0, 1500.0, horizon):
        sample = {pid: ld for when, pid, ld in result.trace.leader_samples() if when <= t}
        rows.append([f"t={t:.0f}"] + [sample.get(pid, "-") for pid in range(n)])
    print(format_table(["time"] + [f"p{i}" for i in range(n)], rows))

    # --- the eventual-leadership verdict --------------------------------
    report = result.stabilization(margin=200.0)
    print(f"\nstabilized: {report.stabilized}")
    print(f"elected leader: p{report.leader} (correct: {report.leader_correct})")
    print(f"stabilization time: {report.time:.0f}")

    # --- the paper's signature properties --------------------------------
    writers = forever_writers(result.memory, horizon, window=300.0)
    growing = growing_registers(result.memory, horizon)
    print(f"\nprocesses still writing at the end (Theorem 3): {sorted(writers)}")
    print(f"registers still growing (Theorem 2): {sorted(growing)}")
    print(
        f"shared-memory traffic: {result.memory.total_writes} writes, "
        f"{result.memory.total_reads} reads"
    )


if __name__ == "__main__":
    main()
