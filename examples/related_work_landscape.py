"""The Omega landscape: shared memory vs the two message-passing families.

The paper's introduction situates its shared-memory construction
against message-passing Omega under (a) an eventual t-source [2] and
(b) the time-free message-pattern assumption [21, 23].  This example
runs one representative of each family under its own assumption and
prints the profile the paper describes: everyone stabilizes, but only
the shared-memory algorithm quiets down to a single communicator.

Run:  python examples/related_work_landscape.py
"""

from __future__ import annotations

from repro import WriteEfficientOmega
from repro.analysis.report import format_table
from repro.analysis.write_stats import forever_writers
from repro.netsim.network import EventuallyTimelyLinks, FairLossyLinks
from repro.netsim.runtime import MpRun
from repro.related import PatternOmega, TSourceOmega, pattern_friendly_links
from repro.sim.rng import RngRegistry
from repro.workloads.scenarios import awb_only


def main() -> None:
    rows = []

    print("1/3 shared-memory AWB (the paper's Algorithm 1, awb-only scenario)...")
    scen = awb_only(n=4)
    shm = scen.run(WriteEfficientOmega, seed=5)
    report = shm.stabilization(margin=scen.margin)
    writers = forever_writers(shm.memory, shm.horizon, window=shm.horizon / 20)
    rows.append(
        [
            "shared-memory AWB (Alg 1)",
            report.stabilized,
            f"p{report.leader}",
            f"{len(writers)} writer(s)",
            f"{shm.memory.total_writes}w/{shm.memory.total_reads}r",
        ]
    )

    print("2/3 message-passing, eventual t-source [2]...")
    rng = RngRegistry(1)
    ts = MpRun(
        TSourceOmega,
        n=4,
        seed=1,
        horizon=4000.0,
        behavior=EventuallyTimelyLinks(
            FairLossyLinks(rng, loss=0.2), sources={0}, gst=300.0, rng=rng
        ),
    ).execute()
    ts_report = ts.stabilization(margin=200.0)
    rows.append(
        [
            "MP eventual t-source [2]",
            ts_report.stabilized,
            f"p{ts_report.leader}",
            "all keep sending",
            f"{ts.network.total_sent} msgs ({ts.network.dropped} lost)",
        ]
    )

    print("3/3 message-passing, time-free pattern [21,23]...")
    rng2 = RngRegistry(2)
    pat = MpRun(
        PatternOmega, n=4, seed=2, horizon=4000.0,
        behavior=pattern_friendly_links(rng2, winner=0),
    ).execute()
    pat_report = pat.stabilization(margin=200.0)
    rows.append(
        [
            "MP message pattern [21,23]",
            pat_report.stabilized,
            f"p{pat_report.leader}",
            "all keep querying",
            f"{pat.network.total_sent} msgs, 0 timers",
        ]
    )

    print()
    print(
        format_table(
            ["construction", "stabilized", "leader", "eventual communicators", "traffic"],
            rows,
        )
    )
    print(
        "\nEach construction runs under its own incomparable assumption; only the"
        "\nshared-memory algorithm converges to a single communicating process"
        "\n(the paper's write-efficiency, Theorem 3)."
    )


if __name__ == "__main__":
    main()
