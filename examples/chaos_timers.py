"""Assumption AWB, demonstrated by turning it off and on.

Three runs of Algorithm 1 under an identical asynchrony profile (a slow
but bounded timely process; fast spiky followers), differing only in
the followers' timers:

* chaotic-then-AWB timers (the paper's assumption) -> stabilizes;
* capped timers (AWB2 violated, durations can never grow) -> churns
  forever;
* eventually-monotone timers (the *stronger* traditional assumption the
  paper generalizes) -> stabilizes too.

Run:  python examples/chaos_timers.py
"""

from __future__ import annotations

from repro import WriteEfficientOmega
from repro.analysis.report import format_series, format_table
from repro.analysis.suspicion import cumulative_suspicions
from repro.workloads.scenarios import capped_timers, chaotic_timers, slow_leader_awb


def suspicion_series(result, bucket=250.0):
    """Cumulative suspicion-write counts over time."""
    return cumulative_suspicions(result.memory, result.horizon, bucket=bucket)


def main() -> None:
    rows = []

    print("Run A: AWB timers with a long chaotic prefix (the paper's assumption)")
    scen = chaotic_timers(n=4)
    result_a = scen.run(WriteEfficientOmega, seed=3)
    report_a = result_a.stabilization(margin=scen.margin)
    xs, ys = suspicion_series(result_a)
    print(format_series("cumulative false suspicions", xs, ys))
    rows.append(["chaotic-then-AWB", report_a.stabilized, report_a.time])

    print("\nRun B: capped timers (AWB2 violated) under a slow timely leader")
    scen_b = capped_timers(n=4)
    result_b = scen_b.run(WriteEfficientOmega, seed=3)
    report_b = result_b.stabilization(margin=scen_b.margin)
    xs, ys = suspicion_series(result_b)
    print(format_series("cumulative false suspicions", xs, ys))
    rows.append(["capped (violator)", report_b.stabilized, report_b.time])

    print("\nRun C: same asynchrony as B, AWB timers restored")
    scen_c = slow_leader_awb(n=4)
    result_c = scen_c.run(WriteEfficientOmega, seed=3)
    report_c = result_c.stabilization(margin=scen_c.margin)
    xs, ys = suspicion_series(result_c)
    print(format_series("cumulative false suspicions", xs, ys))
    rows.append(["slow leader + AWB", report_c.stabilized, report_c.time])

    print()
    print(format_table(["timers", "stabilized", "t_stabilize"], rows))
    print(
        "\nReading the curves: under AWB the suspicion counters (and with them"
        "\nthe timeouts) grow until timers out-wait the leader's write period,"
        "\nthen flatten -- Lemma 2 in action.  With capped timers the curve never"
        "\nflattens and no leader sticks."
    )


if __name__ == "__main__":
    main()
