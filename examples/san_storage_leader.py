"""SAN deployment: leader election over network-attached disks.

The paper's Section 1 motivates shared-memory Omega with storage-area
networks: "commodity disks are cheaper than computers".  This example
runs Algorithm 1 with every register access going through a simulated
disk (latency, interval semantics), verifies the produced operation
history is linearizable, and compares election latency against the
in-memory run.

Run:  python examples/san_storage_leader.py
"""

from __future__ import annotations

from repro import Run, WriteEfficientOmega
from repro.analysis.report import format_table
from repro.memory.disk import Disk, LatencyModel
from repro.memory.linearizability import check_single_writer_history
from repro.sim.rng import RngRegistry
from repro.workloads.scenarios import san


def main() -> None:
    print("Leader election over a storage-area network (simulated disks)\n")

    # --- in-memory control run -----------------------------------------
    control = Run(WriteEfficientOmega, n=3, seed=7, horizon=2000.0).execute()
    control_report = control.stabilization(margin=100.0)

    # --- the SAN run -----------------------------------------------------
    scen = san(n=3)
    result = scen.run(WriteEfficientOmega, seed=7)
    report = result.stabilization(margin=scen.margin)

    print(
        format_table(
            ["deployment", "stabilized", "leader", "t_stabilize", "writes", "reads"],
            [
                [
                    "in-memory",
                    control_report.stabilized,
                    control_report.leader,
                    control_report.time,
                    control.memory.total_writes,
                    control.memory.total_reads,
                ],
                [
                    "SAN (latency 1..4)",
                    report.stabilized,
                    report.leader,
                    report.time,
                    result.memory.total_writes,
                    result.memory.total_reads,
                ],
            ],
        )
    )

    # --- atomicity of the disk history -----------------------------------
    lin = check_single_writer_history(result.disk.history)
    print(f"\ndisk operation history: {lin.summary()}")
    ops = result.disk.history
    mean_latency = sum(op.resp - op.inv for op in ops) / len(ops)
    print(f"disk ops: {len(ops)}, mean access latency: {mean_latency:.2f} time units")
    print(
        "\nThe same algorithm code runs in both deployments; only the register"
        "\nsubstrate changed -- exactly the portability the paper's 1WnR model buys."
    )


if __name__ == "__main__":
    main()
