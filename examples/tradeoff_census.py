"""The paper's headline trade-off, measured live.

Bounded shared memory <-> number of eventual writers: Algorithm 1
converges to a single writer but one register grows forever; Algorithm 2
keeps every register bounded but every correct process writes forever --
and Theorem 5 proves you cannot have both.  This example prints the
census for both algorithms plus the Section 3.5 variants.

Run:  python examples/tradeoff_census.py
"""

from __future__ import annotations

from repro import (
    BoundedOmega,
    EventuallySynchronousOmega,
    MultiWriterOmega,
    Run,
    StepCounterOmega,
    WriteEfficientOmega,
)
from repro.analysis.report import format_table
from repro.analysis.write_stats import forever_writers, growing_registers


def census(algorithm_cls, horizon, seed=9):
    result = Run(algorithm_cls, n=4, seed=seed, horizon=horizon).execute()
    report = result.stabilization(margin=horizon * 0.05)
    writers = forever_writers(result.memory, horizon, window=horizon / 20)
    growing = growing_registers(result.memory, horizon)
    return [
        algorithm_cls.display_name,
        report.stabilized,
        len(writers),
        len(growing) == 0,
        sorted(growing) if growing else "-",
    ]


def main() -> None:
    print("Forever-writer / boundedness census (n=4, nominal conditions)\n")
    rows = [
        census(WriteEfficientOmega, 3000.0),
        census(BoundedOmega, 9000.0),
        census(MultiWriterOmega, 3000.0),
        census(StepCounterOmega, 3000.0),
        census(EventuallySynchronousOmega, 3000.0),
    ]
    print(
        format_table(
            ["algorithm", "stabilized", "forever writers", "bounded memory", "unbounded regs"],
            rows,
        )
    )
    print(
        "\nTheorem 5 (Corollary 1): with bounded memory, runs exist where ALL"
        "\nprocesses write forever -- Algorithm 2 pays that price by design, and"
        "\nno algorithm can avoid it.  Algorithm 1 sits on the other side of the"
        "\ntrade-off: one writer, one unbounded register."
    )


if __name__ == "__main__":
    main()
