"""Experiments F2/T1-T3 -- paper Figure 2 + Theorems 1, 2, 3.

Algorithm 1 under the nominal and leader-crash workloads:

* Theorem 1 -- a correct common leader is eventually elected
  (convergence-time distribution over seeds);
* Theorem 2 -- all shared variables bounded except ``PROGRESS[ell]``;
* Theorem 3 -- after a finite time a single process writes, always the
  same register.
"""

from __future__ import annotations

import statistics

from _helpers import emit

from repro.analysis.report import format_table
from repro.analysis.write_stats import (
    growing_registers,
    single_writer_point,
    tail_written_registers,
)
from repro.core.algorithm1 import WriteEfficientOmega
from repro.workloads.scenarios import leader_crash, nominal
from repro.workloads.sweep import summarize_result

SEEDS = list(range(6))


def run_nominal_batch():
    scen = nominal(n=4, horizon=2500.0)
    return scen, [scen.run(WriteEfficientOmega, seed=s) for s in SEEDS]


def test_fig2_alg1_nominal(benchmark):
    scen, results = benchmark.pedantic(run_nominal_batch, rounds=1, iterations=1)

    rows = []
    stab_times = []
    for result in results:
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct  # Theorem 1
        stab_times.append(report.time)

        growing = growing_registers(result.memory, result.horizon)
        assert growing == frozenset({f"PROGRESS[{report.leader}]"})  # Theorem 2

        point = single_writer_point(result.memory, result.horizon, tail=300.0)
        assert point.reached and point.writer == report.leader  # Theorem 3
        tail_regs = tail_written_registers(result.memory, result.horizon, tail=300.0)
        assert tail_regs == frozenset({f"PROGRESS[{report.leader}]"})

        row = summarize_result(result, scen, window=200.0)
        rows.append(
            [
                result.seed,
                report.leader,
                report.time,
                point.time,
                sorted(growing),
                row.total_writes,
                row.total_reads,
            ]
        )

    lines = [
        "Figure 2 / Theorems 1-3: Algorithm 1, nominal workload (n=4)",
        format_table(
            ["seed", "leader", "t_stabilize", "t_single_writer", "unbounded regs", "writes", "reads"],
            rows,
        ),
        "",
        f"convergence time: median={statistics.median(stab_times):.0f} "
        f"min={min(stab_times):.0f} max={max(stab_times):.0f} (virtual time units)",
        "paper prediction: stabilization in finite time; exactly one unbounded",
        "register (PROGRESS[leader]); exactly one eventual writer.  MATCHES.",
    ]
    emit("F2_alg1_nominal", "\n".join(lines))


def test_fig2_alg1_leader_crash(benchmark):
    scen = leader_crash(n=4, horizon=6000.0)

    def run_batch():
        return [scen.run(WriteEfficientOmega, seed=s) for s in SEEDS[:4]]

    results = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    rows = []
    for result in results:
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader != 0  # re-election
        rows.append([result.seed, report.leader, report.time])
    lines = [
        "Theorem 1 under leader crash (pid 0 crashes at t=2100):",
        format_table(["seed", "new leader", "t_stabilize"], rows),
        "paper prediction: a correct process is (re-)elected.  MATCHES.",
    ]
    emit("F2_alg1_leader_crash", "\n".join(lines))
