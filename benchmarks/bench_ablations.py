"""Experiment ABL -- ablations of the design choices.

Three knobs the paper's correctness argument leans on, each swept under
two asynchrony profiles: *mild* (uniform delays -- any conforming
choice works quickly) and *harsh* (the slow-but-timely leader of the
negative-scenario family, where the AWB2 mechanism has to do real
work):

* **f shape** (condition f2's growth rate): under mild conditions every
  conforming ``f`` converges promptly; under a slow leader only the
  linear ``f`` converges within a practical horizon -- (f2) promises
  *finite* convergence, and the ablation shows the rate of divergence
  is the practical price.
* **Timeout policy** (line 27): the paper's adaptive ``max+1`` vs a
  constant timeout.  The constant policy discards adaptivity, which is
  fatal exactly when the timely leader is slow (Lemma 2's mechanism).
* **Chaos duration** (Figure 1's prefix): false suspicions accumulate
  with the length of the timers' chaotic era, yet the election absorbs
  arbitrarily long (finite) chaos -- convergence within the same
  horizon either way.

Every knob combination is a cell of the :func:`ablation` scenario
family, so the grids run through the parallel experiment engine (worker
pool + ``results/engine/`` cache); the suspicion censuses the
assertions need travel in the engine's compact ``RunSummary`` rows.
"""

from __future__ import annotations

from _helpers import RESULTS_DIR, emit

from repro.analysis.report import format_property_table, format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.engine import ExperimentSpec, run_experiment
from repro.workloads.scenarios import ablation

ENGINE_CACHE = RESULTS_DIR / "engine"
ALG1 = {"alg1": WriteEfficientOmega}


def _sweep(name, scenarios, seed):
    spec = ExperimentSpec.from_objects(name, ALG1, scenarios, seeds=[seed])
    return run_experiment(spec, jobs=None, results_dir=ENGINE_CACHE).rows


def test_ablation_f_shape(benchmark):
    shapes = [
        ("linear f(x)=2x", "linear", 2.0),
        ("sqrt f(x)=2*sqrt(x)", "sqrt", 2.0),
        ("log f(x)=3*log(1+x)", "log", 3.0),
    ]
    harsh_horizons = {"linear": 16000.0, "sqrt": 40000.0, "log": 40000.0}

    def sweep():
        mild_rows = _sweep(
            "ABL-f-shape-mild",
            [
                ablation(f_kind=kind, f_scale=scale, profile="mild", horizon=8000.0)
                for _, kind, scale in shapes
            ],
            seed=5,
        )
        harsh_rows = _sweep(
            "ABL-f-shape-harsh",
            [
                ablation(
                    f_kind=kind,
                    f_scale=scale,
                    profile="harsh",
                    horizon=harsh_horizons[kind],
                    # The sub-linear shapes are *supposed* to out-run this
                    # horizon (the point of the ablation); keep those cells
                    # outside the claims envelope so the theorem audit does
                    # not count the demonstration as a violation.
                    assumption="awb" if kind == "linear" else "none",
                )
                for _, kind, scale in shapes
            ],
            seed=5,
        )
        return mild_rows, harsh_rows

    mild, harsh = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for (label, _, _), row in zip(shapes, mild):
        assert row.stabilized, f"{label} must converge under mild asynchrony"
    harsh_by = {kind: row for (_, kind, _), row in zip(shapes, harsh)}
    assert harsh_by["linear"].stabilized
    assert not harsh_by["sqrt"].stabilized and not harsh_by["log"].stabilized

    lines = [
        "Ablation: AWB2 lower-bound function shape",
        "",
        "mild asynchrony (uniform delays, horizon 8000): any conforming f works",
        format_table(
            ["f", "stabilized", "t_stabilize", "max suspicions"],
            [
                [label, row.stabilized, row.stabilization_time or "-", row.max_suspicion]
                for (label, _, _), row in zip(shapes, mild)
            ],
        ),
        "",
        "harsh asynchrony (slow timely leader, beta ~ 25):",
        format_table(
            ["f", "stabilized", "t_stabilize", "max suspicions", "horizon"],
            [
                [
                    label,
                    row.stabilized,
                    row.stabilization_time or "-",
                    row.max_suspicion,
                    row.horizon,
                ]
                for (label, _, _), row in zip(shapes, harsh)
            ],
        ),
        "",
        "shape: (f2) promises finite convergence for every divergent f, and all",
        "deliver under mild conditions; when the leader's write period is large,",
        "sub-linear f needs suspicion counts far beyond any practical horizon",
        "(2*sqrt(x) > 25 needs x > 156; 3*log(1+x) > 25 needs x > 4000) --",
        "'asymptotically well-behaved' is exactly as weak as it sounds.",
        "",
        "Theorem 1-4 audit (claimed cells clean; the sub-linear harsh cells",
        "are declared outside the claims envelope, so their misses are data):",
        format_property_table([*mild, *harsh]),
    ]
    assert sum(r.property_violations for r in [*mild, *harsh]) == 0
    emit("ABL_f_shape", "\n".join(lines))


def test_ablation_timeout_policy(benchmark):
    policies = [("max", None), ("sum", None), ("const", 4.0)]

    def sweep():
        return _sweep(
            "ABL-timeout-policy",
            [
                ablation(
                    profile="harsh",
                    horizon=20000.0,
                    timeout_policy=policy,
                    const_timeout=const,
                )
                for policy, const in policies
            ],
            seed=6,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_policy = {policy: row for (policy, _), row in zip(policies, rows)}
    assert by_policy["max"].stabilized, "the paper's policy must converge"
    assert not by_policy["const"].stabilized, "constant timeouts cannot adapt"
    assert (
        by_policy["const"].suspicion_writes_tail > by_policy["max"].suspicion_writes_tail
    ), "const keeps suspecting"

    table = [
        [policy, row.stabilized, row.stabilization_time or "-", row.suspicion_writes_tail]
        for (policy, _), row in zip(policies, rows)
    ]
    lines = [
        "Ablation: line-27 timeout policy (slow timely leader, horizon 20000)",
        format_table(
            ["policy", "stabilized", "t_stabilize", "suspicion writes in [16k,20k]"], table
        ),
        "",
        "shape: the paper's adaptive max+1 converges; a fixed timeout keeps",
        "falsely suspecting the slow-but-timely leader forever (Lemma 2 breaks",
        "without adaptivity).  sum+1 over-waits: its huge timeouts slow every",
        "detection, and rare hand-over suspicions keep nudging near-tied lexmin",
        "sums past this horizon -- growth speed is not free.",
        "",
        "Theorem 1-4 audit (only the paper's max policy is inside the claims",
        "envelope; the mutated policies are measured, not promised):",
        format_property_table(rows),
    ]
    assert sum(r.property_violations for r in rows) == 0
    emit("ABL_timeout_policy", "\n".join(lines))


def test_ablation_chaos_duration(benchmark):
    durations = (0.0, 3000.0, 6000.0)

    def sweep():
        return _sweep(
            "ABL-chaos-duration",
            [
                ablation(profile="harsh", horizon=30000.0, chaos_until=chaos_until)
                for chaos_until in durations
            ],
            seed=9,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = [row.suspicion_writes_total for row in rows]
    for chaos_until, row in zip(durations, rows):
        assert row.stabilized, f"chaos until {chaos_until} must still converge"
    assert counts == sorted(counts), "suspicion churn must grow with chaos duration"
    assert counts[-1] > counts[0], "long chaos should visibly add false suspicions"

    table = [
        [chaos_until, row.stabilized, row.stabilization_time, row.suspicion_writes_total]
        for chaos_until, row in zip(durations, rows)
    ]
    lines = [
        "Ablation: duration of the timers' chaotic era (slow leader, horizon 30000)",
        format_table(
            ["chaos until", "stabilized", "t_stabilize", "total suspicion writes"], table
        ),
        "",
        "shape: false suspicions accumulate with the length of the chaotic",
        "prefix, and the election absorbs arbitrarily long finite chaos -- the",
        "suspicion counters (hence timeouts) just start higher.  MATCHES the",
        "paper's tolerance claim for the AWB2 prefix.",
        "",
        "Theorem 1-4 audit (chaos of any finite duration must leave all four",
        "claims intact):",
        format_property_table(rows),
    ]
    assert sum(r.property_violations for r in rows) == 0
    emit("ABL_chaos_duration", "\n".join(lines))
