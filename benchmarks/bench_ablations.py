"""Experiment ABL -- ablations of the design choices.

Three knobs the paper's correctness argument leans on, each swept under
two asynchrony profiles: *mild* (uniform delays -- any conforming
choice works quickly) and *harsh* (the slow-but-timely leader of the
negative-scenario family, where the AWB2 mechanism has to do real
work):

* **f shape** (condition f2's growth rate): under mild conditions every
  conforming ``f`` converges promptly; under a slow leader only the
  linear ``f`` converges within a practical horizon -- (f2) promises
  *finite* convergence, and the ablation shows the rate of divergence
  is the practical price.
* **Timeout policy** (line 27): the paper's adaptive ``max+1`` vs a
  constant timeout.  The constant policy discards adaptivity, which is
  fatal exactly when the timely leader is slow (Lemma 2's mechanism).
* **Chaos duration** (Figure 1's prefix): false suspicions accumulate
  with the length of the timers' chaotic era, yet the election absorbs
  arbitrarily long (finite) chaos -- convergence within the same
  horizon either way.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import UniformDelay
from repro.timers.awb import AsymptoticallyWellBehavedTimer
from repro.timers.functions import LinearF, LogF, SqrtF
from repro.workloads.scenarios import _slow_leader_delay


def awb_behaviors(f, rng, n, chaos_until=0.0, jitter=0.4):
    return {
        pid: AsymptoticallyWellBehavedTimer(f, rng, chaos_until=chaos_until, jitter=jitter)
        for pid in range(n)
    }


def _run(seed, horizon, f, delay_factory, algo_config=None, chaos_until=0.0):
    rng = RngRegistry(seed)
    return Run(
        WriteEfficientOmega,
        n=4,
        seed=seed,
        horizon=horizon,
        delay_model=delay_factory(rng),
        timer_behaviors=awb_behaviors(f, rng, 4, chaos_until=chaos_until),
        algo_config=algo_config or {},
        log_reads=False,
    ).execute()


def _max_suspicion(result):
    return max(
        result.memory.register(f"SUSPICIONS[{j}][{k}]").peek()
        for j in range(4)
        for k in range(4)
    )


def test_ablation_f_shape(benchmark):
    shapes = [
        ("linear f(x)=2x", LinearF(2.0)),
        ("sqrt f(x)=2*sqrt(x)", SqrtF(2.0)),
        ("log f(x)=3*log(1+x)", LogF(3.0)),
    ]

    def sweep():
        mild, harsh = [], []
        for label, f in shapes:
            result = _run(5, 8000.0, f, lambda rng: UniformDelay(rng, 0.5, 1.5))
            mild.append((label, result.stabilization(margin=160.0), _max_suspicion(result)))
        harsh_horizons = {"linear f(x)=2x": 16000.0, "sqrt f(x)=2*sqrt(x)": 40000.0,
                          "log f(x)=3*log(1+x)": 40000.0}
        for label, f in shapes:
            hz = harsh_horizons[label]
            result = _run(5, hz, f, lambda rng: _slow_leader_delay(4, 0, rng))
            harsh.append((label, result.stabilization(margin=hz * 0.02), _max_suspicion(result), hz))
        return mild, harsh

    mild, harsh = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for label, report, _ in mild:
        assert report.stabilized, f"{label} must converge under mild asynchrony"
    harsh_by = {label.split()[0]: report for label, report, _, _ in harsh}
    assert harsh_by["linear"].stabilized
    assert not harsh_by["sqrt"].stabilized and not harsh_by["log"].stabilized

    lines = [
        "Ablation: AWB2 lower-bound function shape",
        "",
        "mild asynchrony (uniform delays, horizon 8000): any conforming f works",
        format_table(
            ["f", "stabilized", "t_stabilize", "max suspicions"],
            [[label, r.stabilized, r.time if r.time else "-", s] for label, r, s in mild],
        ),
        "",
        "harsh asynchrony (slow timely leader, beta ~ 25):",
        format_table(
            ["f", "stabilized", "t_stabilize", "max suspicions", "horizon"],
            [
                [label, r.stabilized, r.time if r.time else "-", s, hz]
                for label, r, s, hz in harsh
            ],
        ),
        "",
        "shape: (f2) promises finite convergence for every divergent f, and all",
        "deliver under mild conditions; when the leader's write period is large,",
        "sub-linear f needs suspicion counts far beyond any practical horizon",
        "(2*sqrt(x) > 25 needs x > 156; 3*log(1+x) > 25 needs x > 4000) --",
        "'asymptotically well-behaved' is exactly as weak as it sounds.",
    ]
    emit("ABL_f_shape", "\n".join(lines))


def test_ablation_timeout_policy(benchmark):
    def sweep():
        out = []
        for policy, extra in [("max", {}), ("sum", {}), ("const", {"const_timeout": 4.0})]:
            result = _run(
                6,
                20000.0,
                LinearF(2.0),
                lambda rng: _slow_leader_delay(4, 0, rng),
                algo_config={"timeout_policy": policy, **extra},
            )
            report = result.stabilization(margin=400.0)
            late_susp = len(
                [
                    rec
                    for rec in result.memory.writes_in(16000.0, 20000.0)
                    if rec.register.startswith("SUSPICIONS")
                ]
            )
            out.append((policy, report, late_susp))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_policy = {policy: (report, late) for policy, report, late in rows}
    assert by_policy["max"][0].stabilized, "the paper's policy must converge"
    assert not by_policy["const"][0].stabilized, "constant timeouts cannot adapt"
    assert by_policy["const"][1] > by_policy["max"][1], "const keeps suspecting"

    table = [
        [policy, report.stabilized, report.time if report.time else "-", late]
        for policy, report, late in rows
    ]
    lines = [
        "Ablation: line-27 timeout policy (slow timely leader, horizon 20000)",
        format_table(["policy", "stabilized", "t_stabilize", "suspicion writes in [16k,20k]"], table),
        "",
        "shape: the paper's adaptive max+1 converges; a fixed timeout keeps",
        "falsely suspecting the slow-but-timely leader forever (Lemma 2 breaks",
        "without adaptivity).  sum+1 over-waits: its huge timeouts slow every",
        "detection, and rare hand-over suspicions keep nudging near-tied lexmin",
        "sums past this horizon -- growth speed is not free.",
    ]
    emit("ABL_timeout_policy", "\n".join(lines))


def test_ablation_chaos_duration(benchmark):
    def sweep():
        out = []
        for chaos_until in (0.0, 3000.0, 6000.0):
            result = _run(
                9,
                30000.0,
                LinearF(2.0),
                lambda rng: _slow_leader_delay(4, 0, rng),
                chaos_until=chaos_until,
            )
            report = result.stabilization(margin=600.0)
            suspicions = len(
                [rec for rec in result.memory.write_log if rec.register.startswith("SUSPICIONS")]
            )
            out.append((chaos_until, report, suspicions))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = [suspicions for _, _, suspicions in rows]
    for chaos_until, report, _ in rows:
        assert report.stabilized, f"chaos until {chaos_until} must still converge"
    assert counts == sorted(counts), "suspicion churn must grow with chaos duration"
    assert counts[-1] > counts[0], "long chaos should visibly add false suspicions"

    table = [
        [chaos_until, report.stabilized, report.time, suspicions]
        for chaos_until, report, suspicions in rows
    ]
    lines = [
        "Ablation: duration of the timers' chaotic era (slow leader, horizon 30000)",
        format_table(["chaos until", "stabilized", "t_stabilize", "total suspicion writes"], table),
        "",
        "shape: false suspicions accumulate with the length of the chaotic",
        "prefix, and the election absorbs arbitrarily long finite chaos -- the",
        "suspicion counters (hence timeouts) just start higher.  MATCHES the",
        "paper's tolerance claim for the AWB2 prefix.",
    ]
    emit("ABL_chaos_duration", "\n".join(lines))
