"""Experiment SCAL -- t-independence and scaling in n.

The paper stresses both algorithms are independent of ``t`` (any number
of crashes tolerated).  We sweep (a) the system size under the nominal
workload and (b) the number of crashes at fixed n up to t = n-1;
stabilization must hold everywhere, with convergence time growing
moderately in n and the survivor electing itself under t = n-1.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan
from repro.workloads.scenarios import nominal

NS = [3, 6, 10, 14]
CRASH_COUNTS = [0, 1, 3, 5]  # at n = 6, up to t = n - 1


def sweep_n():
    rows = []
    for n in NS:
        # The leader's loop period grows with n (leader() reads
        # (n-1)*|candidates| registers), so timeouts must climb further
        # before they out-wait it: scale the horizon accordingly.
        scen = nominal(n=n, horizon=2000.0 + 600.0 * n)
        result = scen.run(WriteEfficientOmega, seed=1)
        report = result.stabilization(margin=scen.margin)
        rows.append((n, report, result))
    return rows


def test_scaling_in_n(benchmark):
    rows = benchmark.pedantic(sweep_n, rounds=1, iterations=1)
    table = []
    for n, report, result in rows:
        assert report.stabilized and report.leader_correct
        table.append([n, report.leader, report.time, result.memory.total_reads])
    lines = [
        "Scaling in n: Algorithm 1, nominal workload",
        format_table(["n", "leader", "t_stabilize", "total reads"], table),
        "paper prediction: the model has no n-dependent assumption; elections",
        "stabilize at every size (read traffic grows ~n^2 per leader() by design).",
        "MATCHES.",
    ]
    emit("SCAL_system_size", "\n".join(lines))


def test_t_independence(benchmark):
    n = 6

    def sweep_crashes():
        out = []
        for crashes in CRASH_COUNTS:
            plan = (
                CrashPlan.none(n)
                if crashes == 0
                else CrashPlan.cascade(n, list(range(crashes)), start=800.0, spacing=300.0)
            )
            result = Run(
                WriteEfficientOmega, n=n, seed=2, horizon=8000.0, crash_plan=plan
            ).execute()
            out.append((crashes, result))
        return out

    results = benchmark.pedantic(sweep_crashes, rounds=1, iterations=1)
    table = []
    for crashes, result in results:
        report = result.stabilization(margin=400.0)
        assert report.stabilized, f"failed with {crashes} crashes"
        assert report.leader >= crashes  # victims are pids 0..crashes-1
        table.append([crashes, n - crashes, report.leader, report.time])
    lines = [
        f"t-independence: Algorithm 1, n={n}, cascading crashes of pids 0..t-1",
        format_table(["crashes (t)", "survivors", "leader", "t_stabilize"], table),
        "paper prediction: no assumption on t -- the election survives up to",
        "t = n-1 crashes and the surviving lexmin favourite wins.  MATCHES.",
    ]
    emit("SCAL_t_independence", "\n".join(lines))
