"""Experiment SCAL -- t-independence and scaling in n.

The paper stresses both algorithms are independent of ``t`` (any number
of crashes tolerated).  We sweep (a) the system size under the nominal
workload and (b) the number of crashes at fixed n up to t = n-1;
stabilization must hold everywhere, with convergence time growing
moderately in n and the survivor electing itself under t = n-1.

Both sweeps run through the parallel experiment engine: every
(scenario, seed) cell is an independent grid point, executed by the
worker pool and cached in ``results/engine/``.
"""

from __future__ import annotations

from _helpers import RESULTS_DIR, emit

from repro.analysis.report import format_property_table, format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.engine import ExperimentSpec, run_experiment
from repro.workloads.scenarios import cascade, nominal

NS = [3, 6, 10, 14]
CRASH_COUNTS = [0, 1, 3, 5]  # at n = 6, up to t = n - 1
ENGINE_CACHE = RESULTS_DIR / "engine"


def test_scaling_in_n(benchmark):
    # The leader's loop period grows with n (leader() reads
    # (n-1)*|candidates| registers), so timeouts must climb further
    # before they out-wait it: scale the horizon accordingly.
    spec = ExperimentSpec.from_objects(
        "SCAL-system-size",
        {"alg1": WriteEfficientOmega},
        [nominal(n=n, horizon=2000.0 + 600.0 * n) for n in NS],
        seeds=[1],
    )
    report = benchmark.pedantic(
        lambda: run_experiment(spec, jobs=None, results_dir=ENGINE_CACHE),
        rounds=1,
        iterations=1,
    )
    table = []
    for n, row in zip(NS, report.rows):
        assert row.n == n
        assert row.stabilized and row.leader_correct
        table.append([n, row.leader, row.stabilization_time, row.total_reads])
    lines = [
        "Scaling in n: Algorithm 1, nominal workload",
        format_table(["n", "leader", "t_stabilize", "total reads"], table),
        "paper prediction: the model has no n-dependent assumption; elections",
        "stabilize at every size (read traffic grows ~n^2 per leader() by design).",
        "MATCHES.",
        "",
        "Theorem 1-4 audit (every cell must be clean at every size):",
        format_property_table(report.rows),
    ]
    assert sum(r.property_violations for r in report.rows) == 0
    emit("SCAL_system_size", "\n".join(lines))


def test_t_independence(benchmark):
    n = 6
    spec = ExperimentSpec.from_objects(
        "SCAL-t-independence",
        {"alg1": WriteEfficientOmega},
        [
            cascade(n=n, horizon=8000.0, crashes=crashes, start=800.0, spacing=300.0)
            for crashes in CRASH_COUNTS
        ],
        seeds=[2],
    )
    report = benchmark.pedantic(
        lambda: run_experiment(spec, jobs=None, results_dir=ENGINE_CACHE),
        rounds=1,
        iterations=1,
    )
    table = []
    for crashes, row in zip(CRASH_COUNTS, report.rows):
        assert row.stabilized, f"failed with {crashes} crashes"
        assert row.leader >= crashes  # victims are pids 0..crashes-1
        table.append([crashes, n - crashes, row.leader, row.stabilization_time])
    lines = [
        f"t-independence: Algorithm 1, n={n}, cascading crashes of pids 0..t-1",
        format_table(["crashes (t)", "survivors", "leader", "t_stabilize"], table),
        "paper prediction: no assumption on t -- the election survives up to",
        "t = n-1 crashes and the surviving lexmin favourite wins.  MATCHES.",
        "",
        "Theorem 1-4 audit (every cell must be clean at every crash count):",
        format_property_table(report.rows),
    ]
    assert sum(r.property_violations for r in report.rows) == 0
    emit("SCAL_t_independence", "\n".join(lines))
