"""Experiments EMU_* -- the ABD-emulated register backend.

The paper's model assumes 1WMR regular registers; deployments without
physical shared memory must emulate them over message passing.  These
experiments validate that the repo's ABD quorum emulation
(:mod:`repro.memory.emulated`) preserves every paper claim:

* ``EMU_nominal`` / ``EMU_leader_crash`` -- Theorems 1-4 hold for both
  paper algorithms when every register access is a majority quorum
  round (zero property violations);
* ``EMU_equivalence`` -- on deterministic synchronous links, pinned
  (algorithm, scenario, seed) cells elect *identical* leaders under the
  emulated and the shared backend;
* ``EMU_replica_faults`` -- elections survive a minority of replica
  crashes and fair-lossy links (retransmission);
* ``EMU_substrate_cost`` -- what the emulation costs: events and
  protocol messages per election vs the shared backend;
* ``EMU_atomic`` -- what the *atomic* consistency level costs: the ABD
  write-back phase doubles every read's quorum rounds, priced in read
  latency (``EmulatedMemory.total_op_latency`` / ``read_op_latency``)
  and protocol messages against regular reads -- and buys a
  linearizable history (the interval-order audit must be clean);
* ``EMU_membership`` -- what a mid-run reconfiguration costs: the
  replace-one-replica churn plan vs a static member set, priced in
  protocol messages and dual-quorum operations, with the history audit
  clean across both transitions.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_property_table, format_table
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import (
    BACKEND_EQUIVALENCE_CELLS,
    emulated_lossy,
    leader_crash_emulated,
    membership_churn,
    nominal,
    nominal_emulated,
    nominal_emulated_atomic,
    replica_crash,
)
from repro.workloads.sweep import run_matrix

SEEDS = [0, 1, 2]


def test_emu_nominal(benchmark):
    """Theorems 1-4 hold on the emulated backend (nominal workload)."""
    algos = {name: ALGORITHMS[name] for name in ("alg1", "alg2", "alg1-nwnr")}
    scen = nominal_emulated(n=4)

    rows = benchmark.pedantic(
        lambda: run_matrix(algos, [scen], SEEDS, jobs=0, cache=True),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.memory_backend == "emulated"
        assert row.messages_sent > 0
        assert row.stabilized and row.leader_correct
        assert row.property_violations == 0
    lines = [
        "EMU: Theorems 1-4 on the ABD-emulated backend (nominal, 3 replicas, sync links)",
        format_property_table(rows),
        "",
        "paper prediction: the claims are about AS[n, AWB], not about how the",
        "registers are realized; a correct regular-register emulation must",
        "preserve them.  Zero violations across the grid.  MATCHES.",
    ]
    emit("EMU_nominal", "\n".join(lines))


def test_emu_leader_crash(benchmark):
    """Re-election completes through quorum rounds after a leader crash."""
    algos = {name: ALGORITHMS[name] for name in ("alg1", "alg2")}
    scen = leader_crash_emulated(n=4)

    rows = benchmark.pedantic(
        lambda: run_matrix(algos, [scen], SEEDS, jobs=0, cache=True),
        rounds=1,
        iterations=1,
    )
    table = []
    for row in rows:
        assert row.stabilized and row.leader != 0 and row.leader_correct
        assert row.property_violations == 0
        table.append([row.algorithm, row.seed, row.leader, row.stabilization_time])
    lines = [
        "EMU: re-election after leader crash on the emulated backend",
        format_table(["algorithm", "seed", "new leader", "t_stabilize"], table),
        "paper prediction: a correct process is (re-)elected; the substrate",
        "change does not affect liveness.  MATCHES.",
    ]
    emit("EMU_leader_crash", "\n".join(lines))


def test_emu_equivalence(benchmark):
    """Pinned cells elect identical leaders on both backends.

    The cell list lives in
    :data:`repro.workloads.scenarios.BACKEND_EQUIVALENCE_CELLS`, shared
    with the tier-1 equivalence test so the two cannot drift apart.
    """

    def run_pairs():
        pairs = []
        for algo, shared_factory, emulated_factory, seed in BACKEND_EQUIVALENCE_CELLS:
            cls = ALGORITHMS[algo]
            shared = shared_factory(n=4).run(cls, seed=seed).final_leaders()
            emulated = emulated_factory(n=4).run(cls, seed=seed).final_leaders()
            pairs.append((algo, shared_factory.__name__, seed, shared, emulated))
        return pairs

    pairs = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    table = []
    for algo, scen_name, seed, shared, emulated in pairs:
        assert shared == emulated
        table.append([algo, scen_name, seed, sorted(set(shared.values()))[0], "=="])
    lines = [
        "EMU: backend equivalence on synchronous links (identical elected leaders)",
        format_table(["algorithm", "scenario", "seed", "leader", "shared vs emulated"], table),
        "sync links draw no randomness, so an emulated run consumes exactly the",
        "same random streams as the shared run of the same seed; on these cells",
        "the election outcome is identical register for register.",
    ]
    emit("EMU_equivalence", "\n".join(lines))


def test_emu_replica_faults(benchmark):
    """A minority of replica crashes and lossy links are absorbed."""
    algos = {"alg1": ALGORITHMS["alg1"]}
    scens = [replica_crash(n=4), emulated_lossy(n=3)]

    rows = benchmark.pedantic(
        lambda: run_matrix(algos, scens, SEEDS, jobs=0, cache=True),
        rounds=1,
        iterations=1,
    )
    table = []
    for row in rows:
        assert row.stabilized and row.leader_correct
        assert row.property_violations == 0
        table.append(
            [row.scenario, row.seed, row.leader, row.stabilization_time, row.messages_sent]
        )
    lines = [
        "EMU: substrate faults (minority replica crashes; fair-lossy links)",
        format_table(["scenario", "seed", "leader", "t_stabilize", "messages"], table),
        "ABD prediction: quorums survive any minority of replica crashes, and",
        "retransmission rides out fair loss; the election neither stalls nor",
        "churns.  MATCHES.",
    ]
    emit("EMU_replica_faults", "\n".join(lines))


def test_emu_atomic(benchmark):
    """The write-back phase: latency/message cost vs regular reads.

    Same environment, same seeds, the only change is the consistency
    level -- so every extra message and microsecond is the price of
    atomicity, and the linearizability audit is what it buys (the
    ROADMAP's quorum-latency item: this consumes
    ``EmulatedMemory.total_op_latency`` and the per-read split).
    """

    def run_pairs():
        cls = ALGORITHMS["alg1"]
        pairs = []
        for seed in SEEDS:
            regular = nominal_emulated(n=4, horizon=3000.0).run(cls, seed=seed)
            atomic = nominal_emulated_atomic(n=4, horizon=3000.0).run(cls, seed=seed)
            pairs.append((seed, regular, atomic))
        return pairs

    pairs = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    table = []
    ratios = []
    for seed, regular, atomic in pairs:
        audit = atomic.audit_consistency()
        assert audit is not None and audit.ok and audit.ops_checked > 0
        assert regular.audit_consistency() is None  # recorder off: no cost
        assert atomic.memory.write_backs > 0 and regular.memory.write_backs == 0
        assert atomic.stabilization().stabilized and regular.stabilization().stabilized
        reg_lat = regular.memory.read_op_latency / regular.memory.reads_completed
        atm_lat = atomic.memory.read_op_latency / atomic.memory.reads_completed
        assert atm_lat > reg_lat  # the write-back is a real second round
        ratios.append(atm_lat / reg_lat)
        table.append(
            [
                seed,
                f"{reg_lat:.3f}",
                f"{atm_lat:.3f}",
                regular.memory.network.total_sent,
                atomic.memory.network.total_sent,
                f"{audit.ops_checked} ops, 0 violations",
            ]
        )
    mean_ratio = sum(ratios) / len(ratios)
    lines = [
        "EMU: the atomic (write-back) consistency level vs regular reads (alg1, n=4)",
        format_table(
            [
                "seed",
                "regular read lat",
                "atomic read lat",
                "regular msgs",
                "atomic msgs",
                "linearizability audit",
            ],
            table,
        ),
        "",
        f"mean read-latency multiplier: {mean_ratio:.2f}x -- the ABD write-back",
        "is a second full quorum round per read.  ABD prediction: the paper's",
        "algorithms only need regular registers, so the default level stays",
        "'regular'; the atomic level exists to make the emulation *auditable*:",
        "its recorded histories must be linearizable, and they are (zero",
        "violations across the grid).  MATCHES.",
    ]
    emit("EMU_atomic", "\n".join(lines))


def test_emu_substrate_cost(benchmark):
    """What the emulation costs: events and messages per election."""

    def run_pair():
        cls = ALGORITHMS["alg1"]
        shared = nominal(n=4, horizon=3000.0).run(cls, seed=0)
        emulated = nominal_emulated(n=4, horizon=3000.0).run(cls, seed=0)
        return shared, emulated

    shared, emulated = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = [
        ["shared", shared.sim.events_fired, 0, shared.memory.total_reads, shared.memory.total_writes],
        [
            "emulated",
            emulated.sim.events_fired,
            emulated.memory.network.total_sent,
            emulated.memory.total_reads,
            emulated.memory.total_writes,
        ],
    ]
    ratio = emulated.sim.events_fired / shared.sim.events_fired
    lines = [
        "EMU: substrate cost of the quorum emulation (alg1, nominal n=4, seed 0)",
        format_table(["backend", "events", "protocol messages", "reads", "writes"], table),
        "",
        f"event multiplier: {ratio:.1f}x -- every register access becomes one",
        "message round to 3 replicas plus a majority of acks.  This is the",
        "motivation for keeping 'shared' the default backend and the",
        "emulation an explicit axis (--memory emulated).",
    ]
    emit("EMU_substrate_cost", "\n".join(lines))


def test_emu_membership(benchmark):
    """What a mid-run reconfiguration costs: churn vs a static member set.

    Same environment, same seeds; the only change is the two-event
    replace-one-replica churn plan, so every extra message and every
    dual-quorum operation is the in-flight price of dynamic membership
    -- and the clean history audit is what the two-config window buys.
    """

    def run_pairs():
        cls = ALGORITHMS["alg1"]
        pairs = []
        for seed in SEEDS:
            static = membership_churn(n=3, horizon=8000.0, plan=[]).run(cls, seed=seed)
            churned = membership_churn(n=3, horizon=8000.0).run(cls, seed=seed)
            pairs.append((seed, static, churned))
        return pairs

    pairs = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    table = []
    for seed, static, churned in pairs:
        assert static.memory.configs_installed == 0
        assert churned.memory.configs_installed == 2
        assert churned.memory.transfer_rounds == 2
        for result in (static, churned):
            audit = result.audit_consistency()
            assert audit is not None and audit.ok and audit.ops_checked > 0
            assert result.stabilization().stabilized
        table.append(
            [
                seed,
                static.memory.network.total_sent,
                churned.memory.network.total_sent,
                churned.memory.dual_quorum_ops,
                churned.memory.transfer_rounds,
                f"{churned.audit_consistency().ops_checked} ops, 0 violations",
            ]
        )
    lines = [
        "EMU: dynamic membership -- replace-one-replica churn vs a static set (alg1, n=3)",
        format_table(
            [
                "seed",
                "static msgs",
                "churn msgs",
                "dual-quorum ops",
                "transfer rounds",
                "history audit",
            ],
            table,
        ),
        "",
        "Each reconfiguration opens a two-config window (quorums intersect a",
        "majority of BOTH the old and the new config) and closes with one",
        "state-transfer round.  RAMBO-style prediction: reconfiguration is",
        "safe while operations are in flight -- the audited histories stay",
        "regular across both transitions on every seed.  MATCHES.",
    ]
    emit("EMU_membership", "\n".join(lines))
