"""Experiment APP -- the Section 1 motivation, end to end.

Omega exists to power consensus and replication [6, 9, 16, 19].  This
bench drives (a) single-shot consensus over both of the paper's Omega
algorithms, (b) a replicated state machine surviving a leader crash,
and (c) the SAN deployment: the same election running against
disk-latency registers, with the produced interval history checked for
linearizability.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.apps.consensus import ConsensusProcess
from repro.apps.smr import ReplicatedStateMachine
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run
from repro.memory.linearizability import check_single_writer_history
from repro.sim.crash import CrashPlan
from repro.workloads.scenarios import san


def test_consensus_over_both_omegas(benchmark):
    def run_both():
        out = []
        for omega_cls, horizon in [(WriteEfficientOmega, 1500.0), (BoundedOmega, 3000.0)]:
            result = Run(
                ConsensusProcess,
                n=4,
                seed=100,
                horizon=horizon,
                algo_config={"omega_cls": omega_cls},
            ).execute()
            out.append((omega_cls.display_name, result))
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = []
    for name, result in results:
        decisions = {alg.pid: alg.decision for alg in result.algorithms}
        assert all(d is not None for d in decisions.values())
        assert len(set(decisions.values())) == 1
        latest = max(alg.decided_at for alg in result.algorithms)
        table.append([name, decisions[0], latest])
    lines = [
        "Consensus (single-disk Disk Paxos) driven by each Omega algorithm (n=4):",
        format_table(["omega", "decided value", "all decided by t"], table),
        "paper context: Omega is the weakest failure detector for this task [19];",
        "both algorithms drive the same consensus core to agreement.",
    ]
    emit("APP_consensus", "\n".join(lines))


def test_smr_throughput_across_leader_crash(benchmark):
    commands = [f"cmd{i}" for i in range(6)]

    def run():
        return Run(
            ReplicatedStateMachine,
            n=3,
            seed=111,
            horizon=12000.0,
            crash_plan=CrashPlan.single(3, 0, 500.0),
            algo_config={"commands": commands},
        ).execute()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    survivor = result.algorithms[1]
    assert len(survivor.log) == len(commands)
    assert survivor.log == result.algorithms[2].log
    table = [
        [slot, cmd, proposer, f"{t:.0f}"]
        for (slot, t), (cmd, proposer) in zip(survivor.decide_times, survivor.log)
    ]
    lines = [
        "Replicated state machine, leader crash at t=500 (n=3):",
        format_table(["slot", "command", "proposer", "decided at"], table),
        "shape: early slots proposed by pid 0; after its crash a survivor",
        "takes over and the log completes -- identical at all correct replicas.",
    ]
    emit("APP_smr_leader_crash", "\n".join(lines))


def test_disk_paxos_minority_failures(benchmark):
    """Multi-disk Disk Paxos [9]: consensus survives any minority of
    disk crashes plus a process crash -- the SAN redundancy story."""
    from repro.apps.disk_paxos import DiskPaxosProcess

    def run():
        return Run(
            DiskPaxosProcess,
            n=4,
            seed=134,
            horizon=6000.0,
            crash_plan=CrashPlan.single(4, 0, 300.0),
            algo_config={"num_disks": 3, "disk_crash_times": {2: 400.0}},
        ).execute()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    decided = {
        alg.pid: alg.decision
        for alg in result.algorithms
        if result.crash_plan.is_correct(alg.pid)
    }
    assert all(d is not None for d in decided.values())
    assert len(set(decided.values())) == 1
    table = [[pid, value] for pid, value in sorted(decided.items())]
    lines = [
        "Disk Paxos over 3 disks; disk 2 crashes at t=400, process 0 at t=300:",
        format_table(["pid", "decision"], table),
        "paper context: the SAN architecture tolerates disk failures via",
        "majority quorums [9]; agreement holds despite one disk and one",
        "process failing.",
    ]
    emit("APP_disk_paxos", "\n".join(lines))


def test_san_deployment_linearizable(benchmark):
    scen = san(n=3)

    def run():
        return scen.run(WriteEfficientOmega, seed=7)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    lin = check_single_writer_history(result.disk.history)
    assert lin.ok, lin.summary()
    lines = [
        "SAN deployment: Algorithm 1 over network-attached-disk registers",
        f"(latency 1..4 per access): stabilized={report.stabilized} "
        f"leader={report.leader} t={report.time:.0f}",
        lin.summary(),
        "paper context (Section 1): commodity-disk shared memory is the target",
        "deployment; the interval history the run produced is atomic-register",
        "consistent.",
    ]
    emit("APP_san_linearizable", "\n".join(lines))
