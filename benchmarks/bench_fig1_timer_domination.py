"""Experiment F1 -- paper Figure 1: T_R asymptotically dominates f_R.

Regenerates the figure's content as a series: realized timer durations
``T_R(tau, x)`` against the lower-bound function ``f_R`` for an
asymptotically well-behaved timer, showing (a) an arbitrarily
misbehaving prefix (durations below ``f``, i.e. premature firings), and
(b) domination with non-monotone jitter afterwards.  Also reports the
(f1)/(f2)/(f3) verdicts for the shipped ``f`` library, including the
deliberate violators.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_series, format_table
from repro.sim.rng import RngRegistry
from repro.timers.awb import AsymptoticallyWellBehavedTimer
from repro.timers.functions import (
    AffineF,
    BoundedF,
    DecreasingF,
    LinearF,
    LogF,
    SqrtF,
    check_f1,
    check_f2_divergence,
    check_f3_domination,
)

CHAOS_UNTIL = 300.0
TAUS = [0.0, 1.0, 10.0, 100.0, 500.0, 1000.0]
XS = [0.0, 1.0, 2.0, 5.0, 20.0, 100.0, 1000.0]


def collect_series():
    f = LinearF(1.0, tau_f=CHAOS_UNTIL)
    timer = AsymptoticallyWellBehavedTimer(
        f, RngRegistry(1), chaos_until=CHAOS_UNTIL, jitter=0.6
    )
    taus, realized, bound = [], [], []
    x = 5.0
    for step in range(120):
        tau = step * 5.0
        d = timer.duration(0, tau, x)
        taus.append(tau)
        realized.append(d)
        bound.append(f(tau, x))
    return f, timer, taus, realized, bound


def test_fig1_timer_domination(benchmark):
    f, timer, taus, realized, bound = benchmark(collect_series)

    # Shape assertions: chaos fires below f at least once; domination
    # holds everywhere after tau_f.
    chaotic = [d for tau, d in zip(taus, realized) if tau < CHAOS_UNTIL]
    settled = [(tau, d) for tau, d in zip(taus, realized) if tau >= CHAOS_UNTIL]
    assert any(d < f(0.0, 5.0) for d in chaotic), "chaos era should fire early"
    assert all(d >= f(tau, 5.0) for tau, d in settled), "f3 must hold after tau_f"
    assert check_f3_domination(f, timer.history)

    lines = [
        "Figure 1: realized timer duration T_R(tau, x=5) vs lower bound f_R",
        format_series("T_R", taus, realized),
        format_series("f_R", taus, bound),
        f"(chaos until tau={CHAOS_UNTIL:.0f}: T_R may fire arbitrarily early; "
        "afterwards T_R >= f_R with non-monotone jitter)",
        "",
        "f-function conformance (paper conditions f1/f2; f3 vs the timer above):",
    ]
    rows = []
    for name, fn, threshold in [
        ("LinearF(1.0)", LinearF(1.0), 1e3),
        ("AffineF(1,3)", AffineF(1.0, 3.0), 1e3),
        ("SqrtF(1.0)", SqrtF(1.0), 1e3),
        ("LogF(1.0)", LogF(1.0), 15.0),
        ("BoundedF(5) [violator]", BoundedF(5.0), 5.0),
        ("DecreasingF [violator]", DecreasingF(), 5.0),
    ]:
        f1_ok = check_f1(fn, TAUS, XS)
        f2_ok, _ = check_f2_divergence(fn, threshold)
        rows.append([name, f1_ok, f2_ok])
    lines.append(format_table(["f", "f1 (monotone)", "f2 (divergent)"], rows))
    emit("F1_timer_domination", "\n".join(lines))
