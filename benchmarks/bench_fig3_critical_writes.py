"""Experiment F3 -- paper Figure 3: the sequence S of critical writes.

Figure 3 illustrates AWB1: after ``tau_1`` any two consecutive critical
-register accesses of the timely process complete within ``beta``.  We
run Algorithm 1 with a partially synchronous leader (heavy-tailed
before ``gst``, bounded after) and measure the gaps between its
consecutive critical writes -- the empirical ``S`` sequence.  The gap
series must be wild before ``gst`` and uniformly bounded after.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_series, format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import HeavyTailDelay, PartiallySynchronousDelay

GST = 800.0
HORIZON = 3000.0
TIMELY_HI = 1.0


def run_scenario(seed: int = 0):
    rng = RngRegistry(seed)
    delay = PartiallySynchronousDelay(
        base=HeavyTailDelay(rng, scale=0.6, shape=1.2, cap=80.0),
        timely_pids={0},
        gst=GST,
        rng=rng,
        timely_lo=0.5,
        timely_hi=TIMELY_HI,
    )
    return Run(
        WriteEfficientOmega, n=4, seed=seed, horizon=HORIZON, delay_model=delay
    ).execute()


def test_fig3_critical_write_gaps(benchmark):
    result = benchmark.pedantic(run_scenario, rounds=1, iterations=1)

    times = result.memory.critical_write_times(0)
    assert len(times) > 50, "the timely process should write critically a lot"
    gaps = [(t1, t1 - t0) for t0, t1 in zip(times, times[1:])]
    pre = [g for t, g in gaps if t < GST]
    post = [g for t, g in gaps if t >= GST]
    assert post, "no critical writes after gst?"

    # The empirical beta: with bounded step delays and a bounded number
    # of steps between critical writes, the post-gst gap is bounded.
    # Steps between consecutive critical accesses <= leader_query ops
    # (3 * |candidates| <= 12) + bookkeeping; allow slack.
    beta_observed = max(post)
    step_bound = TIMELY_HI * 40
    assert beta_observed < step_bound, f"beta {beta_observed} exceeds structural bound"

    lines = [
        "Figure 3: gaps between consecutive critical writes of the timely process",
        f"(gst = {GST:.0f}; before it the process is heavy-tailed asynchronous)",
        format_series("gap", [t for t, _ in gaps], [g for _, g in gaps]),
        "",
        format_table(
            ["era", "writes", "max gap", "mean gap"],
            [
                ["pre-gst (async)", len(pre), max(pre) if pre else 0.0, sum(pre) / len(pre) if pre else 0.0],
                ["post-gst (AWB1)", len(post), beta_observed, sum(post) / len(post)],
            ],
        ),
        "",
        "paper prediction: after tau_1 consecutive critical accesses complete",
        f"within a bound beta; observed beta = {beta_observed:.1f} (pre-gst max "
        f"{max(pre) if pre else 0.0:.1f}).  MATCHES.",
    ]
    emit("F3_critical_write_gaps", "\n".join(lines))
