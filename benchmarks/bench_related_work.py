"""Experiment RW -- the Section 1 related-work landscape, executed.

The paper positions its AWB assumption against the two message-passing
families.  This bench runs all three under their *own* assumptions and
tabulates the profile the paper's prose describes:

* shared-memory AWB (Algorithm 1): one timely process's *writes*; after
  stabilization a single process writes, one register unbounded;
* message-passing eventual t-source ([2]-style): one process's
  *outgoing links* timely; every process sends heartbeats forever;
* message-passing pattern ([21, 23]-style): no timing at all, only a
  winning-responses order property; every process queries forever.

The assumptions are pairwise incomparable (the paper stresses t-source
vs pattern are; AWB lives in a different model altogether), so the
table is a qualitative map, not a race.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.analysis.write_stats import forever_writers
from repro.core.algorithm1 import WriteEfficientOmega
from repro.netsim.network import EventuallyTimelyLinks, FairLossyLinks
from repro.netsim.runtime import MpRun
from repro.related.omega_pattern import PatternOmega, pattern_friendly_links
from repro.related.omega_tsource import TSourceOmega
from repro.sim.rng import RngRegistry
from repro.workloads.scenarios import awb_only


def test_related_work_landscape(benchmark):
    def run_all():
        shm_scen = awb_only(n=4)
        shm = shm_scen.run(WriteEfficientOmega, seed=5)

        rng = RngRegistry(1)
        ts = MpRun(
            TSourceOmega,
            n=4,
            seed=1,
            horizon=4000.0,
            behavior=EventuallyTimelyLinks(
                FairLossyLinks(rng, loss=0.2), sources={0}, gst=300.0, rng=rng
            ),
        ).execute()

        rng2 = RngRegistry(2)
        pat = MpRun(
            PatternOmega,
            n=4,
            seed=2,
            horizon=4000.0,
            behavior=pattern_friendly_links(rng2, winner=0),
        ).execute()
        return shm_scen, shm, ts, pat

    shm_scen, shm, ts, pat = benchmark.pedantic(run_all, rounds=1, iterations=1)

    shm_report = shm.stabilization(margin=shm_scen.margin)
    ts_report = ts.stabilization(margin=200.0)
    pat_report = pat.stabilization(margin=200.0)
    assert shm_report.stabilized and ts_report.stabilized and pat_report.stabilized

    shm_writers = forever_writers(shm.memory, shm.horizon, window=shm.horizon / 20)
    assert len(shm_writers) == 1
    # Message-passing algorithms keep everyone talking forever.
    assert set(ts.network.sent_by_pid) == set(range(4))
    assert set(pat.network.sent_by_pid) == set(range(4))

    rows = [
        [
            "shared-memory AWB (this paper, Alg 1)",
            "1 process's writes timely + AWB timers",
            shm_report.stabilized,
            len(shm_writers),
            f"{shm.memory.total_writes} writes / {shm.memory.total_reads} reads",
        ],
        [
            "MP eventual t-source [2]",
            "1 process's outgoing links timely; fair-lossy",
            ts_report.stabilized,
            4,
            f"{ts.network.total_sent} msgs ({ts.network.dropped} dropped)",
        ],
        [
            "MP message pattern [21,23]",
            "winning-responses order; NO timing, NO timers",
            pat_report.stabilized,
            4,
            f"{pat.network.total_sent} msgs",
        ],
    ]
    lines = [
        "Related-work landscape: three Omega constructions, each under its own assumption (n=4)",
        format_table(
            ["construction", "assumption", "stabilized", "eventual communicators", "traffic"],
            rows,
        ),
        "",
        "shape: only the shared-memory AWB algorithm converges to a single",
        "communicating process (Theorem 3's write-efficiency has no",
        "message-passing analogue here: heartbeats and queries never stop);",
        "the pattern approach uses no timers at all (time-free), matching the",
        "paper's description of the two families.  MATCHES the qualitative",
        "claims of Section 1.",
    ]
    emit("RW_landscape", "\n".join(lines))
