"""Experiments L5/L6/F4/T5 -- the lower bounds (Lemmas 5-6, Figure 4 /
Theorem 5, Corollary 1).

* Lemma 5: a leader that stops writing is demoted by the followers.
* Lemma 6: a process that stops reading misses the leader's crash.
* Theorem 5 / Corollary 1: with bounded shared memory *all* correct
  processes write forever, and the bounded global state recurs
  (Figure 4's pigeonhole ingredient); Algorithm 1 contrasts with a
  single forever-writer and non-recurring states.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.lowerbound import theorem5_census
from repro.analysis.report import format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.mutants import BlindProcessOmega, MutedLeaderOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan


def test_lemma5_muted_leader_demoted(benchmark):
    def run():
        return Run(
            MutedLeaderOmega,
            n=4,
            seed=80,
            horizon=3000.0,
            algo_config={"muted_pid": 0, "mute_after": 800.0},
        ).execute()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    finals = {pid: leader for _, pid, leader in result.trace.leader_samples()}
    followers = [pid for pid in range(4) if pid != 0]
    assert all(finals[pid] != 0 for pid in followers)
    lines = [
        "Lemma 5 falsification: leader pid 0 stops writing at t=800",
        format_table(
            ["pid", "final leader() output"], [[pid, finals[pid]] for pid in sorted(finals)]
        ),
        "paper prediction: the mute leader is indistinguishable from a crashed",
        "one, so followers demote it (Eventual Leadership breaks).  MATCHES.",
    ]
    emit("L5_muted_leader", "\n".join(lines))


def test_lemma6_blind_process_stuck(benchmark):
    def run():
        return Run(
            BlindProcessOmega,
            n=4,
            seed=81,
            horizon=3000.0,
            algo_config={"blind_pid": 1, "blind_after": 600.0},
            crash_plan=CrashPlan.single(4, 0, 900.0),
        ).execute()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    finals = {pid: leader for _, pid, leader in result.trace.leader_samples()}
    assert finals[1] == 0 and finals[2] != 0 and finals[3] != 0
    lines = [
        "Lemma 6 falsification: pid 1 stops reading at t=600; leader 0 crashes at t=900",
        format_table(
            ["pid", "final leader() output"],
            [[pid, finals[pid]] for pid in sorted(finals) if pid != 0],
        ),
        "paper prediction: the non-reading process cannot detect the crash and",
        "stays on the dead leader while others move on.  MATCHES.",
    ]
    emit("L6_blind_process", "\n".join(lines))


def test_theorem5_forever_writer_census(benchmark):
    def run_all():
        alg1 = Run(
            WriteEfficientOmega, n=4, seed=90, horizon=3000.0, snapshot_interval=20.0
        ).execute()
        alg2 = Run(
            BoundedOmega, n=4, seed=90, horizon=6000.0, snapshot_interval=20.0
        ).execute()
        base = Run(
            EventuallySynchronousOmega, n=4, seed=90, horizon=3000.0, snapshot_interval=20.0
        ).execute()
        return alg1, alg2, base

    alg1, alg2, base = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for result, bounded in [(alg1, False), (alg2, True), (base, False)]:
        census = theorem5_census(result, bounded_memory=bounded, window=300.0)
        rows.append(
            [
                census.algorithm,
                bounded,
                census.forever_writers,
                census.all_correct_write_forever,
                census.recurrence.distinct_states,
                census.recurrence.recurrent,
            ]
        )
        if bounded:
            assert census.all_correct_write_forever  # Corollary 1
            assert census.recurrence.recurrent  # pigeonhole ingredient
        elif result is alg1:
            assert len(census.forever_writers) == 1  # Theorem 3 contrast
            assert not census.recurrence.recurrent  # PROGRESS grows

    lines = [
        "Figure 4 / Theorem 5 / Corollary 1: forever-writer census and state recurrence",
        format_table(
            [
                "algorithm",
                "bounded mem",
                "forever writers",
                "all correct write",
                "distinct states",
                "state recurs",
            ],
            rows,
        ),
        "paper prediction: bounded-memory algorithms keep ALL correct processes",
        "writing forever and their global state recurs (pigeonhole); Algorithm 1",
        "converges to one writer and never repeats a state.  MATCHES.",
        "(the baseline is unbounded (HB grows) yet also keeps everyone writing --",
        "boundedness is sufficient for the census, not necessary)",
    ]
    emit("F4_theorem5_census", "\n".join(lines))
