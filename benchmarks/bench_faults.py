"""Experiments EMU_faults -- elections under injected fault timelines.

The fault-injection subsystem (:mod:`repro.faults`) turns the emulated
substrate hostile on a schedule: replicas crash and rejoin with
amnesia (state-resync before serving), islands get cut off and healed,
and congestion storms stretch every link.  These experiments price what
the paper's algorithms ride out:

* ``EMU_faults_crash_recover`` -- a replica crashes mid-run and rejoins
  through the quorum state-resync; the election neither stalls nor
  violates a theorem, and the resilience counters show the recovery
  actually happened;
* ``EMU_faults_partition_heal`` -- a minority island is severed and
  healed (plus a congestion storm); quorums live on the majority side
  throughout, so elections survive with zero violations;
* ``EMU_faults_retry_policy`` -- exponential backoff vs the fixed
  retransmission interval on fair-lossy links: what the backoff buys
  (fewer duplicate rounds) and what it costs (slower recovery of a
  stuck phase), priced in retransmissions and stabilization time.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import chaos, emulated_lossy
from repro.workloads.sweep import run_matrix

SEEDS = [0, 1, 2]

CRASH_RECOVER_PLAN = [
    {"kind": "replica-crash", "at": 1500.0, "replica": 1},
    {"kind": "replica-recover", "at": 2500.0, "replica": 1},
]

PARTITION_STORM_PLAN = [
    {"kind": "partition", "at": 1500.0, "replicas": [2]},
    {"kind": "heal", "at": 2500.0, "replicas": [2]},
    {"kind": "message-storm", "at": 3200.0, "until": 3800.0, "factor": 3.0},
]


def test_emu_faults_crash_recover(benchmark):
    """A replica crash + amnesia recovery is absorbed by the resync."""
    algos = {name: ALGORITHMS[name] for name in ("alg1", "alg2")}
    scen = chaos(n=3, horizon=8000.0, plan=CRASH_RECOVER_PLAN)

    rows = benchmark.pedantic(
        lambda: run_matrix(algos, [scen], SEEDS, jobs=0, cache=False),
        rounds=1,
        iterations=1,
    )
    table = []
    for row in rows:
        assert row.stabilized and row.leader_correct
        assert row.property_violations == 0 and row.audit_violations == 0
        assert row.integrity_violations == 0
        assert row.recoveries == 1 and row.resyncs == 1
        table.append(
            [row.algorithm, row.seed, row.leader, row.stabilization_time, row.resyncs]
        )
    lines = [
        "EMU_faults: crash -> amnesia recovery -> quorum state-resync (chaos cell)",
        format_table(["algorithm", "seed", "leader", "t_stabilize", "resyncs"], table),
        "",
        "ABD prediction: a recovering replica that refuses reads until it has",
        "merged a majority-of-others snapshot can never serve pre-crash state,",
        "so the monitors and the consistency audit stay clean.  MATCHES.",
    ]
    emit("EMU_faults_crash_recover", "\n".join(lines))


def test_emu_faults_partition_heal(benchmark):
    """A severed minority island (plus a storm) never breaks a quorum."""

    def run_cells():
        cls = ALGORITHMS["alg1"]
        scen = chaos(n=3, horizon=8000.0, plan=PARTITION_STORM_PLAN)
        return [(seed, scen.run(cls, seed=seed, log_reads=False)) for seed in SEEDS]

    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    table = []
    for seed, run in cells:
        assert run.stabilization().stabilized
        audit = run.audit_consistency()
        assert audit is not None and audit.ok
        drops = run.memory.network.behavior.partitioned_drops
        assert drops > 0  # the island was really cut off
        table.append([seed, drops, run.memory.retransmissions, run.memory.network.total_sent])
    lines = [
        "EMU_faults: minority partition + heal + congestion storm (alg1, chaos cell)",
        format_table(["seed", "partition drops", "retransmissions", "messages"], table),
        "",
        "ABD prediction: every quorum lives on the majority side of any",
        "minority island, so elections ride out the window on retransmission",
        "and the healed replica catches up through ordinary timestamped",
        "writes.  Zero violations across the grid.  MATCHES.",
    ]
    emit("EMU_faults_partition_heal", "\n".join(lines))


def test_emu_faults_retry_policy(benchmark):
    """Exponential backoff vs the fixed retry interval on lossy links."""

    def run_pairs():
        cls = ALGORITHMS["alg1"]
        pairs = []
        for seed in SEEDS:
            fixed_scen = emulated_lossy(n=3, horizon=9000.0)
            backoff_scen = emulated_lossy(n=3, horizon=9000.0)
            backoff_scen.name = "emulated-lossy-backoff-n3"
            backoff_scen.emulation = {
                **backoff_scen.emulation,
                "retry_policy": "backoff",
            }
            fixed = fixed_scen.run(cls, seed=seed, log_reads=False)
            backoff = backoff_scen.run(cls, seed=seed, log_reads=False)
            pairs.append((seed, fixed, backoff))
        return pairs

    pairs = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    table = []
    for seed, fixed, backoff in pairs:
        assert fixed.stabilization().stabilized
        assert backoff.stabilization().stabilized
        assert fixed.memory.retransmissions > 0  # loss really bit
        table.append(
            [
                seed,
                fixed.memory.retransmissions,
                backoff.memory.retransmissions,
                f"{fixed.stabilization().time:.0f}",
                f"{backoff.stabilization().time:.0f}",
            ]
        )
    lines = [
        "EMU_faults: fixed vs exponential-backoff retransmission (alg1, emulated-lossy)",
        format_table(
            [
                "seed",
                "fixed retransmits",
                "backoff retransmits",
                "fixed t_stab",
                "backoff t_stab",
            ],
            table,
        ),
        "",
        "The default stays 'fixed' (it draws no randomness, keeping",
        "default-config runs byte-identical across releases); 'backoff' is the",
        "opt-in congestion-friendly policy -- note the retransmission counts",
        "diverge because backoff stretches the retry timers, which is exactly",
        "why enabling it changes a run's event trace.",
    ]
    emit("EMU_faults_retry_policy", "\n".join(lines))
