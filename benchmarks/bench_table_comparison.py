"""Experiment CMP -- the paper's Section 5 trade-off, head to head.

One table over all five algorithms under a common nominal workload:
convergence, post-stabilization writer count, bounded-memory verdict,
and total shared-memory traffic.  The trade-off the paper proves
inherent (bounded memory <-> everybody writes forever) must be visible
as complementary columns for Algorithm 1 vs Algorithm 2.

Runs through the parallel experiment engine: one worker per CPU and the
JSONL cache under ``results/engine/``, so a re-run of an unchanged grid
is a cache hit.
"""

from __future__ import annotations

from _helpers import RESULTS_DIR, emit

from repro.analysis.report import format_property_table, format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.variants import MultiWriterOmega, StepCounterOmega
from repro.workloads.scenarios import nominal
from repro.workloads.sweep import run_matrix

ALGORITHMS = {
    "alg1 (Fig 2)": WriteEfficientOmega,
    "alg2 (Fig 5)": BoundedOmega,
    "alg1-nWnR (S3.5)": MultiWriterOmega,
    "alg1-no-timer (S3.5)": StepCounterOmega,
    "baseline [13]-style": EventuallySynchronousOmega,
}
SEEDS = [0, 1, 2]
ENGINE_CACHE = RESULTS_DIR / "engine"


def test_comparison_table(benchmark):
    scen = nominal(n=4, horizon=9000.0)
    rows = benchmark.pedantic(
        lambda: run_matrix(
            ALGORITHMS,
            [scen],
            SEEDS,
            window=300.0,
            jobs=0,  # 0/None -> one worker per CPU (engine default)
            cache=True,
            results_dir=ENGINE_CACHE,
        ),
        rounds=1,
        iterations=1,
    )

    by_alg: dict[str, list] = {}
    for row in rows:
        by_alg.setdefault(row.algorithm, []).append(row)

    table = []
    for name, alg_rows in by_alg.items():
        stab_times = [r.stabilization_time for r in alg_rows if r.stabilized]
        table.append(
            [
                name,
                f"{sum(1 for r in alg_rows if r.stabilized)}/{len(alg_rows)}",
                sum(stab_times) / len(stab_times) if stab_times else float("inf"),
                max(r.forever_writer_count for r in alg_rows),
                max(r.growing_register_count for r in alg_rows) == 0,
                sum(r.total_writes for r in alg_rows) // len(alg_rows),
                sum(r.total_reads for r in alg_rows) // len(alg_rows),
            ]
        )

    # The paper's inherent trade-off, as assertions on the table:
    def row_for(prefix):
        return next(r for r in table if r[0].startswith(prefix))

    alg1, alg2 = row_for("alg1 ("), row_for("alg2")
    assert alg1[3] == 1 and not alg1[4]  # one writer, unbounded
    assert alg2[3] == 4 and alg2[4]  # all write, bounded
    assert row_for("baseline")[3] == 4 and not row_for("baseline")[4]  # worst of both

    lines = [
        "Section 5 trade-off: algorithms under the nominal workload (n=4, 3 seeds)",
        format_table(
            [
                "algorithm",
                "stabilized",
                "mean t_stab",
                "forever writers",
                "bounded memory",
                "writes/run",
                "reads/run",
            ],
            table,
        ),
        "",
        "paper prediction: Algorithm 1 = 1 forever-writer + unbounded PROGRESS;",
        "Algorithm 2 = bounded memory + all processes write forever; the",
        "trade-off is inherent (Theorem 5).  The nWnR variant keeps Algorithm 1's",
        "profile with ~1/(n-1) of its leader() read traffic; the baseline pays",
        "both costs.  MATCHES.",
    ]
    emit("CMP_tradeoff_table", "\n".join(lines))

    # Theorem audit: every claimed theorem must hold in every cell.
    # Unclaimed columns render parenthesized -- the baseline's measured
    # (no) marks on T2-T4 are the trade-off table in property form.
    assert sum(r.property_violations for r in rows) == 0
    emit(
        "CMP_theorem_audit",
        "\n".join(
            [
                "Theorem 1-4 audit of the comparison grid (ok = claimed and held;",
                "parenthesized = measured but not claimed under this assumption):",
                format_property_table(rows),
                "",
                "0 violations: claims hold wherever they are made; the baseline's",
                "(no) marks on T2-T4 are the price of the stronger assumption.",
            ]
        ),
    )
