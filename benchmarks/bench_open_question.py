"""Experiment OQ -- the paper's open question, probed empirically.

Section 5 asks whether an algorithm can exist in which, after some
time, the eventual leader no longer *reads* the shared memory
(Algorithm 1 is only quasi-optimal on reads: everyone reads
``SUSPICIONS`` forever).  We run the natural candidate -- a leader that
stops reading once confident (:class:`LazyLeaderOmega`) -- and measure
both sides of the coin:

* the prize: under stable conditions the leader's read traffic really
  drops to zero and the election is unaffected;
* the price: a legal asynchrony burst after the leader went lazy
  demotes it at the followers, and, reading nothing, it can never
  learn -- Eventual Leadership breaks permanently, while plain
  Algorithm 1 under the identical schedule recovers.

Conclusion recorded in EXPERIMENTS.md: the naive approach does not
settle the open question positively.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.exploration import LazyLeaderOmega
from repro.core.runner import Run
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import AdversarialStallDelay, StallWindow, UniformDelay

HORIZON = 3000.0


def stall_model(seed: int):
    rng = RngRegistry(seed)
    return AdversarialStallDelay(UniformDelay(rng, 0.5, 1.5), [StallWindow(0, 1200.0, 2000.0)])


def test_open_question_lazy_leader(benchmark):
    def run_all():
        stable = Run(LazyLeaderOmega, n=4, seed=140, horizon=HORIZON).execute()
        disturbed = Run(
            LazyLeaderOmega, n=4, seed=141, horizon=HORIZON, delay_model=stall_model(141)
        ).execute()
        control = Run(
            WriteEfficientOmega, n=4, seed=141, horizon=HORIZON, delay_model=stall_model(141)
        ).execute()
        return stable, disturbed, control

    stable, disturbed, control = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The prize under stable conditions.
    stable_report = stable.stabilization(margin=200.0)
    assert stable_report.stabilized
    leader = stable_report.leader
    leader_tail_reads = len(
        [r for r in stable.memory.reads_in(HORIZON * 0.7, HORIZON) if r.pid == leader]
    )
    assert leader_tail_reads == 0

    # The price under disturbance; the control recovers.
    disturbed_report = disturbed.stabilization(margin=200.0)
    control_report = control.stabilization(margin=200.0)
    assert not disturbed_report.stabilized
    assert control_report.stabilized

    rows = [
        [
            "lazy, stable env",
            stable_report.stabilized,
            f"p{leader}",
            leader_tail_reads,
        ],
        [
            "lazy, stall burst",
            disturbed_report.stabilized,
            "split: p0 vs others",
            0,
        ],
        [
            "plain alg1, stall burst",
            control_report.stabilized,
            f"p{control_report.leader}",
            "(reads forever)",
        ],
    ]
    lines = [
        "Open question (Section 5): can the leader eventually stop reading?",
        format_table(
            ["configuration", "eventual leadership", "final leader(s)", "leader tail reads"],
            rows,
        ),
        "",
        "finding: a confidence-based non-reading leader achieves zero read",
        "traffic while nothing changes, but a legal post-stabilization stall",
        "demotes it and -- reading nothing -- it can never learn; the identical",
        "schedule is absorbed by the always-reading Algorithm 1.  The naive",
        "answer to the open question is NO; any positive answer needs a",
        "mechanism that re-informs the leader, i.e. some form of read.",
    ]
    emit("OQ_lazy_leader", "\n".join(lines))
