"""Shared plumbing for the benchmark harness.

Every bench renders its table/series through here so the artifacts land
in ``results/`` (one text file per experiment id) and EXPERIMENTS.md can
quote them verbatim.  pytest captures stdout, so files are the reliable
channel; we still print for ``-s`` runs.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Write an experiment artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {experiment_id} ===")
    print(text)
