"""Experiments F5/T6/T7 -- paper Figure 5 + Theorems 6, 7.

Algorithm 2: all shared variables bounded (the register maxima plateau
while the horizon doubles), and eventually the only written registers
are the leader's hand-shake pairs ``PROGRESS[ell][i]`` / ``LAST[ell][i]``.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.analysis.write_stats import (
    boundedness,
    forever_writers,
    growing_registers,
    tail_written_registers,
)
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run

HORIZONS = [6000.0, 12000.0]


def run_pair():
    return [Run(BoundedOmega, n=4, seed=50, horizon=h).execute() for h in HORIZONS]


def test_fig5_theorem6_boundedness(benchmark):
    short, long = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = []
    for result in (short, long):
        verdicts = boundedness(result.memory, result.horizon)
        susp_max = max(
            (v.max_value or 0.0) for name, v in verdicts.items() if name.startswith("SUSPICIONS")
        )
        growing = growing_registers(result.memory, result.horizon)
        assert growing == frozenset()  # Theorem 6
        rows.append([result.horizon, susp_max, len(growing)])

    # Doubling the horizon must not grow the suspicion maxima: bounded.
    assert rows[0][1] == rows[1][1], "suspicion maxima should plateau"

    lines = [
        "Figure 5 / Theorem 6: Algorithm 2 boundedness across horizons (n=4, seed 50)",
        format_table(["horizon", "max SUSPICIONS value", "still-growing registers"], rows),
        "paper prediction: every shared variable bounded -- maxima independent of",
        "run length, no register still growing.  MATCHES.",
    ]
    emit("F5_theorem6_boundedness", "\n".join(lines))


def test_fig5_theorem7_writer_set(benchmark):
    def run():
        return Run(BoundedOmega, n=4, seed=50, horizon=6000.0).execute()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    leader = result.stabilization(margin=300.0).leader
    assert leader is not None

    tail_regs = tail_written_registers(result.memory, result.horizon, tail=400.0)
    for name in tail_regs:
        assert name.startswith((f"PROGRESS[{leader}][", f"LAST[{leader}][")), name
    writers = forever_writers(result.memory, result.horizon, window=400.0)
    assert writers == frozenset(range(result.n))  # Corollary 1's price

    rows = [[name, "leader" if name.startswith("PROGRESS") else "partner"] for name in sorted(tail_regs)]
    lines = [
        f"Theorem 7: registers still written in the final 400 time units (leader={leader})",
        format_table(["register", "written by"], rows),
        f"forever-writer census: {sorted(writers)} (all correct processes)",
        "paper prediction: only PROGRESS[l][i] (by the leader) and LAST[l][i]",
        "(by each partner) are eventually written, and every correct process",
        "keeps writing (the Theorem 5 price).  MATCHES.",
    ]
    emit("F5_theorem7_writer_set", "\n".join(lines))
