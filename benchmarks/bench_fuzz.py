"""Experiments FUZZ -- coverage-guided scenario fuzzing as a workload.

The fuzzer (:mod:`repro.fuzz`) walks the scenario space one axis
mutation at a time, keeping genomes whose runs land in novel
trace-feature signatures.  These experiments price it and pin its two
headline behaviours:

* ``FUZZ_coverage_sweep`` -- a fixed-seed budget through the parallel
  engine: how many distinct behaviour signatures a modest corpus
  reaches, at what wall-clock cost, with the clean-tree bar (zero
  violations) asserted on the way;
* ``FUZZ_negative_control`` -- the recover-without-resync canary: the
  oracles catch the broken emulation, the shrinker reduces it to a
  mutation-minimal genome, and the pinned repro replays red through the
  scenario registry.
"""

from __future__ import annotations

from _helpers import emit

from repro.analysis.report import format_table
from repro.fuzz.loop import FuzzConfig, amnesia_probe, replay_regressions, run_fuzz

BASE_HORIZON = 1500.0


def test_fuzz_coverage_sweep(benchmark):
    """A fixed-seed 24-genome budget reaches a two-digit signature count."""
    config = FuzzConfig(seed=0, budget=24, batch=12, horizon=BASE_HORIZON)

    result = benchmark.pedantic(lambda: run_fuzz(config), rounds=1, iterations=1)
    assert result.ok, [v.genome.to_jsonable() for v in result.violations]
    assert result.genomes_run == 24
    assert result.total_signatures >= 10

    table = [
        ["genomes run", result.genomes_run],
        ["distinct signatures", result.total_signatures],
        ["corpus size", result.corpus_size],
        ["violations", len(result.violations)],
        ["engine failures", len(result.failures)],
    ]
    lines = [
        f"FUZZ: coverage-guided sweep (seed 0, base horizon {BASE_HORIZON:g})",
        format_table(["metric", "value"], table),
        "",
        "Paper tie-in: the theorems promise a clean run on EVERY genome the",
        "vocabularies can compose (they all stay inside the AWB assumption),",
        "so coverage growth with zero violations is the reproduction-level",
        "generalisation of the per-scenario `repro check` table.  MATCHES.",
    ]
    emit("FUZZ_coverage_sweep", "\n".join(lines))


def test_fuzz_negative_control(benchmark, tmp_path):
    """The broken-resync canary is caught, shrunk and pinned."""
    corpus_dir = tmp_path / "corpus"
    config = FuzzConfig(seed=0, budget=1, batch=1, horizon=BASE_HORIZON, resync=False)
    probe = amnesia_probe(BASE_HORIZON)

    result = benchmark.pedantic(
        lambda: run_fuzz(config, corpus_dir=corpus_dir, initial=[probe]),
        rounds=1,
        iterations=1,
    )
    assert not result.ok
    violation = result.violations[0]
    assert violation.shrunk is not None and violation.shrunk.complexity() <= 6
    replays = replay_regressions(corpus_dir)
    assert replays and all(count > 0 for _, _, count in replays)

    table = [
        ["oracle violations", violation.violations],
        ["shrunk complexity", violation.shrunk.complexity()],
        ["shrink oracle runs", violation.oracle_runs],
        ["pinned regressions", len(replays)],
        ["replay still red", sum(1 for _, _, c in replays if c > 0)],
    ]
    lines = [
        "FUZZ: negative control (recover-without-resync canary)",
        format_table(["metric", "value"], table),
        "",
        "ABD prediction: one amnesiac replica cannot corrupt a majority",
        "quorum; the violation needs the second crash that forces reads to",
        "count the stale replica -- exactly the two-pair shape the shrinker",
        "preserves while stripping every irrelevant axis.  MATCHES.",
    ]
    emit("FUZZ_negative_control", "\n".join(lines))
