"""Legacy shim so ``pip install -e .`` works offline without the
``wheel`` package (the environment has no network access); metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
