"""Timer behaviour models: chaos, domination, history recording."""

from __future__ import annotations

import pytest

from repro.timers.awb import (
    AccurateTimer,
    AsymptoticallyWellBehavedTimer,
    CappedTimer,
    EventuallyMonotoneTimer,
)
from repro.timers.functions import LinearF, check_f3_domination
from tests.conftest import make_rng


class TestAccurateTimer:
    def test_duration_equals_timeout(self):
        timer = AccurateTimer()
        assert timer.duration(0, 10.0, 5.0) == 5.0

    def test_history_recorded(self):
        timer = AccurateTimer()
        timer.duration(0, 1.0, 2.0)
        timer.duration(0, 3.0, 4.0)
        assert timer.history == [(1.0, 2.0, 2.0), (3.0, 4.0, 4.0)]

    def test_zero_timeout_still_positive(self):
        assert AccurateTimer().duration(0, 0.0, 0.0) > 0


class TestAsymptoticallyWellBehavedTimer:
    def _timer(self, chaos_until=100.0, **kw):
        return AsymptoticallyWellBehavedTimer(
            LinearF(1.0), make_rng(7), chaos_until=chaos_until, **kw
        )

    def test_chaotic_prefix_ignores_timeout(self):
        timer = self._timer(chaos_until=100.0, chaos_lo=0.05, chaos_hi=2.0)
        durations = [timer.duration(0, 10.0, x) for x in (1.0, 100.0, 10000.0)]
        assert all(0.05 <= d <= 2.0 for d in durations)

    def test_chaotic_prefix_can_fire_early(self):
        """The whole point: before tau_f a timer set to a huge timeout
        may expire almost immediately (causing false suspicions)."""
        timer = self._timer(chaos_until=100.0, chaos_hi=1.0)
        assert timer.duration(0, 0.0, 1e9) <= 1.0

    def test_dominates_f_after_chaos(self):
        timer = self._timer(chaos_until=100.0, jitter=0.5)
        for x in (1.0, 3.0, 10.0, 50.0):
            d = timer.duration(0, 200.0, x)
            assert d >= x  # f(x) = x

    def test_f3_holds_on_full_history(self):
        timer = self._timer(chaos_until=100.0)
        for tau in (0.0, 50.0, 150.0, 300.0):
            for x in (1.0, 5.0, 20.0):
                timer.duration(0, tau, x)
        assert check_f3_domination(LinearF(1.0), timer.history, tau_f=100.0, x_f=0.0)

    def test_not_monotone_after_chaos(self):
        """Figure 1: T_R may wiggle, it only has to stay above f."""
        timer = self._timer(chaos_until=0.0, jitter=1.0)
        durations = [timer.duration(0, 10.0, 5.0) for _ in range(64)]
        assert len(set(durations)) > 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AsymptoticallyWellBehavedTimer(LinearF(1.0), make_rng(1), chaos_lo=2.0, chaos_hi=1.0)
        with pytest.raises(ValueError):
            AsymptoticallyWellBehavedTimer(LinearF(1.0), make_rng(1), jitter=-0.1)


class TestEventuallyMonotoneTimer:
    def test_exact_after_stabilization(self):
        timer = EventuallyMonotoneTimer(make_rng(3), accurate_after=50.0, alpha=2.0)
        assert timer.duration(0, 60.0, 4.0) == 8.0

    def test_is_awb_special_case(self):
        """Eventually-monotone timers dominate f = alpha*x after tau_f."""
        timer = EventuallyMonotoneTimer(make_rng(3), accurate_after=50.0, alpha=2.0)
        for tau in (0.0, 20.0, 60.0, 100.0):
            for x in (1.0, 5.0):
                timer.duration(0, tau, x)
        assert check_f3_domination(LinearF(2.0), timer.history, tau_f=50.0, x_f=0.0)


class TestCappedTimer:
    def test_never_exceeds_cap(self):
        timer = CappedTimer(make_rng(5), cap=3.0)
        for x in (1.0, 10.0, 1e6):
            assert timer.duration(0, 0.0, x) <= 3.0

    def test_violates_f3_for_divergent_f(self):
        timer = CappedTimer(make_rng(5), cap=3.0)
        for x in (10.0, 100.0, 1000.0):
            timer.duration(0, 500.0, x)
        assert not check_f3_domination(LinearF(1.0), timer.history, tau_f=0.0, x_f=5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CappedTimer(make_rng(1), cap=1.0, lo=2.0)
