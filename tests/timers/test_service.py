"""The kernel-attached timer service."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Simulator
from repro.timers.awb import AccurateTimer
from repro.timers.service import TimerService


def make_service(n: int = 2):
    sim = Simulator()
    service = TimerService(sim, {pid: AccurateTimer() for pid in range(n)})
    return sim, service


class TestTimerService:
    def test_fires_after_behaviour_duration(self):
        sim, service = make_service()
        fired = []
        service.set_timer(0, 5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_rearming_cancels_previous(self):
        sim, service = make_service()
        fired = []
        service.set_timer(0, 5.0, lambda: fired.append("first"))
        service.set_timer(0, 10.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["second"]

    def test_timers_of_different_pids_independent(self):
        sim, service = make_service()
        fired = []
        service.set_timer(0, 5.0, lambda: fired.append(0))
        service.set_timer(1, 3.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1, 0]

    def test_cancel(self):
        sim, service = make_service()
        fired = []
        service.set_timer(0, 5.0, lambda: fired.append("x"))
        service.cancel(0)
        sim.run()
        assert fired == []

    def test_cancel_unknown_pid_is_noop(self):
        _, service = make_service()
        service.cancel(99)

    def test_history_records_set_time_timeout_duration(self):
        sim, service = make_service()
        service.set_timer(0, 5.0, lambda: None)
        sim.run()
        assert service.history_by_pid[0] == [(0.0, 5.0, 5.0)]

    def test_active_timer_handle(self):
        sim, service = make_service()
        assert service.active_timer(0) is None
        handle = service.set_timer(0, 5.0, lambda: None)
        assert service.active_timer(0) is handle
        assert handle.fires_at == 5.0

    def test_behavior_lookup(self):
        _, service = make_service()
        assert isinstance(service.behavior(0), AccurateTimer)
        with pytest.raises(KeyError):
            service.behavior(42)

    def test_rearm_from_callback(self):
        sim, service = make_service()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                service.set_timer(0, 2.0, on_fire)

        service.set_timer(0, 2.0, on_fire)
        sim.run()
        assert fired == [2.0, 4.0, 6.0]
