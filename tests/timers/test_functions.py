"""The f-function library and the (f1)/(f2)/(f3) checks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timers.functions import (
    AffineF,
    BoundedF,
    DecreasingF,
    LinearF,
    LogF,
    SqrtF,
    check_f1,
    check_f2_divergence,
    check_f3_domination,
)

TAUS = [0.0, 1.0, 10.0, 100.0, 1000.0]
XS = [0.0, 1.0, 2.0, 5.0, 50.0, 500.0]


class TestConformingFunctions:
    @pytest.mark.parametrize("f", [LinearF(2.0), AffineF(1.0, 3.0), SqrtF(4.0), LogF(5.0)])
    def test_f1_monotone(self, f):
        assert check_f1(f, TAUS, XS)

    @pytest.mark.parametrize("f", [LinearF(0.5), AffineF(0.1, 0.0), SqrtF(0.2)])
    def test_f2_divergence(self, f):
        ok, x_star = check_f2_divergence(f, threshold=1000.0)
        assert ok
        assert f(f.tau_f, x_star) > 1000.0

    def test_log_f_diverges_slowly(self):
        """LogF satisfies (f2) but needs astronomically large timeouts;
        the doubling search still finds the crossing for a low bar."""
        ok, x_star = check_f2_divergence(LogF(1.0), threshold=15.0)
        assert ok
        assert LogF(1.0)(0.0, x_star) > 15.0

    def test_linear_values(self):
        assert LinearF(2.0)(0.0, 3.0) == 6.0

    def test_affine_values(self):
        assert AffineF(2.0, 1.0)(0.0, 3.0) == 7.0

    def test_linear_alpha_must_be_positive(self):
        with pytest.raises(ValueError):
            LinearF(0.0)(0.0, 1.0)


class TestViolators:
    def test_bounded_f_fails_f2(self):
        ok, _ = check_f2_divergence(BoundedF(cap=5.0), threshold=5.0)
        assert not ok

    def test_bounded_f_still_monotone(self):
        assert check_f1(BoundedF(cap=5.0), TAUS, XS)

    def test_decreasing_f_fails_f1(self):
        assert not check_f1(DecreasingF(), TAUS, XS)


class TestF3Domination:
    def test_dominating_history_passes(self):
        f = LinearF(1.0)
        realized = [(10.0, 5.0, 5.5), (20.0, 7.0, 9.0)]
        assert check_f3_domination(f, realized)

    def test_violating_sample_fails(self):
        f = LinearF(1.0)
        realized = [(10.0, 5.0, 4.0)]  # duration < f = 5.0
        assert not check_f3_domination(f, realized)

    def test_samples_before_cutoff_unconstrained(self):
        f = LinearF(1.0, tau_f=100.0)
        realized = [(10.0, 5.0, 0.001)]  # chaotic era: allowed
        assert check_f3_domination(f, realized)

    def test_explicit_cutoffs_override(self):
        f = LinearF(1.0)
        realized = [(10.0, 5.0, 0.001)]
        assert check_f3_domination(f, realized, tau_f=50.0)
        assert not check_f3_domination(f, realized, tau_f=0.0)


class TestMonotonicityProperty:
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_linear_monotone_in_x(self, alpha, x1, x2):
        f = LinearF(alpha)
        lo, hi = sorted((x1, x2))
        assert f(0.0, lo) <= f(0.0, hi)

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_sqrt_dominates_nothing_below_zero(self, x):
        assert SqrtF(1.0)(0.0, x) >= 0.0

    @given(st.floats(min_value=1.0, max_value=1e5))
    def test_bounded_never_exceeds_cap(self, x):
        assert BoundedF(cap=7.0)(0.0, x) < 7.0
