"""Unit tests for the lint core: findings, suppressions, alias maps."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint.findings import (
    Finding,
    SourceFile,
    dotted_name,
    import_aliases,
    resolve_call_target,
)


def make_source(tmp_path: Path, text: str, name: str = "mod.py") -> SourceFile:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return SourceFile.load(path, display_path=name)


class TestFinding:
    def test_family_is_the_prefix_before_the_first_dash(self):
        f = Finding(rule="determinism-wall-clock", path="a.py", line=3, message="m")
        assert f.family == "determinism"

    def test_baseline_key_omits_the_line_number(self):
        a = Finding(rule="r-x", path="p.py", line=3, message="m")
        b = Finding(rule="r-x", path="p.py", line=99, message="m")
        assert a.baseline_key == b.baseline_key

    def test_render_is_path_line_rule_message(self):
        f = Finding(rule="r-x", path="p.py", line=3, message="boom")
        assert f.render() == "p.py:3: [r-x] boom"


class TestSuppressions:
    def test_same_line_disable_by_rule_name(self, tmp_path):
        src = make_source(tmp_path, "x = 1  # repro-lint: disable=determinism-set-pop\n")
        f = Finding(rule="determinism-set-pop", path="mod.py", line=1, message="m")
        assert src.is_suppressed(f)

    def test_preceding_line_disable(self, tmp_path):
        src = make_source(tmp_path, "# repro-lint: disable=purity-import\nimport os\n")
        f = Finding(rule="purity-import", path="mod.py", line=2, message="m")
        assert src.is_suppressed(f)

    def test_family_name_disables_every_rule_in_the_family(self, tmp_path):
        src = make_source(tmp_path, "x = 1  # repro-lint: disable=determinism\n")
        f = Finding(rule="determinism-next-iter", path="mod.py", line=1, message="m")
        assert src.is_suppressed(f)

    def test_all_disables_everything(self, tmp_path):
        src = make_source(tmp_path, "x = 1  # repro-lint: disable=all\n")
        f = Finding(rule="anything-at-all", path="mod.py", line=1, message="m")
        assert src.is_suppressed(f)

    def test_unrelated_rule_name_does_not_suppress(self, tmp_path):
        src = make_source(tmp_path, "x = 1  # repro-lint: disable=purity-import\n")
        f = Finding(rule="determinism-set-pop", path="mod.py", line=1, message="m")
        assert not src.is_suppressed(f)

    def test_comma_separated_list(self, tmp_path):
        src = make_source(
            tmp_path, "x = 1  # repro-lint: disable=purity-import, determinism-set-pop\n"
        )
        for rule in ("purity-import", "determinism-set-pop"):
            assert src.is_suppressed(Finding(rule=rule, path="mod.py", line=1, message="m"))

    def test_disable_inside_a_string_literal_is_ignored(self, tmp_path):
        src = make_source(tmp_path, 'x = "# repro-lint: disable=all"\n')
        f = Finding(rule="r-x", path="mod.py", line=1, message="m")
        assert not src.is_suppressed(f)

    def test_distant_comment_does_not_suppress(self, tmp_path):
        src = make_source(tmp_path, "# repro-lint: disable=all\n\n\nx = 1\n")
        f = Finding(rule="r-x", path="mod.py", line=4, message="m")
        assert not src.is_suppressed(f)


class TestAliasResolution:
    def test_plain_import(self):
        tree = ast.parse("import time\ntime.time()")
        aliases = import_aliases(tree)
        call = tree.body[1].value
        assert resolve_call_target(call, aliases) == "time.time"

    def test_aliased_import(self):
        tree = ast.parse("import time as t\nt.monotonic()")
        call = tree.body[1].value
        assert resolve_call_target(call, import_aliases(tree)) == "time.monotonic"

    def test_from_import(self):
        tree = ast.parse("from os import urandom\nurandom(8)")
        call = tree.body[1].value
        assert resolve_call_target(call, import_aliases(tree)) == "os.urandom"

    def test_from_import_with_alias(self):
        tree = ast.parse("from os import urandom as rnd\nrnd(8)")
        call = tree.body[1].value
        assert resolve_call_target(call, import_aliases(tree)) == "os.urandom"

    def test_dotted_name_flattens_chains(self):
        node = ast.parse("a.b.c").body[0].value
        assert dotted_name(node) == "a.b.c"

    def test_dotted_name_rejects_calls(self):
        node = ast.parse("a().b").body[0].value
        assert dotted_name(node) is None

    def test_unparsable_file_has_no_tree(self, tmp_path):
        src = make_source(tmp_path, "def broken(:\n")
        assert src.tree is None
