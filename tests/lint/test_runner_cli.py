"""End-to-end lint tests: runner, CLI exit codes, and the baseline ratchet.

The acceptance contract lives here: ``repro lint`` exits non-zero on a
seeded violation of each of the four rule families (driven through the
real CLI against tmp-dir fixture trees), exits zero on the committed
tree, and the kernel-purity rule catches a construct that *actually*
breaks ``tools/build_kernel_ext.py --pure`` compilation.
"""

from __future__ import annotations

import importlib.util
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import load_baseline, run_lint, write_baseline
from repro.lint.config import REBIND_MARKER
from repro.lint.findings import Finding

REPO = Path(__file__).resolve().parent.parent.parent
BUILD_TOOL = REPO / "tools" / "build_kernel_ext.py"


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def clean_kernel() -> str:
    """A minimal kernel module satisfying every purity rule."""
    return f"""
    import heapq

    {REBIND_MARKER} ------------------------------------------------
    """


@pytest.fixture()
def fixture_tree(tmp_path):
    """A minimal lintable package tree that passes every rule."""
    root = tmp_path / "pkg"
    write(root, "sim/events.py", clean_kernel())
    write(root, "sim/kernel.py", clean_kernel())
    write(root, "cli.py", "CHECK_SCENARIOS = []\nCHECK_EXEMPT_SCENARIOS = []\n")
    write(root, "workloads/registry.py", "SCENARIO_FACTORIES = {}\n")
    (tmp_path / "tests").mkdir(exist_ok=True)
    return root


def lint_cli(root: Path, *extra: str) -> int:
    """Invoke the real ``repro lint`` CLI against a fixture tree."""
    tests = root.parent / "tests"
    return main(
        ["lint", "--root", str(root), "--tests", str(tests), "--no-baseline", *extra]
    )


class TestSeededViolationsExitNonzeroPerFamily:
    """Acceptance: one seeded violation per family -> CLI exit 1."""

    def test_clean_fixture_tree_exits_zero(self, fixture_tree):
        assert lint_cli(fixture_tree) == 0

    def test_determinism_violation(self, fixture_tree):
        write(fixture_tree, "sim/clocked.py", "import time\nt0 = time.time()\n")
        assert lint_cli(fixture_tree) == 1

    def test_purity_violation(self, fixture_tree):
        write(fixture_tree, "sim/kernel.py", f"import os\n\n{REBIND_MARKER}\n")
        assert lint_cli(fixture_tree) == 1

    def test_registry_violation(self, fixture_tree):
        write(fixture_tree, "workloads/registry.py", "SCENARIO_FACTORIES = {'lost': 1}\n")
        assert lint_cli(fixture_tree) == 1

    def test_dispatch_violation(self, fixture_tree):
        write(
            fixture_tree,
            "netsim/grabby.py",
            "def drain(queue):\n    return queue._heap[0]\n",
        )
        assert lint_cli(fixture_tree) == 1

    def test_rules_filter_limits_the_run(self, fixture_tree):
        write(fixture_tree, "sim/clocked.py", "import time\nt0 = time.time()\n")
        assert lint_cli(fixture_tree, "--rules", "purity") == 0
        assert lint_cli(fixture_tree, "--rules", "determinism") == 1

    def test_suppression_comment_silences_the_finding(self, fixture_tree):
        write(
            fixture_tree,
            "sim/clocked.py",
            "import time\nt0 = time.time()  # repro-lint: disable=determinism-wall-clock\n",
        )
        assert lint_cli(fixture_tree) == 0

    def test_unparsable_file_is_a_finding(self, fixture_tree):
        write(fixture_tree, "sim/broken.py", "def nope(:\n")
        assert lint_cli(fixture_tree) == 1

    def test_unknown_rule_family_is_a_usage_error(self, fixture_tree, capsys):
        assert (
            main(["lint", "--root", str(fixture_tree), "--no-baseline"]) == 0
        )
        code = main(
            ["lint", "--root", str(fixture_tree), "--no-baseline", "--rules"]
        )
        assert code == 0  # empty --rules falls back to all families
        with pytest.raises(SystemExit):  # argparse rejects unknown choices
            main(["lint", "--root", str(fixture_tree), "--rules", "astrology"])


class TestCommittedTree:
    """Acceptance: the committed tree lints clean through the real CLI."""

    def test_repro_lint_exits_zero_on_the_committed_tree(self):
        assert main(["lint"]) == 0

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO / "tools" / "lint_baseline.json")
        assert baseline.total == 0


class TestBaselineRatchet:
    def seed_violation(self, root: Path) -> None:
        write(root, "sim/clocked.py", "import time\nt0 = time.time()\n")

    def test_update_baseline_then_clean_exit(self, fixture_tree, tmp_path):
        self.seed_violation(fixture_tree)
        baseline = tmp_path / "baseline.json"
        tests = tmp_path / "tests"
        assert (
            main(
                ["lint", "--root", str(fixture_tree), "--tests", str(tests),
                 "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert load_baseline(baseline).total == 1
        # Grandfathered finding: reported but not fatal.
        assert (
            main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
                  "--baseline", str(baseline)])
            == 0
        )

    def test_adding_a_violation_fails_despite_the_baseline(self, fixture_tree, tmp_path):
        self.seed_violation(fixture_tree)
        baseline = tmp_path / "baseline.json"
        tests = tmp_path / "tests"
        main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
              "--baseline", str(baseline), "--update-baseline"])
        write(fixture_tree, "memory/entropic.py", "import os\nkey = os.urandom(8)\n")
        assert (
            main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
                  "--baseline", str(baseline)])
            == 1
        )

    def test_fixing_a_violation_makes_the_stale_entry_fatal(self, fixture_tree, tmp_path, capsys):
        self.seed_violation(fixture_tree)
        baseline = tmp_path / "baseline.json"
        tests = tmp_path / "tests"
        main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
              "--baseline", str(baseline), "--update-baseline"])
        (fixture_tree / "sim" / "clocked.py").unlink()  # the fix
        code = main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
                     "--baseline", str(baseline)])
        assert code == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_update_baseline_shrinks_after_a_fix(self, fixture_tree, tmp_path):
        self.seed_violation(fixture_tree)
        baseline = tmp_path / "baseline.json"
        tests = tmp_path / "tests"
        main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
              "--baseline", str(baseline), "--update-baseline"])
        (fixture_tree / "sim" / "clocked.py").unlink()
        main(["lint", "--root", str(fixture_tree), "--tests", str(tests),
              "--baseline", str(baseline), "--update-baseline"])
        assert load_baseline(baseline).total == 0
        payload = json.loads(baseline.read_text())
        assert payload["findings"] == {}

    def test_partition_is_a_multiset(self, tmp_path):
        finding = Finding(rule="r-x", path="p.py", line=1, message="m")
        twice = [finding, finding]
        baseline = write_baseline(tmp_path / "baseline.json", twice)
        new, grandfathered, stale = baseline.partition([finding])
        assert not new and len(grandfathered) == 1 and len(stale) == 1


class TestRunnerApi:
    def test_run_lint_defaults_to_the_installed_package(self):
        report = run_lint()
        assert report.exit_code == 0
        assert report.files_scanned > 60

    def test_run_lint_rejects_unknown_families(self):
        with pytest.raises(ValueError, match="unknown rule families"):
            run_lint(families=["astrology"])

    def test_generated_ckernel_files_are_skipped(self, fixture_tree):
        write(fixture_tree, "sim/_ckernel.py", "import time\nt0 = time.time()\n")
        report = run_lint(root=fixture_tree, use_baseline=False)
        assert report.exit_code == 0


# ----------------------------------------------------------------------
# The purity rule mirrors a real build failure
# ----------------------------------------------------------------------
def load_build_tool():
    spec = importlib.util.spec_from_file_location("build_kernel_ext", BUILD_TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPurityRuleMatchesTheRealBuild:
    """Acceptance: the construct the purity rule flags really does break
    ``tools/build_kernel_ext.py --pure`` compilation."""

    def test_missing_marker_breaks_strip_tail_and_trips_the_rule(self, fixture_tree):
        # The seeded construct: a kernel module without the rebind marker.
        markerless = "import heapq\n\nclass EventQueue:\n    pass\n"
        path = write(fixture_tree, "sim/events.py", markerless)

        # (a) the purity rule flags it...
        report = run_lint(root=fixture_tree, use_baseline=False, families=["purity"])
        assert any(f.rule == "purity-rebind-marker" for f in report.new)

        # (b) ...and the real build tool dies on the very same source.
        build = load_build_tool()
        with pytest.raises(SystemExit):
            build._strip_tail(path.read_text(encoding="utf-8"), "events.py")

    def test_the_committed_kernel_passes_both(self):
        build = load_build_tool()
        for name in ("events.py", "kernel.py"):
            source = (REPO / "src" / "repro" / "sim" / name).read_text(encoding="utf-8")
            build._strip_tail(source, name)  # must not raise
        report = run_lint(families=["purity"])
        assert report.exit_code == 0
