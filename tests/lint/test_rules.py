"""Positive/negative fixtures for each lint rule family."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import determinism, dispatch, purity, registry_rules, typing_rules
from repro.lint.config import REBIND_MARKER
from repro.lint.findings import SourceFile


def make_source(tmp_path: Path, text: str, name: str) -> SourceFile:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return SourceFile.load(path, display_path=name)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_wall_clock_read_is_flagged(self, tmp_path):
        src = make_source(tmp_path, "import time\nt0 = time.time()\n", "sim/mod.py")
        assert rules_of(determinism.check(src)) == ["determinism-wall-clock"]

    def test_aliased_wall_clock_read_is_flagged(self, tmp_path):
        src = make_source(tmp_path, "import time as t\nt0 = t.monotonic()\n", "sim/mod.py")
        assert rules_of(determinism.check(src)) == ["determinism-wall-clock"]

    def test_entropy_read_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path, "from os import urandom\nkey = urandom(16)\n", "memory/mod.py"
        )
        assert rules_of(determinism.check(src)) == ["determinism-entropy"]

    def test_module_level_random_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path, "import random\nx = random.randint(0, 9)\n", "netsim/mod.py"
        )
        assert rules_of(determinism.check(src)) == ["determinism-global-random"]

    def test_seeded_random_instance_is_allowed(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
            "sim/mod.py",
        )
        assert determinism.check(src) == []

    def test_set_pop_on_set_comprehension_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def leader_of(last, correct):
                finals = {last[pid] for pid in correct}
                return finals.pop()
            """,
            "props/mod.py",
        )
        assert rules_of(determinism.check(src)) == ["determinism-set-pop"]

    def test_set_pop_on_set_call_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def leader_of(values):
                common = set(values)
                return common.pop()
            """,
            "analysis/mod.py",
        )
        assert rules_of(determinism.check(src)) == ["determinism-set-pop"]

    def test_list_pop_is_not_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def last_of(values):
                stack = list(values)
                return stack.pop()
            """,
            "sim/mod.py",
        )
        assert determinism.check(src) == []

    def test_next_iter_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def any_of(writers):
                return next(iter(writers))
            """,
            "analysis/mod.py",
        )
        assert rules_of(determinism.check(src)) == ["determinism-next-iter"]

    def test_min_extraction_is_the_clean_alternative(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def leader_of(values):
                common = set(values)
                return min(common)
            """,
            "analysis/mod.py",
        )
        assert determinism.check(src) == []

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        src = make_source(tmp_path, "import time\nt0 = time.time()\n", "engine/mod.py")
        assert determinism.check(src) == []

    def test_generated_kernel_artifact_is_ignored(self, tmp_path):
        src = make_source(tmp_path, "import time\nt0 = time.time()\n", "sim/_ckernel_src.py")
        assert determinism.check(src) == []


# ----------------------------------------------------------------------
# Kernel purity
# ----------------------------------------------------------------------
KERNEL_OK = f"""
from __future__ import annotations

import heapq
from typing import Any

class EventQueue:
    pass

{REBIND_MARKER} ---------------------------------------------------
import os  # the uncompiled tail may import anything
"""


class TestPurityRule:
    def test_clean_kernel_module_passes(self, tmp_path):
        src = make_source(tmp_path, KERNEL_OK, "sim/events.py")
        assert purity.check(src) == []

    def test_missing_rebind_marker_is_flagged(self, tmp_path):
        src = make_source(tmp_path, "import heapq\n", "sim/kernel.py")
        assert rules_of(purity.check(src)) == ["purity-rebind-marker"]

    def test_import_outside_the_closure_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path, f"import os\n\n{REBIND_MARKER}\n", "sim/events.py"
        )
        assert rules_of(purity.check(src)) == ["purity-import"]

    def test_relative_import_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path, f"from . import events\n\n{REBIND_MARKER}\n", "sim/kernel.py"
        )
        assert rules_of(purity.check(src)) == ["purity-import"]

    def test_sibling_kernel_import_is_allowed(self, tmp_path):
        src = make_source(
            tmp_path,
            f"from repro.sim.events import EventQueue\n\n{REBIND_MARKER}\n",
            "sim/kernel.py",
        )
        assert purity.check(src) == []

    def test_unsupported_decorator_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            f"""
            import functools

            @functools.lru_cache(maxsize=None)
            def hot(x):
                return x

            {REBIND_MARKER}
            """,
            "sim/kernel.py",
        )
        assert "purity-decorator" in rules_of(purity.check(src))

    def test_property_decorator_is_allowed(self, tmp_path):
        src = make_source(
            tmp_path,
            f"""
            class Simulator:
                @property
                def now(self):
                    return self._now

            {REBIND_MARKER}
            """,
            "sim/kernel.py",
        )
        assert purity.check(src) == []

    def test_dynamic_attribute_injection_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            f"""
            def install(obj, name, fn):
                setattr(obj, name, fn)

            {REBIND_MARKER}
            """,
            "sim/events.py",
        )
        assert rules_of(purity.check(src)) == ["purity-dynamic"]

    def test_tail_below_the_marker_is_exempt(self, tmp_path):
        src = make_source(
            tmp_path,
            f"""
            import heapq

            {REBIND_MARKER}
            import os
            setattr(object, "x", 1)
            """,
            "sim/events.py",
        )
        assert purity.check(src) == []

    def test_non_kernel_module_is_ignored(self, tmp_path):
        src = make_source(tmp_path, "import os\nsetattr(object, 'x', 1)\n", "sim/rng.py")
        assert purity.check(src) == []


# ----------------------------------------------------------------------
# Batch-dispatch safety
# ----------------------------------------------------------------------
class TestDispatchRule:
    def test_queue_internal_access_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def drain(queue):
                return queue._heap[0]
            """,
            "netsim/mod.py",
        )
        assert rules_of(dispatch.check(src)) == ["dispatch-queue-internals"]

    def test_every_private_slot_is_covered(self, tmp_path):
        body = "\n".join(
            f"    x{i} = queue.{attr}"
            for i, attr in enumerate(
                ["_heap", "_buckets", "_pool", "_next_seq", "_direct_time"]
            )
        )
        src = make_source(tmp_path, f"def peek(queue):\n{body}\n", "memory/mod.py")
        assert len(dispatch.check(src)) == 5

    def test_own_self_attribute_with_same_name_is_allowed(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            class Lane:
                def __init__(self):
                    self._pool = []

                def grab(self):
                    return self._pool.pop()
            """,
            "netsim/mod.py",
        )
        assert dispatch.check(src) == []

    def test_reentrant_sim_run_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def handler(self, message):
                self.sim.run(until=10.0)
            """,
            "timers/mod.py",
        )
        assert rules_of(dispatch.check(src)) == ["dispatch-reentrant-run"]

    def test_scenario_run_is_not_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def execute(scenario, algorithm):
                return scenario.run(algorithm, seed=0)
            """,
            "workloads/mod.py",
        )
        assert dispatch.check(src) == []

    def test_kernel_module_itself_is_out_of_scope(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def fuse(queue):
                return queue._heap
            """,
            "sim/other.py",
        )
        assert dispatch.check(src) == []


# ----------------------------------------------------------------------
# Strict typing
# ----------------------------------------------------------------------
class TestTypingRule:
    def test_fully_annotated_function_passes(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def add(a: int, b: int) -> int:
                return a + b
            """,
            "repro/sim/variant.py",
        )
        assert typing_rules.check(src) == []

    def test_missing_param_annotation_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def add(a: int, b) -> int:
                return a + b
            """,
            "repro/sim/variant.py",
        )
        findings = typing_rules.check(src)
        assert rules_of(findings) == ["typing-missing-annotation"]
        assert "'b'" in findings[0].message

    def test_missing_return_annotation_is_flagged(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            def add(a: int, b: int):
                return a + b
            """,
            "repro/sim/variant.py",
        )
        assert rules_of(typing_rules.check(src)) == ["typing-missing-annotation"]

    def test_self_and_cls_are_exempt(self, tmp_path):
        src = make_source(
            tmp_path,
            """
            class Box:
                def get(self) -> int:
                    return 1

                @classmethod
                def make(cls) -> "Box":
                    return cls()
            """,
            "repro/sim/variant.py",
        )
        assert typing_rules.check(src) == []

    def test_module_outside_the_ratchet_is_ignored(self, tmp_path):
        src = make_source(tmp_path, "def f(a):\n    return a\n", "repro/analysis/mod.py")
        assert typing_rules.check(src) == []


# ----------------------------------------------------------------------
# Registry completeness (tree-level)
# ----------------------------------------------------------------------
def write_tree(tmp_path: Path, *, cli: str, registry: str | None = None,
               backend: str | None = None, emulated: str | None = None,
               tests: dict | None = None) -> Path:
    root = tmp_path / "pkg"
    root.mkdir(parents=True, exist_ok=True)
    (root / "cli.py").write_text(textwrap.dedent(cli), encoding="utf-8")
    if registry is not None:
        (root / "workloads").mkdir(exist_ok=True)
        (root / "workloads" / "registry.py").write_text(
            textwrap.dedent(registry), encoding="utf-8"
        )
    for rel, text in (("backend.py", backend), ("emulated.py", emulated)):
        if text is not None:
            (root / "memory").mkdir(exist_ok=True)
            (root / "memory" / rel).write_text(textwrap.dedent(text), encoding="utf-8")
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir(exist_ok=True)
    for name, text in (tests or {}).items():
        (tests_dir / name).write_text(text, encoding="utf-8")
    return root


class TestRegistryRule:
    def test_uncovered_factory_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = ['a']\nCHECK_EXEMPT_SCENARIOS = []\n",
            registry="SCENARIO_FACTORIES = {'a': 1, 'b': 2}\n",
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert ["registry-check-coverage"] == rules_of(findings)
        assert any("'b'" in f.message for f in findings)

    def test_exempt_list_covers_a_factory(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = ['a']\nCHECK_EXEMPT_SCENARIOS = ['b']\n",
            registry="SCENARIO_FACTORIES = {'a': 1, 'b': 2}\n",
        )
        assert registry_rules.check_tree(root, tmp_path / "tests") == []

    def test_missing_exempt_list_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = ['a']\n",
            registry="SCENARIO_FACTORIES = {'a': 1}\n",
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert any("CHECK_EXEMPT_SCENARIOS" in f.message for f in findings)

    def test_stale_check_entry_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = ['a', 'ghost']\nCHECK_EXEMPT_SCENARIOS = []\n",
            registry="SCENARIO_FACTORIES = {'a': 1}\n",
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert any("unknown scenario 'ghost'" in f.message for f in findings)

    def test_checked_and_exempted_overlap_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = ['a']\nCHECK_EXEMPT_SCENARIOS = ['a']\n",
            registry="SCENARIO_FACTORIES = {'a': 1}\n",
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert any("both checked and exempted" in f.message for f in findings)

    def test_backend_without_cli_choice_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli="CHECK_SCENARIOS = []\nCHECK_EXEMPT_SCENARIOS = []\n",
            backend="BACKENDS = {'shared': 'x', 'astral': 'y'}\n",
            tests={"test_mem.py": "use('shared'); use('astral')\n"},
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert rules_of(findings) == ["registry-cli-surface"]
        assert len(findings) == 2  # neither key is surfaced

    def test_dynamic_sorted_choices_cover_every_backend(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli=(
                "CHECK_SCENARIOS = []\nCHECK_EXEMPT_SCENARIOS = []\n"
                "choices = sorted(BACKENDS)\n"
            ),
            backend="BACKENDS = {'shared': 'x', 'emulated': 'y'}\n",
            tests={"test_mem.py": "use('shared'); use('emulated')\n"},
        )
        assert registry_rules.check_tree(root, tmp_path / "tests") == []

    def test_link_model_without_test_reference_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            cli=(
                "CHECK_SCENARIOS = []\nCHECK_EXEMPT_SCENARIOS = []\n"
                "choices = sorted(LINK_MODELS)\n"
            ),
            emulated="LINK_MODELS = {'sync': 1, 'wormhole': 2}\n",
            tests={"test_links.py": "model = 'sync'\n"},
        )
        findings = registry_rules.check_tree(root, tmp_path / "tests")
        assert rules_of(findings) == ["registry-test-coverage"]
        assert any("'wormhole'" in f.message for f in findings)
