"""The message-passing runtime: handlers, timers, crash semantics."""

from __future__ import annotations

import pytest

from repro.netsim.network import Message, TimelyLinks
from repro.netsim.runtime import MpProcess, MpRun
from repro.sim.crash import CrashPlan


class EchoProcess(MpProcess):
    """Test double: pid 0 pings everyone, peers pong back."""

    display_name = "echo"

    def __init__(self, pid, n, config):
        super().__init__(pid, n, config)
        self.pings = 0
        self.pongs = 0
        self.timer_fires = 0

    def on_start(self):
        if self.pid == 0:
            self.broadcast("PING")
        self.set_timer("tick", 10.0)

    def on_message(self, message: Message):
        if message.kind == "PING":
            self.pings += 1
            self.send(message.sender, "PONG")
        elif message.kind == "PONG":
            self.pongs += 1

    def on_timer(self, tag):
        self.timer_fires += 1
        self.set_timer("tick", 10.0)

    def peek_leader(self):
        return 0


class TestRuntime:
    def test_ping_pong_roundtrip(self):
        result = MpRun(EchoProcess, n=3, seed=1, horizon=50.0).execute()
        assert result.processes[0].pongs == 2
        assert result.processes[1].pings == 1

    def test_timers_repeat(self):
        result = MpRun(EchoProcess, n=2, seed=1, horizon=100.0).execute()
        assert result.processes[0].timer_fires == pytest.approx(10, abs=2)

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            MpRun(EchoProcess, n=1)

    def test_deterministic(self):
        a = MpRun(EchoProcess, n=3, seed=5, horizon=100.0).execute()
        b = MpRun(EchoProcess, n=3, seed=5, horizon=100.0).execute()
        assert a.trace.leader_samples() == b.trace.leader_samples()
        assert a.network.total_sent == b.network.total_sent

    def test_timer_validation(self):
        run = MpRun(EchoProcess, n=2, seed=1, horizon=10.0)
        with pytest.raises(ValueError):
            run.set_timer(0, "bad", 0.0)


class TestCrashSemantics:
    def test_crashed_process_handles_nothing(self):
        plan = CrashPlan.single(3, 1, 5.0)
        result = MpRun(
            EchoProcess, n=3, seed=2, horizon=100.0, crash_plan=plan
        ).execute()
        # pid 1 stops firing timers after its crash at t=5.
        assert result.processes[1].timer_fires == 0

    def test_crash_recorded(self):
        plan = CrashPlan.single(3, 2, 7.0)
        result = MpRun(EchoProcess, n=3, seed=2, horizon=50.0, crash_plan=plan).execute()
        crashes = result.trace.of_kind("crash")
        assert [(c.time, c["pid"]) for c in crashes] == [(7.0, 2)]

    def test_crashed_process_not_sampled(self):
        plan = CrashPlan.single(3, 2, 7.0)
        result = MpRun(EchoProcess, n=3, seed=2, horizon=50.0, crash_plan=plan).execute()
        late = [(t, pid) for t, pid, _ in result.trace.leader_samples() if t > 10 and pid == 2]
        assert late == []

    def test_initially_crashed_process_never_starts(self):
        plan = CrashPlan.single(2, 1, 0.0)
        result = MpRun(EchoProcess, n=2, seed=3, horizon=50.0, crash_plan=plan).execute()
        assert result.processes[1].timer_fires == 0
        assert result.network.sent_by_pid.get(1, 0) == 0
