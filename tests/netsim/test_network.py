"""Channels: timing, loss, the eventual t-source property."""

from __future__ import annotations

import pytest

from repro.netsim.network import (
    EventuallyTimelyLinks,
    FairLossyLinks,
    Message,
    Network,
    PartitionScheduleLinks,
    SourceChurnLinks,
    SynchronousLinks,
    TimelyLinks,
)
from repro.sim.kernel import Simulator
from tests.conftest import make_rng


def msg(sender=0, receiver=1, kind="X", payload=None, sent_at=0.0):
    return Message(sender, receiver, kind, payload, sent_at)


class TestTimelyLinks:
    def test_delays_within_bounds(self):
        links = TimelyLinks(make_rng(1), lo=0.5, hi=2.0)
        for _ in range(200):
            d = links.delivery_delay(msg())
            assert 0.5 <= d <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimelyLinks(make_rng(1), lo=2.0, hi=1.0)


class TestFairLossyLinks:
    def test_loss_rate_roughly_respected(self):
        links = FairLossyLinks(make_rng(2), loss=0.5)
        outcomes = [links.delivery_delay(msg()) for _ in range(1000)]
        dropped = sum(1 for d in outcomes if d is None)
        assert 350 < dropped < 650

    def test_fairness_some_get_through(self):
        links = FairLossyLinks(make_rng(3), loss=0.9)
        outcomes = [links.delivery_delay(msg()) for _ in range(500)]
        assert any(d is not None for d in outcomes)

    def test_delays_capped(self):
        links = FairLossyLinks(make_rng(4), loss=0.0, cap=80.0)
        for _ in range(500):
            d = links.delivery_delay(msg())
            assert d is not None and d <= 80.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FairLossyLinks(make_rng(1), loss=1.0)


class TestEventuallyTimelyLinks:
    def _links(self, gst=100.0):
        rng = make_rng(5)
        return EventuallyTimelyLinks(
            FairLossyLinks(rng, loss=0.5), sources={0}, gst=gst, rng=rng,
            timely_lo=0.5, timely_hi=2.0,
        )

    def test_source_timely_after_gst(self):
        links = self._links()
        for _ in range(200):
            d = links.delivery_delay(msg(sender=0, sent_at=150.0))
            assert d is not None and 0.5 <= d <= 2.0

    def test_source_lossy_before_gst(self):
        links = self._links()
        outcomes = [links.delivery_delay(msg(sender=0, sent_at=50.0)) for _ in range(300)]
        assert any(d is None for d in outcomes)

    def test_non_source_stays_lossy_forever(self):
        links = self._links()
        outcomes = [links.delivery_delay(msg(sender=1, sent_at=1e6)) for _ in range(300)]
        assert any(d is None for d in outcomes)


class TestSourceChurnLinks:
    def _links(self, gst=300.0):
        rng = make_rng(8)
        return SourceChurnLinks(
            FairLossyLinks(rng, loss=0.5),
            sources={0},
            gst=gst,
            rng=rng,
            rotation=[{1}, {2}, {0}],
            epoch=100.0,
            timely_lo=0.5,
            timely_hi=2.0,
        )

    def test_source_set_rotates_before_gst(self):
        links = self._links()
        assert links.sources_at(50.0) == frozenset({1})
        assert links.sources_at(150.0) == frozenset({2})
        assert links.sources_at(250.0) == frozenset({0})
        # The rotation wraps around until the gst...
        assert links.sources_at(350.0) == frozenset({0})  # past gst: final set

    def test_final_sources_timely_after_gst(self):
        links = self._links()
        for _ in range(200):
            d = links.delivery_delay(msg(sender=0, sent_at=400.0))
            assert d is not None and 0.5 <= d <= 2.0

    def test_current_epoch_witness_is_timely(self):
        links = self._links()
        for _ in range(100):
            d = links.delivery_delay(msg(sender=1, sent_at=50.0))
            assert d is not None and 0.5 <= d <= 2.0

    def test_off_rotation_sender_stays_lossy(self):
        links = self._links()
        outcomes = [links.delivery_delay(msg(sender=2, sent_at=50.0)) for _ in range(300)]
        assert any(d is None for d in outcomes)

    def test_empty_rotation_degenerates_to_eventually_timely(self):
        rng = make_rng(9)
        links = SourceChurnLinks(
            FairLossyLinks(rng, loss=0.5), sources={0}, gst=100.0, rng=rng
        )
        assert links.sources_at(5.0) == frozenset({0})

    def test_validation(self):
        rng = make_rng(9)
        with pytest.raises(ValueError):
            SourceChurnLinks(FairLossyLinks(rng), {0}, 10.0, rng, epoch=0.0)


class TestNetwork:
    def _network(self):
        sim = Simulator()
        net = Network(sim, TimelyLinks(make_rng(6), lo=1.0, hi=1.0))
        inbox = []
        net.install_delivery(lambda m: inbox.append((sim.now, m)))
        return sim, net, inbox

    def test_send_delivers_via_kernel(self):
        sim, net, inbox = self._network()
        net.send(0, 1, "PING", "x")
        sim.run()
        assert [(t, m.kind, m.payload) for t, m in inbox] == [(1.0, "PING", "x")]

    def test_broadcast_excludes_sender(self):
        sim, net, inbox = self._network()
        net.broadcast(0, 4, "HB", None)
        sim.run()
        assert sorted(m.receiver for _, m in inbox) == [1, 2, 3]

    def test_accounting(self):
        sim, net, _ = self._network()
        net.broadcast(2, 3, "HB", None)
        sim.run()
        assert net.sent_by_pid == {2: 2}
        assert net.delivered == 2
        assert net.total_sent == 2

    def test_drops_counted(self):
        sim = Simulator()
        net = Network(sim, FairLossyLinks(make_rng(7), loss=1.0 - 1e-9))
        net.install_delivery(lambda m: None)
        for _ in range(50):
            net.send(0, 1, "X", None)
        assert net.dropped > 0


class TestPartitionScheduleLinks:
    """The fault-injection overlay: scheduled islands and storms."""

    def _links(self, **kwargs):
        return PartitionScheduleLinks(SynchronousLinks(1.0), **kwargs)

    def test_empty_schedule_is_the_base_model(self):
        links = self._links()
        for t in (0.0, 5.0, 100.0):
            assert links.delivery_delay(msg(sent_at=t)) == 1.0
        assert links.partitioned_drops == 0

    def test_island_crossings_drop_during_the_window(self):
        # Replica indices 0 and 1 live at wire addresses -1 and -2.
        links = self._links(partitions=[(10.0, 20.0, [1])])
        crossing = msg(sender=-1, receiver=-2, sent_at=15.0)
        assert links.delivery_delay(crossing) is None
        assert links.delivery_delay(msg(sender=-2, receiver=-1, sent_at=15.0)) is None
        assert links.partitioned_drops == 2

    def test_island_internal_traffic_survives(self):
        links = self._links(partitions=[(10.0, 20.0, [1, 2])])
        internal = msg(sender=-2, receiver=-3, sent_at=15.0)
        assert links.delivery_delay(internal) == 1.0

    def test_drop_is_judged_at_the_send_instant(self):
        links = self._links(partitions=[(10.0, 20.0, [1])])
        crossing = dict(sender=-1, receiver=-2)
        assert links.delivery_delay(msg(sent_at=9.9, **crossing)) == 1.0
        assert links.delivery_delay(msg(sent_at=20.0, **crossing)) == 1.0
        assert links.severed(msg(sent_at=10.0, **crossing))

    def test_clients_always_sit_outside_the_island(self):
        links = self._links(partitions=[(0.0, 100.0, [1])])
        # Client (pid 0) to islanded replica: severed both ways.
        assert links.delivery_delay(msg(sender=0, receiver=-2, sent_at=5.0)) is None
        assert links.delivery_delay(msg(sender=-2, receiver=0, sent_at=5.0)) is None
        # Client to majority-side replica: untouched.
        assert links.delivery_delay(msg(sender=0, receiver=-1, sent_at=5.0)) == 1.0

    def test_storms_scale_delay_and_stack(self):
        links = self._links(storms=[(0.0, 50.0, 2.0), (25.0, 75.0, 3.0)])
        assert links.delivery_delay(msg(sent_at=10.0)) == 2.0
        assert links.delivery_delay(msg(sent_at=30.0)) == 6.0  # overlap stacks
        assert links.delivery_delay(msg(sent_at=60.0)) == 3.0
        assert links.delivery_delay(msg(sent_at=80.0)) == 1.0

    def test_storms_scale_but_never_drop(self):
        links = self._links(storms=[(0.0, 50.0, 4.0)])
        assert links.delivery_delay(msg(sent_at=10.0)) == 4.0
        assert links.partitioned_drops == 0

    def test_base_losses_stay_lost_under_storms(self):
        lossy = PartitionScheduleLinks(
            FairLossyLinks(make_rng(7), loss=1.0 - 1e-9),
            storms=[(0.0, 100.0, 2.0)],
        )
        assert lossy.delivery_delay(msg(sent_at=5.0)) is None
        assert lossy.partitioned_drops == 0  # base loss, not a partition

    def test_window_validation(self):
        with pytest.raises(ValueError, match="non-empty island"):
            self._links(partitions=[(10.0, 20.0, [])])
        with pytest.raises(ValueError, match="end > start"):
            self._links(partitions=[(20.0, 10.0, [1])])
        with pytest.raises(ValueError, match="factor >= 1"):
            self._links(storms=[(0.0, 10.0, 0.5)])
