"""The perf subsystem: microbenchmarks, baseline schema, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf.baseline import (
    PRE_OVERHAUL_REFERENCE,
    SCHEMA_FORMAT,
    compare_payloads,
    load_payload,
    make_payload,
    merge_best,
    parse_max_regress,
    write_payload,
)
from repro.perf.bench import (
    PROFILES,
    BenchResult,
    bench_kernel_throughput,
    bench_lane_throughput,
    bench_scenario,
    bench_sweep_sharded,
)


def tiny_kernel_result(**kwargs) -> BenchResult:
    return bench_kernel_throughput(events=2_000, chains=2, repeats=1, **kwargs)


class TestKernelBench:
    def test_measures_positive_throughput(self):
        result = tiny_kernel_result()
        assert result.unit == "events/s"
        assert result.higher_is_better
        assert result.value > 0
        assert result.meta["events"] == 2_000

    def test_cancellable_variant(self):
        result = tiny_kernel_result(cancellable=True, name="kernel_cancellable_events_per_sec")
        assert result.name == "kernel_cancellable_events_per_sec"
        assert result.meta["cancellable"] is True
        assert result.value > 0

    def test_aligned_variant(self):
        result = bench_kernel_throughput(
            events=2_000,
            chains=8,
            repeats=1,
            aligned=True,
            name="kernel_batched_events_per_sec",
        )
        assert result.name == "kernel_batched_events_per_sec"
        assert result.meta["aligned"] is True
        assert result.value > 0

    def test_lane_variant(self):
        result = bench_lane_throughput(events=2_000, chains=2, repeats=1)
        assert result.name == "kernel_lane_events_per_sec"
        assert result.unit == "events/s"
        assert result.value > 0


class TestScenarioBench:
    def test_emits_wall_and_throughput_pair(self):
        wall, throughput = bench_scenario(
            n=3, horizon=200.0, repeats=1, name="scenario_tiny_wall_s"
        )
        assert wall.name == "scenario_tiny_wall_s"
        assert not wall.higher_is_better
        assert wall.value > 0
        assert throughput.name == "scenario_tiny_events_per_sec"
        assert throughput.higher_is_better
        assert throughput.meta["events_fired"] > 0


class TestSweepShardedBench:
    def test_measures_positive_throughput(self):
        result = bench_sweep_sharded(
            n=3, horizon=400.0, seeds=(0,), algorithms=("alg1",), jobs=1, shards=2
        )
        assert result.name == "sweep_sharded_cells_per_sec"
        assert result.unit == "cells/s"
        assert result.meta["shards"] == 2
        assert result.value > 0


class TestPayloadSchema:
    def _payload(self):
        results = {"quick": {"kernel_events_per_sec": tiny_kernel_result()}}
        return make_payload(results)

    def test_stable_schema_fields(self):
        payload = self._payload()
        assert payload["format"] == SCHEMA_FORMAT
        assert payload["kind"] == "repro-perf"
        bench = payload["profiles"]["quick"]["benchmarks"]["kernel_events_per_sec"]
        assert set(bench) == {"value", "unit", "higher_is_better", "meta"}
        assert payload["reference"]["benchmarks"] == PRE_OVERHAUL_REFERENCE

    def test_environment_meta_block(self):
        import os
        import platform

        payload = self._payload()
        meta = payload["meta"]
        assert meta["python"] == platform.python_version()
        assert meta["implementation"] == __import__("sys").implementation.name
        assert meta["cpu_count"] == os.cpu_count()
        assert meta["kernel_variant"] in ("python", "compiled")
        assert isinstance(meta["kernel_variant_reason"], str)

    def test_speedup_vs_reference_computed(self):
        payload = self._payload()
        speedup = payload["speedup_vs_reference"]["kernel_events_per_sec"]
        assert speedup == pytest.approx(
            payload["profiles"]["quick"]["benchmarks"]["kernel_events_per_sec"]["value"]
            / PRE_OVERHAUL_REFERENCE["kernel_events_per_sec"]
        )

    def test_round_trip_through_disk(self, tmp_path):
        payload = self._payload()
        path = tmp_path / "BENCH_perf.json"
        write_payload(path, payload)
        assert load_payload(path) == json.loads(json.dumps(payload))

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 999, "kind": "repro-perf"}))
        with pytest.raises(ValueError):
            load_payload(path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": SCHEMA_FORMAT, "kind": "other"}))
        with pytest.raises(ValueError):
            load_payload(path)


def _payload_with(value: float, higher: bool = True, profile: str = "quick"):
    return {
        "format": SCHEMA_FORMAT,
        "kind": "repro-perf",
        "profiles": {
            profile: {
                "benchmarks": {
                    "bench": {
                        "value": value,
                        "unit": "u",
                        "higher_is_better": higher,
                        "meta": {},
                    }
                }
            }
        },
    }


class TestRegressionGate:
    def test_identical_payloads_pass(self):
        payload = _payload_with(100.0)
        assert compare_payloads(payload, payload, max_regress=0.0) == []

    def test_within_threshold_passes(self):
        assert (
            compare_payloads(_payload_with(90.0), _payload_with(100.0), max_regress=0.15)
            == []
        )

    def test_higher_is_better_regression_fails(self):
        failures = compare_payloads(
            _payload_with(70.0), _payload_with(100.0), max_regress=0.15
        )
        assert len(failures) == 1
        assert failures[0].name == "bench"
        assert failures[0].regress_frac == pytest.approx(0.30)

    def test_lower_is_better_regression_fails(self):
        failures = compare_payloads(
            _payload_with(1.30, higher=False),
            _payload_with(1.0, higher=False),
            max_regress=0.15,
        )
        assert len(failures) == 1
        assert failures[0].regress_frac == pytest.approx(0.30)

    def test_improvement_never_fails(self):
        assert (
            compare_payloads(_payload_with(500.0), _payload_with(100.0), max_regress=0.0)
            == []
        )

    def test_missing_benchmark_fails(self):
        current = _payload_with(100.0)
        current["profiles"]["quick"]["benchmarks"] = {}
        failures = compare_payloads(current, _payload_with(100.0), max_regress=0.5)
        assert len(failures) == 1
        assert "missing" in failures[0].detail

    def test_unexecuted_profile_skipped(self):
        current = _payload_with(100.0, profile="quick")
        baseline = _payload_with(100.0, profile="full")
        assert compare_payloads(current, baseline, max_regress=0.0) == []


class TestMergeBest:
    def _result(self, value: float, higher: bool = True) -> BenchResult:
        return BenchResult(
            name="b", value=value, unit="u", higher_is_better=higher, meta={}
        )

    def test_keeps_higher_for_throughput(self):
        merged = merge_best({"b": self._result(100.0)}, {"b": self._result(150.0)})
        assert merged["b"].value == 150.0

    def test_keeps_lower_for_wall_time(self):
        merged = merge_best(
            {"b": self._result(0.5, higher=False)},
            {"b": self._result(0.3, higher=False)},
        )
        assert merged["b"].value == 0.3

    def test_union_of_names(self):
        a = {"a": BenchResult("a", 1.0, "u", True, {})}
        b = {"b": BenchResult("b", 2.0, "u", True, {})}
        assert set(merge_best(a, b)) == {"a", "b"}


class TestPayloadMerging:
    def test_unexecuted_profiles_carried_over(self):
        full = make_payload({"full": {"kernel_events_per_sec": tiny_kernel_result()}})
        merged = make_payload(
            {"quick": {"kernel_events_per_sec": tiny_kernel_result()}}, existing=full
        )
        assert set(merged["profiles"]) == {"full", "quick"}
        assert merged["profiles"]["full"] == full["profiles"]["full"]

    def test_executed_profile_replaces_existing(self):
        old = make_payload({"quick": {"kernel_events_per_sec": tiny_kernel_result()}})
        fresh = tiny_kernel_result()
        merged = make_payload({"quick": {"kernel_events_per_sec": fresh}}, existing=old)
        assert (
            merged["profiles"]["quick"]["benchmarks"]["kernel_events_per_sec"]["value"]
            == fresh.value
        )


class TestParseMaxRegress:
    def test_percent(self):
        assert parse_max_regress("15%") == pytest.approx(0.15)

    def test_fraction(self):
        assert parse_max_regress("0.15") == pytest.approx(0.15)

    def test_whitespace(self):
        assert parse_max_regress(" 25% ") == pytest.approx(0.25)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_max_regress("fast")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_max_regress("-5%")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            parse_max_regress("nan")
        with pytest.raises(ValueError):
            parse_max_regress("nan%")


class TestProfiles:
    def test_both_profiles_registered(self):
        assert set(PROFILES) == {"full", "quick"}
