"""The JSONL result store: round-trips, robustness, keying, concurrency."""

from __future__ import annotations

import json
import multiprocessing

from repro.core.algorithm1 import WriteEfficientOmega
from repro.engine import ExperimentSpec, ResultStore, RunSummary, default_results_dir
from repro.engine.worker import CellOutcome
from repro.workloads.scenarios import nominal


def make_summary(seed=0, **overrides):
    base = dict(
        algorithm="alg1",
        scenario="nominal-n3",
        seed=seed,
        n=3,
        horizon=1500.0,
        stabilized=True,
        stabilization_time=65.0,
        leader=1,
        valid=True,
        termination_ok=True,
        forever_writer_count=1,
        forever_writers=frozenset({1}),
        growing_register_count=1,
        single_writer=True,
        total_writes=293,
        total_reads=3507,
        wall_time_s=0.25,
        events_fired=4242,
        leader_correct=True,
        max_suspicion=3.0,
        suspicion_writes_total=7,
        suspicion_writes_tail=0,
    )
    base.update(overrides)
    return RunSummary(**base)


def make_spec():
    return ExperimentSpec.from_objects(
        "store-test", {"alg1": WriteEfficientOmega}, [nominal(n=3, horizon=1500.0)], [0, 1]
    )


class TestRoundTrip:
    def test_jsonable_round_trip_preserves_equality(self):
        summary = make_summary()
        clone = RunSummary.from_jsonable(json.loads(json.dumps(summary.to_jsonable())))
        assert clone == summary
        assert clone.forever_writers == frozenset({1})

    def test_none_fields_survive(self):
        summary = make_summary(stabilized=False, stabilization_time=None, leader=None,
                               max_suspicion=None)
        clone = RunSummary.from_jsonable(summary.to_jsonable())
        assert clone.stabilization_time is None and clone.max_suspicion is None

    def test_canonical_json_ignores_wall_time(self):
        assert (
            make_summary(wall_time_s=0.1).canonical_json()
            == make_summary(wall_time_s=9.9).canonical_json()
        )


class TestStore:
    def _outcomes(self, spec):
        return [
            CellOutcome(key=cell.key, summary=make_summary(seed=cell.seed))
            for cell in spec.cells()
        ]

    def test_append_then_load(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        store.append(spec, self._outcomes(spec))
        loaded = store.load(spec)
        assert set(loaded) == {cell.key for cell in spec.cells()}
        assert loaded[spec.cells()[0].key] == make_summary(seed=0)

    def test_file_named_by_spec_hash(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        path = store.append(spec, self._outcomes(spec))
        assert spec.content_hash() in path.name
        assert path.name.startswith("store-test-")

    def test_header_line_records_spec(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        path = store.append(spec, self._outcomes(spec))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["spec"]["name"] == "store-test"

    def test_failed_outcomes_not_written(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        cells = spec.cells()
        store.append(
            spec,
            [
                CellOutcome(key=cells[0].key, summary=make_summary(seed=0)),
                CellOutcome(key=cells[1].key, error="boom"),
            ],
        )
        assert set(store.load(spec)) == {cells[0].key}

    def test_truncated_line_skipped(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        path = store.append(spec, self._outcomes(spec))
        with path.open("a") as fh:
            fh.write('{"key": ["alg1", "nominal(')  # interrupted write
        assert len(store.load(spec)) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path).load(make_spec()) == {}

    def test_renamed_spec_finds_cache_by_content_hash(self, tmp_path):
        spec, store = make_spec(), ResultStore(tmp_path)
        store.append(spec, self._outcomes(spec))
        renamed = ExperimentSpec(
            name="totally-different",
            algorithms=spec.algorithms,
            scenarios=spec.scenarios,
            seeds=spec.seeds,
            window=spec.window,
        )
        loaded = store.load(renamed)
        assert set(loaded) == {cell.key for cell in spec.cells()}


def _append_batch(root: str, barrier, seeds) -> None:
    """Child-process helper: append one batch after the start barrier."""
    store = ResultStore(root)
    spec = make_spec()
    outcomes = [
        CellOutcome(key=("alg1", "nominal-n3", seed), summary=make_summary(seed=seed))
        for seed in seeds
    ]
    barrier.wait()
    store.append(spec, outcomes)


class TestConcurrentAppend:
    """Two sweeps of the same spec appending at once (the cross-process
    corruption fixed in the store): exactly one header, no interleaved
    or torn lines, every appended row recovered."""

    def test_single_header_and_no_interleaving(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        batches = [range(0, 40), range(40, 80)]
        barrier = ctx.Barrier(len(batches))
        procs = [
            ctx.Process(target=_append_batch, args=(str(tmp_path), barrier, seeds))
            for seeds in batches
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        spec, store = make_spec(), ResultStore(tmp_path)
        lines = store.path_for(spec).read_text().splitlines()
        payloads = [json.loads(line) for line in lines]  # no torn lines
        # Exactly one process won the exclusive create and wrote the
        # header (its position depends on who appended first).
        assert sum(1 for p in payloads if "spec" in p) == 1
        loaded = store.load(spec)
        assert len(loaded) == 80
        assert {key[2] for key in loaded} == set(range(80))


class TestResultsDirResolution:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        assert default_results_dir() == target
        assert ResultStore().root == target

    def test_default_is_anchored_at_the_repo_root(self, monkeypatch):
        # Running from any CWD must resolve the same cache: the default
        # is absolute and sits next to this checkout's pyproject.toml.
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        resolved = default_results_dir()
        assert resolved.is_absolute()
        assert resolved.parts[-2:] == ("results", "engine")
        assert (resolved.parent.parent / "pyproject.toml").is_file()
