"""Determinism across execution paths (satellite requirement).

The same (algorithm, scenario, seed) cell must summarize to
byte-identical rows no matter how it executed: serially through
``Scenario.run`` with full logging, through the engine worker in the
low-overhead mode, or through a separate worker process.
"""

from __future__ import annotations

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.engine import ExperimentSpec, run_experiment
from repro.engine.worker import execute_cell, run_cell
from repro.workloads.scenarios import leader_crash, nominal
from repro.workloads.sweep import run_matrix

ALGOS = {"alg1": WriteEfficientOmega, "step": StepCounterOmega}
SCENARIOS = [nominal(n=3, horizon=1500.0), leader_crash(n=3, horizon=2000.0)]
SEEDS = [0, 1]


def _spec():
    return ExperimentSpec.from_objects("determinism", ALGOS, SCENARIOS, SEEDS)


class TestDeterminism:
    def test_serial_vs_worker_byte_identical(self):
        """One cell, executed twice: serial full-logging run vs the
        engine worker's low-overhead path."""
        scen = SCENARIOS[0]
        serial = scen.run(WriteEfficientOmega, seed=1).summarize(
            scenario_name=scen.name, margin=scen.margin, window=100.0
        )
        serial.algorithm = "alg1"
        cell = _spec().cells()[1]  # (alg1, nominal, seed 1)
        worker_row = run_cell(cell, window=100.0, fast=True)
        assert serial.canonical_json() == worker_row.canonical_json()
        assert serial == worker_row

    def test_execute_cell_matches_run_cell(self):
        cell = _spec().cells()[0]
        outcome = execute_cell(cell)
        assert outcome.ok
        assert outcome.summary.canonical_json() == run_cell(cell).canonical_json()

    def test_run_matrix_vs_engine_grid(self):
        legacy_style = run_matrix(ALGOS, SCENARIOS, SEEDS, jobs=1)
        engine = run_experiment(_spec(), jobs=2, cache=False)
        assert [r.canonical_json() for r in legacy_style] == [
            r.canonical_json() for r in engine.rows
        ]

    def test_repeated_execution_is_stable(self):
        cell = _spec().cells()[3]
        a = run_cell(cell).canonical_json()
        b = run_cell(cell).canonical_json()
        assert a == b

    def test_fast_mode_does_not_change_the_summary(self):
        cell = _spec().cells()[2]
        assert (
            run_cell(cell, fast=True).canonical_json()
            == run_cell(cell, fast=False).canonical_json()
        )
