"""The engine's low-overhead fast path (satellite requirement).

Sweeps default to ``fast=True`` (``log_reads=False``,
``trace_events=False`` end-to-end), and over a whole fixed seed grid the
fast-path :class:`~repro.engine.summary.RunSummary` -- including the
embedded Theorem 1-4 :class:`~repro.props.report.PropertyReport` -- must
be identical to the traced-path summary.
"""

from __future__ import annotations

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.engine import ExperimentSpec
from repro.engine.worker import run_cell
from repro.workloads.scenarios import leader_crash, nominal

ALGOS = {"alg1": WriteEfficientOmega, "alg2": BoundedOmega}
SCENARIOS = [nominal(n=3, horizon=1500.0), leader_crash(n=3, horizon=2000.0)]
SEEDS = [0, 1]


def _spec(**kwargs):
    return ExperimentSpec.from_objects("fastpath", ALGOS, SCENARIOS, SEEDS, **kwargs)


class TestFastPathDefaults:
    def test_spec_defaults_to_fast(self):
        assert _spec().fast is True

    def test_fast_flag_participates_in_content_hash(self):
        assert _spec().content_hash() != _spec(fast=False).content_hash()


class TestFastPathIdentity:
    def test_summaries_identical_across_the_grid(self):
        """Every cell of the fixed seed grid: fast == traced, byte-for-byte."""
        for cell in _spec().cells():
            fast = run_cell(cell, window=100.0, fast=True)
            traced = run_cell(cell, window=100.0, fast=False)
            assert fast.canonical_json() == traced.canonical_json(), cell.key
            assert fast == traced, cell.key

    def test_property_reports_identical_across_the_grid(self):
        """The embedded PropertyReport (Theorems 1-4) must not depend on
        the run mode: its inputs are the write log, the crash plan and
        the sample trace, all of which survive the fast path."""
        for cell in _spec().cells():
            fast = run_cell(cell, window=100.0, fast=True)
            traced = run_cell(cell, window=100.0, fast=False)
            assert fast.properties is not None
            assert fast.properties == traced.properties, cell.key
            assert fast.property_violations == traced.property_violations, cell.key

    def test_fast_path_skips_read_log_but_keeps_counters(self):
        scen = SCENARIOS[0]
        result = scen.run(WriteEfficientOmega, seed=0, log_reads=False, trace_events=False)
        assert result.memory.read_log == []
        assert result.memory.total_reads > 0
        assert result.sim.fired_by_kind == {}
        assert result.sim.events_fired > 0
