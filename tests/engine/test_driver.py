"""The parallel driver: ordering, caching, error capture."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.engine import (
    AlgorithmRef,
    EngineError,
    ExperimentSpec,
    ResultStore,
    ScenarioRef,
    run_experiment,
)
from repro.workloads.scenarios import nominal


@pytest.fixture()
def spec():
    return ExperimentSpec.from_objects(
        "driver-test",
        {"alg1": WriteEfficientOmega, "step": StepCounterOmega},
        [nominal(n=3, horizon=1500.0)],
        [0, 1],
    )


class TestDriver:
    def test_rows_in_grid_order(self, spec, tmp_path):
        report = run_experiment(spec, jobs=1, results_dir=tmp_path)
        assert [(r.algorithm, r.seed) for r in report.rows] == [
            ("alg1", 0),
            ("alg1", 1),
            ("step", 0),
            ("step", 1),
        ]
        assert all(r.stabilized for r in report.rows)
        assert report.executed == 4 and report.cache_hits == 0

    def test_parallel_rows_equal_serial_rows(self, spec, tmp_path):
        serial = run_experiment(spec, jobs=1, cache=False)
        parallel = run_experiment(spec, jobs=2, cache=False)
        assert serial.rows == parallel.rows  # wall_time_s excluded from eq

    def test_second_invocation_is_cache_hit(self, spec, tmp_path):
        first = run_experiment(spec, jobs=1, results_dir=tmp_path)
        second = run_experiment(spec, jobs=1, results_dir=tmp_path)
        assert second.executed == 0
        assert second.cache_hits == spec.size()
        assert second.rows == first.rows

    def test_partial_cache_runs_only_missing_cells(self, spec, tmp_path):
        narrow = ExperimentSpec(
            name=spec.name,
            algorithms=spec.algorithms,
            scenarios=spec.scenarios,
            seeds=(0,),
            window=spec.window,
        )
        run_experiment(narrow, jobs=1, results_dir=tmp_path)
        # The wider grid hashes differently, so it gets its own file and
        # recomputes everything...
        wide = run_experiment(spec, jobs=1, results_dir=tmp_path)
        assert wide.executed == spec.size()
        # ...but re-running the wide grid after deleting one line only
        # recomputes that one cell.
        store = ResultStore(tmp_path)
        path = store.path_for(spec)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        repaired = run_experiment(spec, jobs=1, results_dir=tmp_path)
        assert repaired.executed == 1 and repaired.cache_hits == spec.size() - 1
        assert repaired.rows == wide.rows

    def test_events_fired_travel_in_rows(self, spec, tmp_path):
        report = run_experiment(spec, jobs=1, cache=False)
        assert all(r.events_fired > 0 for r in report.rows)


class TestErrorCapture:
    @pytest.fixture()
    def bad_spec(self):
        # n=1 passes scenario construction but Run refuses it, so the
        # failure happens inside the worker and must come back captured.
        return ExperimentSpec.from_objects(
            "bad",
            {"alg1": WriteEfficientOmega},
            [nominal(n=1, horizon=500.0)],
            [0],
        )

    def test_strict_mode_raises_engine_error(self, bad_spec, tmp_path):
        with pytest.raises(EngineError, match="1 cell"):
            run_experiment(bad_spec, jobs=1, results_dir=tmp_path)

    def test_non_strict_returns_traceback(self, bad_spec, tmp_path):
        report = run_experiment(bad_spec, jobs=1, results_dir=tmp_path, strict=False)
        assert not report.ok and report.rows == []
        assert "at least two processes" in report.failures[0].error

    def test_failures_are_not_cached(self, bad_spec, tmp_path):
        run_experiment(bad_spec, jobs=1, results_dir=tmp_path, strict=False)
        report = run_experiment(bad_spec, jobs=1, results_dir=tmp_path, strict=False)
        assert report.executed == 1  # re-attempted, not served from cache

    def test_worker_death_does_not_orphan_healthy_cells(self, tmp_path, monkeypatch):
        # A cell whose worker dies abruptly (os._exit, like an OOM kill)
        # breaks the whole process pool; healthy cells queued behind it
        # must still complete via the isolated retry, and only the
        # poisonous cell may be reported as failed.
        import os
        import sys
        from pathlib import Path

        # Workers must be able to import killer_scenarios under every
        # multiprocessing start method: sys.path covers fork (children
        # inherit parent memory), PYTHONPATH covers spawn/forkserver
        # (children re-read the environment).
        helper_dir = str(Path(__file__).parent)
        sys.path.insert(0, helper_dir)
        existing = os.environ.get("PYTHONPATH", "")
        monkeypatch.setenv(
            "PYTHONPATH", helper_dir + (os.pathsep + existing if existing else "")
        )
        try:
            spec = ExperimentSpec(
                name="broken-pool",
                algorithms=(AlgorithmRef("alg1", "alg1"),),
                scenarios=(
                    ScenarioRef.make("nominal", {"n": 3, "horizon": 800.0}),
                    ScenarioRef.make("killer_scenarios:kill_scenario"),
                    ScenarioRef.make("nominal", {"n": 3, "horizon": 900.0}),
                ),
                seeds=(0,),
            )
            report = run_experiment(spec, jobs=2, results_dir=tmp_path, strict=False)
        finally:
            sys.path.pop(0)
        assert len(report.rows) == 2  # both nominal cells completed
        assert {r.horizon for r in report.rows} == {800.0, 900.0}
        assert len(report.failures) == 1
        assert "worker failure" in report.failures[0].error

    def test_engine_error_with_blank_traceback(self):
        # Regression: a truthy-but-whitespace error string used to make
        # the EngineError constructor itself raise IndexError.
        from repro.engine.worker import CellOutcome

        err = EngineError([CellOutcome(key=("alg1", "s", 0), error="\n")])
        assert "?" in str(err)
        assert "1 cell(s) failed" in str(err)

    def test_engine_error_heads_and_overflow(self):
        from repro.engine.worker import CellOutcome

        failures = [
            CellOutcome(key=("alg1", "s", seed), error=f"Boom\nLine {seed}")
            for seed in range(7)
        ]
        err = EngineError(failures)
        assert "Line 0" in str(err) and "Line 4" in str(err)
        assert "... and 2 more" in str(err)

    def test_good_cells_survive_a_poisoned_grid(self, tmp_path):
        mixed = ExperimentSpec.from_objects(
            "mixed",
            {"alg1": WriteEfficientOmega},
            [nominal(n=3, horizon=1500.0), nominal(n=1, horizon=500.0)],
            [0],
        )
        report = run_experiment(mixed, jobs=1, results_dir=tmp_path, strict=False)
        assert len(report.rows) == 1 and report.rows[0].stabilized
        assert len(report.failures) == 1
        # The good cell was cached despite the failure.
        again = run_experiment(mixed, jobs=1, results_dir=tmp_path, strict=False)
        assert again.cache_hits == 1 and again.executed == 1
