"""Sweep sharding: bounds, distributed shards, in-process shards, resume."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.engine import ExperimentSpec, run_experiment
from repro.engine.driver import parse_shard, shard_bounds
from repro.workloads.scenarios import nominal


@pytest.fixture()
def spec():
    return ExperimentSpec.from_objects(
        "shard-test",
        {"alg1": WriteEfficientOmega, "step": StepCounterOmega},
        [nominal(n=3, horizon=1500.0)],
        [0, 1, 2],
    )


class TestParseShard:
    def test_parses_valid_selector(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)

    @pytest.mark.parametrize("text", ["", "2", "a/b", "1/", "/2", "1/2/3"])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="shard must look like"):
            parse_shard(text)

    @pytest.mark.parametrize("text", ["0/2", "3/2", "1/0", "-1/2"])
    def test_rejects_out_of_range(self, text):
        with pytest.raises(ValueError, match="out of range"):
            parse_shard(text)


class TestShardBounds:
    @pytest.mark.parametrize("total", [0, 1, 5, 7, 16])
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_shards_tile_the_range_exactly(self, total, count):
        covered = []
        for index in range(1, count + 1):
            lo, hi = shard_bounds(total, index, count)
            covered.extend(range(lo, hi))
        assert covered == list(range(total))

    def test_shards_are_balanced(self):
        sizes = [hi - lo for lo, hi in
                 (shard_bounds(10, k, 3) for k in (1, 2, 3))]
        assert sizes == [4, 3, 3]  # remainder goes to the lowest shards

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0, 3)
        with pytest.raises(ValueError):
            shard_bounds(10, 4, 3)


class TestDistributedShards:
    def test_shard_rows_concatenate_to_unsharded_rows(self, spec):
        whole = run_experiment(spec, jobs=1, cache=False)
        pieces = []
        for k in (1, 2, 3):
            report = run_experiment(spec, jobs=1, cache=False, shard=(k, 3))
            assert report.shard == (k, 3)
            assert report.total_cells == spec.size()
            pieces.extend(report.rows)
        assert pieces == whole.rows

    def test_shards_share_one_cache_and_resume(self, spec, tmp_path):
        first = run_experiment(spec, jobs=1, results_dir=tmp_path, shard=(1, 2))
        assert first.executed == len(first.rows) > 0
        # The second shard and a final unsharded pass both reuse the
        # same content-hashed JSONL file.
        second = run_experiment(spec, jobs=1, results_dir=tmp_path, shard=(2, 2))
        assert second.executed == len(second.rows)
        merged = run_experiment(spec, jobs=1, results_dir=tmp_path)
        assert merged.executed == 0
        assert merged.cache_hits == spec.size()
        assert merged.rows == first.rows + second.rows

    def test_interrupted_shard_keeps_finished_cells(self, spec, tmp_path, monkeypatch):
        # Simulate a shard killed mid-run: execute_cell raises after the
        # first cell.  The completed cell must already be in the cache.
        import repro.engine.driver as driver_mod

        real = driver_mod.execute_cell
        calls = {"n": 0}

        def flaky(cell, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt
            return real(cell, **kwargs)

        monkeypatch.setattr(driver_mod, "execute_cell", flaky)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(spec, jobs=1, results_dir=tmp_path, shard=(1, 2))
        monkeypatch.setattr(driver_mod, "execute_cell", real)
        resumed = run_experiment(spec, jobs=1, results_dir=tmp_path, shard=(1, 2))
        assert resumed.cache_hits == 1
        assert resumed.executed == len(resumed.rows) - 1


class TestInProcessShards:
    def test_rows_identical_to_unsharded(self, spec):
        whole = run_experiment(spec, jobs=1, cache=False)
        sharded = run_experiment(spec, jobs=1, cache=False, shards=3)
        assert sharded.rows == whole.rows
        assert sharded.shards == 3
        assert sharded.total_cells == spec.size()

    def test_more_shards_than_cells(self, spec):
        whole = run_experiment(spec, jobs=1, cache=False)
        sharded = run_experiment(spec, jobs=1, cache=False, shards=spec.size() + 3)
        assert sharded.rows == whole.rows

    def test_shard_and_shards_are_mutually_exclusive(self, spec):
        with pytest.raises(ValueError, match="not both"):
            run_experiment(spec, cache=False, shard=(1, 2), shards=2)

    def test_shards_must_be_positive(self, spec):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_experiment(spec, cache=False, shards=0)
