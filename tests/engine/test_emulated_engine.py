"""The memory-backend and consistency axes through the parallel engine."""

from __future__ import annotations

import pytest

from repro.engine.driver import run_experiment
from repro.engine.spec import ExperimentSpec
from repro.engine.summary import RunSummary
from repro.engine.worker import run_cell
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import (
    nominal,
    nominal_emulated,
    nominal_emulated_atomic,
)


def small_spec(**kwargs) -> ExperimentSpec:
    return ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal(n=3, horizon=800.0)],
        [0],
        **kwargs,
    )


def test_spec_memory_default_and_payload():
    spec = small_spec()
    assert spec.memory is None  # None = leave each scenario's choice in force
    assert spec.to_payload()["memory"] is None
    assert small_spec(memory="emulated").to_payload()["memory"] == "emulated"


def test_spec_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown memory backend"):
        small_spec(memory="astral")


def test_memory_axis_changes_content_hash():
    assert small_spec().content_hash() != small_spec(memory="emulated").content_hash()


def test_worker_forces_backend_onto_cell():
    spec = small_spec(memory="emulated")
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "emulated"
    assert summary.messages_sent > 0
    assert summary.stabilized


def test_worker_default_keeps_scenario_backend():
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0],
    )
    assert spec.memory is None  # the default override is "no override"
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "emulated"


def test_worker_can_force_shared_onto_emulated_scenario():
    """``--memory shared`` must actually strip the emulation."""
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0],
        memory="shared",
    )
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "shared"
    assert summary.messages_sent == 0


def test_emulated_grid_through_driver_parallel(tmp_path):
    spec = ExperimentSpec.from_objects(
        "emu-grid",
        {"alg1": ALGORITHMS["alg1"], "alg2": ALGORITHMS["alg2"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0, 1],
    )
    report = run_experiment(spec, jobs=2, cache=True, results_dir=tmp_path)
    assert len(report.rows) == 4
    assert all(row.memory_backend == "emulated" for row in report.rows)
    assert all(row.stabilized for row in report.rows)
    # A second run of the same spec is served entirely from the cache,
    # and cached rows keep the backend fields through JSONL round-trip.
    again = run_experiment(spec, jobs=2, cache=True, results_dir=tmp_path)
    assert again.cache_hits == 4 and again.executed == 0
    assert again.rows == report.rows


def test_summary_backend_fields_round_trip_jsonl():
    summary = run_cell(small_spec(memory="emulated").cells()[0], memory="emulated")
    restored = RunSummary.from_jsonable(summary.to_jsonable())
    assert restored.memory_backend == "emulated"
    assert restored.messages_sent == summary.messages_sent
    assert restored == summary


# ----------------------------------------------------------------------
# The consistency axis
# ----------------------------------------------------------------------
def emu_spec(**kwargs) -> ExperimentSpec:
    return ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0],
        **kwargs,
    )


def test_spec_consistency_default_and_payload():
    spec = emu_spec()
    assert spec.consistency is None  # None = leave each scenario's level in force
    assert spec.to_payload()["consistency"] is None
    assert emu_spec(consistency="atomic").to_payload()["consistency"] == "atomic"


def test_spec_rejects_unknown_consistency():
    with pytest.raises(ValueError, match="unknown consistency level"):
        emu_spec(consistency="sequential")


def test_consistency_axis_changes_content_hash():
    assert emu_spec().content_hash() != emu_spec(consistency="atomic").content_hash()


def test_worker_forces_consistency_onto_emulated_cell():
    spec = emu_spec(consistency="atomic")
    summary = run_cell(spec.cells()[0], consistency=spec.consistency)
    assert summary.memory_backend == "emulated"
    assert summary.consistency == "atomic"
    assert summary.stabilized


def test_worker_consistency_ignored_on_shared_cells():
    """Forcing a level onto a shared-backend cell is a no-op, not an
    error: the override only ever applies to emulated cells."""
    spec = small_spec(consistency="atomic")
    summary = run_cell(spec.cells()[0], consistency=spec.consistency)
    assert summary.memory_backend == "shared"
    assert summary.audit_ok is None


def test_worker_default_keeps_scenario_consistency():
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated_atomic(n=3, horizon=1500.0)],
        [0],
    )
    summary = run_cell(spec.cells()[0], consistency=spec.consistency)
    assert summary.consistency == "atomic"
    assert summary.audit_ok is True and summary.audit_ops > 0


def test_summary_audit_fields_round_trip_jsonl():
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated_atomic(n=3, horizon=1500.0)],
        [0],
    )
    summary = run_cell(spec.cells()[0])
    restored = RunSummary.from_jsonable(summary.to_jsonable())
    assert restored.consistency == "atomic"
    assert restored.audit_ok is True
    assert restored.audit_ops == summary.audit_ops
    assert restored == summary


def test_fast_path_byte_stable_with_recorder_off():
    """Guards the PR 3 fast path: with the recorder off (the default),
    fast and traced emulated cells produce byte-identical summaries --
    audit fields stay at their None/0 rest state in both."""
    cell = emu_spec().cells()[0]
    fast = run_cell(cell, fast=True)
    traced = run_cell(cell, fast=False)
    assert fast.audit_ok is None and traced.audit_ok is None
    assert fast.canonical_json() == traced.canonical_json()


def test_fast_path_byte_stable_with_recorder_on():
    """The recorder is orthogonal to the fast path: atomic+recorded
    cells are byte-identical fast vs traced too."""
    cell = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated_atomic(n=3, horizon=1500.0)],
        [0],
    ).cells()[0]
    fast = run_cell(cell, fast=True)
    traced = run_cell(cell, fast=False)
    assert fast.audit_ok is True
    assert fast.canonical_json() == traced.canonical_json()
