"""The memory-backend axis through the parallel experiment engine."""

from __future__ import annotations

import pytest

from repro.engine.driver import run_experiment
from repro.engine.spec import ExperimentSpec
from repro.engine.summary import RunSummary
from repro.engine.worker import run_cell
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import nominal, nominal_emulated


def small_spec(**kwargs) -> ExperimentSpec:
    return ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal(n=3, horizon=800.0)],
        [0],
        **kwargs,
    )


def test_spec_memory_default_and_payload():
    spec = small_spec()
    assert spec.memory is None  # None = leave each scenario's choice in force
    assert spec.to_payload()["memory"] is None
    assert small_spec(memory="emulated").to_payload()["memory"] == "emulated"


def test_spec_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown memory backend"):
        small_spec(memory="astral")


def test_memory_axis_changes_content_hash():
    assert small_spec().content_hash() != small_spec(memory="emulated").content_hash()


def test_worker_forces_backend_onto_cell():
    spec = small_spec(memory="emulated")
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "emulated"
    assert summary.messages_sent > 0
    assert summary.stabilized


def test_worker_default_keeps_scenario_backend():
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0],
    )
    assert spec.memory is None  # the default override is "no override"
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "emulated"


def test_worker_can_force_shared_onto_emulated_scenario():
    """``--memory shared`` must actually strip the emulation."""
    spec = ExperimentSpec.from_objects(
        "emu-test",
        {"alg1": ALGORITHMS["alg1"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0],
        memory="shared",
    )
    summary = run_cell(spec.cells()[0], memory=spec.memory)
    assert summary.memory_backend == "shared"
    assert summary.messages_sent == 0


def test_emulated_grid_through_driver_parallel(tmp_path):
    spec = ExperimentSpec.from_objects(
        "emu-grid",
        {"alg1": ALGORITHMS["alg1"], "alg2": ALGORITHMS["alg2"]},
        [nominal_emulated(n=3, horizon=1500.0)],
        [0, 1],
    )
    report = run_experiment(spec, jobs=2, cache=True, results_dir=tmp_path)
    assert len(report.rows) == 4
    assert all(row.memory_backend == "emulated" for row in report.rows)
    assert all(row.stabilized for row in report.rows)
    # A second run of the same spec is served entirely from the cache,
    # and cached rows keep the backend fields through JSONL round-trip.
    again = run_experiment(spec, jobs=2, cache=True, results_dir=tmp_path)
    assert again.cache_hits == 4 and again.executed == 0
    assert again.rows == report.rows


def test_summary_backend_fields_round_trip_jsonl():
    summary = run_cell(small_spec(memory="emulated").cells()[0], memory="emulated")
    restored = RunSummary.from_jsonable(summary.to_jsonable())
    assert restored.memory_backend == "emulated"
    assert restored.messages_sent == summary.messages_sent
    assert restored == summary
