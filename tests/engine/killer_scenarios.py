"""Test helper: a scenario whose build kills the worker process.

Referenced by import path (``killer_scenarios:kill_scenario``) from the
broken-pool driver test; ``os._exit`` bypasses all exception handling,
so the death looks exactly like an OOM-kill to the process pool.
"""

from __future__ import annotations

import os

from repro.workloads.scenarios import Scenario


def kill_scenario(exit_code: int = 137) -> Scenario:
    def make_delay(rng):
        os._exit(exit_code)

    return Scenario(name="killer", n=3, horizon=100.0, make_delay=make_delay)
