"""Experiment specs: refs, grid order, content hashing."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.engine.spec import AlgorithmRef, Cell, ExperimentSpec, ScenarioRef
from repro.workloads.scenarios import Scenario, nominal


def make_spec(seeds=(0, 1), window=100.0, horizon=1500.0):
    return ExperimentSpec.from_objects(
        "t",
        {"alg1": WriteEfficientOmega, "step": StepCounterOmega},
        [nominal(n=3, horizon=horizon)],
        seeds,
        window=window,
    )


class TestRefs:
    def test_factory_attaches_ref(self):
        scen = nominal(n=3, horizon=1500.0)
        assert scen.ref == ("nominal", {"n": 3, "horizon": 1500.0})

    def test_ref_includes_defaults(self):
        assert nominal().ref == ("nominal", {"n": 4, "horizon": 4000.0})

    def test_positional_and_keyword_calls_agree(self):
        assert nominal(3, 1500.0).ref == nominal(horizon=1500.0, n=3).ref

    def test_registry_algorithm_target_is_short_name(self):
        spec = make_spec()
        assert spec.algorithms[0] == AlgorithmRef(label="alg1", target="alg1")

    def test_handbuilt_scenario_rejected(self):
        bare = Scenario(name="bare", n=3, horizon=100.0)
        with pytest.raises(ValueError, match="factory ref"):
            ExperimentSpec.from_objects("t", {"alg1": WriteEfficientOmega}, [bare], [0])


class TestGrid:
    def test_cells_scenario_major_order(self):
        spec = make_spec(seeds=(7, 8))
        keys = [(c.algorithm.label, c.seed) for c in spec.cells()]
        assert keys == [("alg1", 7), ("alg1", 8), ("step", 7), ("step", 8)]

    def test_size(self):
        assert make_spec(seeds=(0, 1, 2)).size() == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="t",
                algorithms=(AlgorithmRef("a", "alg1"),),
                scenarios=(ScenarioRef.make("nominal"),),
                seeds=(),
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentSpec(
                name="t",
                algorithms=(AlgorithmRef("a", "alg1"), AlgorithmRef("a", "alg2")),
                scenarios=(ScenarioRef.make("nominal"),),
                seeds=(0,),
            )

    def test_cell_key_includes_all_axes(self):
        cell = Cell(
            algorithm=AlgorithmRef("alg1", "alg1"),
            scenario=ScenarioRef.make("nominal", {"n": 3}),
            seed=4,
        )
        label, scen_key, seed = cell.key
        assert label == "alg1" and seed == 4 and scen_key.startswith("nominal(")


class TestContentHash:
    def test_stable_across_instances(self):
        assert make_spec().content_hash() == make_spec().content_hash()

    def test_name_is_cosmetic(self):
        a = make_spec()
        b = ExperimentSpec(
            name="renamed",
            algorithms=a.algorithms,
            scenarios=a.scenarios,
            seeds=a.seeds,
            window=a.window,
        )
        assert a.content_hash() == b.content_hash()

    def test_sensitive_to_every_grid_axis(self):
        base = make_spec()
        assert base.content_hash() != make_spec(seeds=(0, 2)).content_hash()
        assert base.content_hash() != make_spec(window=50.0).content_hash()
        assert base.content_hash() != make_spec(horizon=2000.0).content_hash()

    def test_unserializable_kwargs_rejected(self):
        with pytest.raises(TypeError):
            ScenarioRef.make("nominal", {"bad": object()})
