"""Crash plans: validation, queries, builders."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.crash import CrashPlan
from tests.conftest import make_rng


class TestCrashPlanBasics:
    def test_none_plan_everyone_correct(self):
        plan = CrashPlan.none(4)
        assert plan.correct == frozenset(range(4))
        assert plan.faulty == frozenset()

    def test_single(self):
        plan = CrashPlan.single(4, 2, 10.0)
        assert plan.crash_time(2) == 10.0
        assert plan.is_correct(0)
        assert not plan.is_correct(2)

    def test_is_crashed_boundary(self):
        plan = CrashPlan.single(3, 1, 10.0)
        assert not plan.is_crashed(1, 9.999)
        assert plan.is_crashed(1, 10.0)

    def test_correct_process_never_crashes(self):
        plan = CrashPlan.single(3, 1, 10.0)
        assert plan.crash_time(0) == math.inf
        assert not plan.is_crashed(0, 1e12)

    def test_alive_at(self):
        plan = CrashPlan(4, {0: 5.0, 1: 15.0})
        assert plan.alive_at(0.0) == frozenset({0, 1, 2, 3})
        assert plan.alive_at(10.0) == frozenset({1, 2, 3})
        assert plan.alive_at(20.0) == frozenset({2, 3})

    def test_inf_times_normalized_away(self):
        plan = CrashPlan(3, {0: math.inf})
        assert plan.is_correct(0)

    def test_all_crashing_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(2, {0: 1.0, 1: 2.0})

    def test_out_of_range_pid_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(2, {5: 1.0})

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(2, {0: -1.0})


class TestBuilders:
    def test_all_but(self):
        plan = CrashPlan.all_but(4, survivor=2, at=10.0, spacing=5.0)
        assert plan.correct == frozenset({2})
        assert plan.crash_time(0) == 10.0
        assert plan.crash_time(1) == 15.0
        assert plan.crash_time(3) == 20.0

    def test_cascade(self):
        plan = CrashPlan.cascade(5, [3, 1], start=100.0, spacing=50.0)
        assert plan.crash_time(3) == 100.0
        assert plan.crash_time(1) == 150.0
        assert plan.correct == frozenset({0, 2, 4})

    def test_random_respects_cap(self):
        for seed in range(10):
            plan = CrashPlan.random(5, make_rng(seed), max_failures=2, probability=0.9)
            assert len(plan.faulty) <= 2

    def test_random_always_leaves_a_survivor(self):
        for seed in range(20):
            plan = CrashPlan.random(3, make_rng(seed), probability=1.0)
            assert len(plan.correct) >= 1

    def test_random_deterministic(self):
        a = CrashPlan.random(6, make_rng(3), probability=0.5)
        b = CrashPlan.random(6, make_rng(3), probability=0.5)
        assert a.crash_times == b.crash_times


class TestLeaderStorms:
    def test_bursts_and_gaps(self):
        plan = CrashPlan.leader_storms(
            6, crashes=4, start=100.0, gap=50.0, burst=2, spacing=1.0
        )
        # Two storms of two: pids 0,1 at 100/101; pids 2,3 at 150/151.
        assert plan.crash_times == {0: 100.0, 1: 101.0, 2: 150.0, 3: 151.0}
        assert plan.correct == frozenset({4, 5})

    def test_targets_are_the_lexmin_prefix(self):
        plan = CrashPlan.leader_storms(5, crashes=3, start=10.0, gap=5.0)
        assert plan.faulty == frozenset({0, 1, 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashPlan.leader_storms(4, crashes=4, start=1.0, gap=1.0)
        with pytest.raises(ValueError):
            CrashPlan.leader_storms(4, crashes=1, start=1.0, gap=0.0)


class TestCrashPlanProperty:
    @given(st.integers(2, 10), st.data())
    def test_correct_and_faulty_partition(self, n, data):
        crash_count = data.draw(st.integers(0, n - 1))
        pids = data.draw(
            st.lists(st.integers(0, n - 1), min_size=crash_count, max_size=crash_count, unique=True)
        )
        times = {pid: float(i + 1) for i, pid in enumerate(pids)}
        plan = CrashPlan(n, times)
        assert plan.correct | plan.faulty == frozenset(range(n))
        assert not plan.correct & plan.faulty
