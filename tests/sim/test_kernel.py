"""Simulator kernel: clock, scheduling rules, run-loop stop conditions."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: sim.stop())
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]

    def test_schedule_from_callback(self):
        sim = Simulator()
        fired = []

        def first():
            sim.schedule_after(1.0, lambda: fired.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == [2.0]

    def test_plain_scheduling_returns_no_handle(self):
        sim = Simulator()
        assert sim.schedule_at(1.0, lambda: None) is None
        assert sim.schedule_after(1.0, lambda: None) is None

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at_cancellable(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_skipped == 1

    def test_cancellable_after_delay(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule_after_cancellable(1.0, lambda: fired.append("keep"))
        drop = sim.schedule_after_cancellable(2.0, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_cancellable_rejects_past_and_negative(self):
        sim = Simulator()
        sim.schedule_at(5.0, sim.stop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at_cancellable(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_after_cancellable(-1.0, lambda: None)


class TestRunLoop:
    def test_until_clamps_clock_and_keeps_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert fired == []
        sim.run(until=20.0)
        assert fired == ["late"]

    def test_until_beyond_queue_advances_clock(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule_at(float(t), lambda: None)
        sim.run(max_events=3)
        assert sim.events_fired == 3

    def test_max_events_budget_is_per_invocation(self):
        # Regression: the budget used to be checked against the
        # *cumulative* events_fired counter, so a second run() on the
        # same simulator stopped immediately.
        sim = Simulator()
        for t in range(10):
            sim.schedule_at(float(t), lambda: None)
        sim.run(max_events=3)
        sim.run(max_events=3)
        assert sim.events_fired == 6
        sim.run(max_events=None)
        assert sim.events_fired == 10

    def test_events_fired_is_live_during_the_run(self):
        # stop_when predicates may read the public counter mid-run.
        sim = Simulator()
        for t in range(10):
            sim.schedule_at(float(t), lambda: None)
        sim.run(stop_when=lambda: sim.events_fired >= 4)
        assert sim.events_fired == 4

    def test_stop_when_predicate(self):
        sim = Simulator()
        counter = {"n": 0}

        def bump():
            counter["n"] += 1

        for t in range(10):
            sim.schedule_at(float(t), bump)
        sim.run(stop_when=lambda: counter["n"] >= 4)
        assert counter["n"] == 4

    def test_stop_method(self):
        sim = Simulator()
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule_at(1.0, stopper)
        sim.schedule_at(2.0, lambda: fired.append("never"))
        sim.run()
        assert fired == ["stop"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule_at(1.0, reenter)
        sim.run()

    def test_event_kind_counting(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None, kind="step")
        sim.schedule_at(2.0, lambda: None, kind="step")
        sim.schedule_at(3.0, lambda: None, kind="timer")
        sim.run()
        assert sim.fired_by_kind == {"step": 2, "timer": 1}

    def test_trace_events_disabled_skips_kind_accounting(self):
        sim = Simulator(trace_events=False)
        assert sim.trace_events is False
        sim.schedule_at(1.0, lambda: None, kind="step")
        sim.schedule_at(2.0, lambda: None, kind="timer")
        sim.run()
        assert sim.events_fired == 2  # totals still maintained
        assert sim.fired_by_kind == {}  # per-kind work skipped entirely

    def test_trace_events_default_on(self):
        assert Simulator().trace_events is True

    def test_pending_counts_queue(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending() == 2
