"""Tuple-heap event queue: ordering, stability, cancellation, guards."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import (
    CALLBACK,
    HANDLE,
    KIND,
    PID,
    SEQ,
    TIME,
    EventQueue,
    intern_kind,
    kind_name,
)


def drain(queue: EventQueue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        assert not EventQueue()

    def test_len_tracks_pushes(self):
        q = EventQueue()
        q.push(1.0, "a", None)
        q.push(2.0, "b", None)
        assert len(q) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_pop_returns_earliest(self):
        q = EventQueue()
        q.push(5.0, "late", None)
        q.push(1.0, "early", None)
        entry = q.pop()
        assert kind_name(entry[KIND]) == "early"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, "x", None)
        assert q.peek_time() == 3.0

    def test_equal_times_fire_in_schedule_order(self):
        q = EventQueue()
        for label in ("first", "second", "third"):
            q.push(7.0, label, None)
        kinds = [kind_name(entry[KIND]) for entry in drain(q)]
        assert kinds == ["first", "second", "third"]

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), "x", None)

    def test_nan_time_rejected_on_cancellable_path(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push_cancellable(float("nan"), "x", None)

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, "x", None)
        q.clear()
        assert not q

    def test_pid_recorded(self):
        q = EventQueue()
        q.push(1.0, "x", None, pid=3)
        entry = q.pop()
        assert entry[PID] == 3

    def test_entry_layout(self):
        q = EventQueue()
        cb = lambda: None  # noqa: E731
        q.push(2.5, "step", cb, pid=1)
        entry = q.pop()
        assert entry[TIME] == 2.5
        assert isinstance(entry[SEQ], int)
        assert kind_name(entry[KIND]) == "step"
        assert entry[PID] == 1
        assert entry[CALLBACK] is cb
        assert entry[HANDLE] is None


class TestCancellation:
    def test_plain_push_carries_no_handle(self):
        q = EventQueue()
        q.push(1.0, "x", None)
        assert q.pop()[HANDLE] is None

    def test_cancel_marks_handle(self):
        q = EventQueue()
        handle = q.push_cancellable(1.0, "x", None)
        assert not handle.cancelled
        handle.cancel()
        popped = q.pop()
        assert popped[HANDLE] is handle
        assert popped[HANDLE].cancelled

    def test_cancel_is_lazy_entry_stays_queued(self):
        q = EventQueue()
        handle = q.push_cancellable(1.0, "x", None)
        handle.cancel()
        assert len(q) == 1  # the standard O(1)-cancel trick

    def test_cancel_one_of_many(self):
        q = EventQueue()
        q.push(1.0, "keep-a", None)
        handle = q.push_cancellable(2.0, "drop", None)
        q.push(3.0, "keep-b", None)
        handle.cancel()
        live = [kind_name(e[KIND]) for e in drain(q) if e[HANDLE] is None or not e[HANDLE].cancelled]
        assert live == ["keep-a", "keep-b"]

    def test_cancellable_entries_keep_fifo_order_with_plain_ones(self):
        q = EventQueue()
        q.push(5.0, "plain-1", None)
        q.push_cancellable(5.0, "cancellable", None)
        q.push(5.0, "plain-2", None)
        kinds = [kind_name(e[KIND]) for e in drain(q)]
        assert kinds == ["plain-1", "cancellable", "plain-2"]


class TestKindInterning:
    def test_round_trip(self):
        kid = intern_kind("some-unique-kind-label")
        assert kind_name(kid) == "some-unique-kind-label"

    def test_stable_ids(self):
        assert intern_kind("timer") == intern_kind("timer")

    def test_queue_uses_interned_ids(self):
        q = EventQueue()
        q.push(1.0, "timer", None)
        assert q.pop()[KIND] == intern_kind("timer")


class TestEventOrderingProperty:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=60))
    def test_pop_order_is_sorted_by_time(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, "e", None)
        popped = [entry[TIME] for entry in drain(q)]
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(st.sampled_from([1.0, 2.0, 3.0]), st.integers(0, 999)),
            min_size=1,
            max_size=60,
        )
    )
    def test_stable_within_equal_times(self, items):
        q = EventQueue()
        for t, tag in items:
            q.push(t, str(tag), None)
        popped = [(entry[TIME], kind_name(entry[KIND])) for entry in drain(q)]
        expected = sorted(
            [(t, str(tag)) for t, tag in items],
            key=lambda pair: pair[0],
        )
        # stable sort on time must preserve insertion order for ties
        by_time: dict[float, list[str]] = {}
        for t, tag in items:
            by_time.setdefault(t, []).append(str(tag))
        reconstructed: dict[float, list[str]] = {}
        for t, tag in popped:
            reconstructed.setdefault(t, []).append(tag)
        assert reconstructed == by_time
        assert [p[0] for p in popped] == [e[0] for e in expected]

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_seq_numbers_strictly_increase_in_push_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(float(t), "e", None)
        seqs_by_push_order = sorted(drain(q), key=lambda e: e[SEQ])
        assert [e[TIME] for e in seqs_by_push_order] == [float(t) for t in times]
