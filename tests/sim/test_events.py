"""Event queue: ordering, stability, cancellation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue


def drain(queue: EventQueue):
    out = []
    while queue:
        event, handle = queue.pop()
        out.append((event, handle))
    return out


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        assert not EventQueue()

    def test_len_tracks_pushes(self):
        q = EventQueue()
        q.push(1.0, "a", None)
        q.push(2.0, "b", None)
        assert len(q) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_pop_returns_earliest(self):
        q = EventQueue()
        q.push(5.0, "late", None)
        q.push(1.0, "early", None)
        event, _ = q.pop()
        assert event.kind == "early"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, "x", None)
        assert q.peek_time() == 3.0

    def test_equal_times_fire_in_schedule_order(self):
        q = EventQueue()
        for label in ("first", "second", "third"):
            q.push(7.0, label, None)
        kinds = [event.kind for event, _ in drain(q)]
        assert kinds == ["first", "second", "third"]

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), "x", None)

    def test_cancel_marks_handle(self):
        q = EventQueue()
        handle = q.push(1.0, "x", None)
        handle.cancel()
        _, popped_handle = q.pop()
        assert popped_handle.cancelled

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, "x", None)
        q.clear()
        assert not q

    def test_pid_recorded(self):
        q = EventQueue()
        q.push(1.0, "x", None, pid=3)
        event, _ = q.pop()
        assert event.pid == 3


class TestEventOrderingProperty:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=60))
    def test_pop_order_is_sorted_by_time(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, "e", None)
        popped = [event.time for event, _ in drain(q)]
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(st.sampled_from([1.0, 2.0, 3.0]), st.integers(0, 999)),
            min_size=1,
            max_size=60,
        )
    )
    def test_stable_within_equal_times(self, items):
        q = EventQueue()
        for t, tag in items:
            q.push(t, str(tag), None)
        popped = [(event.time, event.kind) for event, _ in drain(q)]
        expected = sorted(
            [(t, str(tag)) for t, tag in items],
            key=lambda pair: pair[0],
        )
        # stable sort on time must preserve insertion order for ties
        by_time: dict[float, list[str]] = {}
        for t, tag in items:
            by_time.setdefault(t, []).append(str(tag))
        reconstructed: dict[float, list[str]] = {}
        for t, tag in popped:
            reconstructed.setdefault(t, []).append(tag)
        assert reconstructed == by_time
        assert [p[0] for p in popped] == [e[0] for e in expected]


class TestEventRecord:
    def test_lt_uses_time_then_seq(self):
        a = Event(1.0, 0, "a", None)
        b = Event(1.0, 1, "b", None)
        c = Event(0.5, 9, "c", None)
        assert c < a < b
