"""Named RNG streams: determinism and independence."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitive(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngRegistry:
    def test_same_seed_same_sequence(self):
        a = [RngRegistry(7).stream("x").random() for _ in range(5)]
        b = [RngRegistry(7).stream("x").random() for _ in range(5)]
        assert a == b

    def test_streams_are_memoised(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        # Drawing from one stream must not perturb another: compare with
        # a fresh registry where the other stream is never touched.
        reg.stream("noise").random()
        value = reg.stream("signal").random()
        fresh = RngRegistry(7).stream("signal").random()
        assert value == fresh

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_fork_independent_of_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork("c").stream("x").random()
        b = RngRegistry(7).fork("c").stream("x").random()
        assert a == b
