"""Step-delay models: positivity, bounds, AWB1 semantics, stalls."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry
from repro.sim.schedulers import (
    AdversarialStallDelay,
    AlternatingBurstDelay,
    ChurningTimelyDelay,
    CompositeDelay,
    FixedDelay,
    GstRampDelay,
    HeavyTailDelay,
    PartiallySynchronousDelay,
    RampDelay,
    StallWindow,
    UniformDelay,
    mean_delay,
)
from tests.conftest import make_rng


class TestFixedDelay:
    def test_constant(self):
        model = FixedDelay(2.5)
        assert model.delay(0, 0.0) == 2.5
        assert model.delay(3, 99.0) == 2.5

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            FixedDelay(0.0).delay(0, 0.0)


class TestUniformDelay:
    def test_within_bounds(self, rng):
        model = UniformDelay(rng, 0.5, 1.5)
        for _ in range(200):
            assert 0.5 <= model.delay(1, 0.0) <= 1.5

    def test_bad_bounds_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformDelay(rng, 2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(rng, 0.0, 1.0)

    def test_per_pid_streams_differ(self, rng):
        model = UniformDelay(rng, 0.5, 1.5)
        a = [model.delay(0, 0.0) for _ in range(8)]
        b = [model.delay(1, 0.0) for _ in range(8)]
        assert a != b

    def test_deterministic_across_registries(self):
        a = UniformDelay(make_rng(5), 0.5, 1.5).delay(0, 0.0)
        b = UniformDelay(make_rng(5), 0.5, 1.5).delay(0, 0.0)
        assert a == b


class TestHeavyTailDelay:
    def test_positive_and_capped(self, rng):
        model = HeavyTailDelay(rng, scale=0.5, shape=1.3, cap=10.0)
        for _ in range(500):
            d = model.delay(2, 0.0)
            assert 0 < d <= 10.0

    def test_produces_tail(self, rng):
        model = HeavyTailDelay(rng, scale=0.5, shape=1.1, cap=100.0)
        samples = [model.delay(0, 0.0) for _ in range(2000)]
        assert max(samples) > 10 * min(samples)

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            HeavyTailDelay(rng, scale=-1.0)


class TestPartiallySynchronousDelay:
    """The AWB1 realization: the designated process is timely after gst."""

    def test_timely_after_gst(self, rng):
        model = PartiallySynchronousDelay(
            base=HeavyTailDelay(rng, cap=50.0),
            timely_pids={0},
            gst=100.0,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        )
        for _ in range(200):
            assert 0.5 <= model.delay(0, 150.0) <= 1.0

    def test_untimely_before_gst(self, rng):
        model = PartiallySynchronousDelay(
            base=FixedDelay(7.0), timely_pids={0}, gst=100.0, rng=rng
        )
        assert model.delay(0, 50.0) == 7.0

    def test_other_pids_stay_on_base(self, rng):
        model = PartiallySynchronousDelay(
            base=FixedDelay(7.0), timely_pids={0}, gst=100.0, rng=rng
        )
        assert model.delay(1, 500.0) == 7.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PartiallySynchronousDelay(FixedDelay(1.0), {0}, gst=-1.0, rng=rng)
        with pytest.raises(ValueError):
            PartiallySynchronousDelay(
                FixedDelay(1.0), {0}, gst=0.0, rng=rng, timely_lo=2.0, timely_hi=1.0
            )


class TestAdversarialStallDelay:
    def test_stall_pushes_wake_to_window_end(self):
        model = AdversarialStallDelay(FixedDelay(1.0), [StallWindow(0, 10.0, 50.0)])
        # Step at t=9.5 would wake at 10.5, inside the stall: push to 50.
        assert model.delay(0, 9.5) == pytest.approx(50.0 - 9.5)

    def test_other_pid_unaffected(self):
        model = AdversarialStallDelay(FixedDelay(1.0), [StallWindow(0, 10.0, 50.0)])
        assert model.delay(1, 9.5) == 1.0

    def test_outside_window_unaffected(self):
        model = AdversarialStallDelay(FixedDelay(1.0), [StallWindow(0, 10.0, 50.0)])
        assert model.delay(0, 100.0) == 1.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            StallWindow(0, 5.0, 5.0)

    def test_chained_windows(self):
        model = AdversarialStallDelay(
            FixedDelay(1.0), [StallWindow(0, 2.0, 5.0), StallWindow(0, 5.0, 9.0)]
        )
        # Wake at 2.5 -> pushed to 5.0 -> inside second window -> 9.0.
        assert model.delay(0, 1.5) == pytest.approx(7.5)


class TestRampDelay:
    def test_grows_with_time(self):
        model = RampDelay(base=1.0, rate=0.1)
        assert model.delay(0, 100.0) > model.delay(0, 10.0)


class TestCompositeDelay:
    def test_dispatch(self):
        model = CompositeDelay(FixedDelay(1.0), {2: FixedDelay(9.0)})
        assert model.delay(0, 0.0) == 1.0
        assert model.delay(2, 0.0) == 9.0


class TestGstRampDelay:
    def test_delays_shrink_toward_gst(self):
        model = GstRampDelay(make_rng(3), gst=1000.0, start_scale=8.0, lo=1.0, hi=1.0)
        early = model.delay(0, 0.0)
        mid = model.delay(0, 500.0)
        late = model.delay(0, 999.0)
        assert early == pytest.approx(8.0)
        assert early > mid > late
        assert model.delay(0, 1000.0) == pytest.approx(1.0)  # timely after gst

    def test_non_designated_pids_stay_slow_forever(self):
        model = GstRampDelay(
            make_rng(3), gst=100.0, start_scale=4.0, lo=1.0, hi=1.0, timely_pids={0}
        )
        assert model.delay(0, 200.0) == pytest.approx(1.0)
        # Non-designated pids never enter the ramp: slow before the gst
        # (even just before it) and slow after.
        assert model.delay(1, 99.9) == pytest.approx(4.0)
        assert model.delay(1, 200.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GstRampDelay(make_rng(0), gst=0.0)
        with pytest.raises(ValueError):
            GstRampDelay(make_rng(0), gst=10.0, start_scale=0.5)


class TestAlternatingBurstDelay:
    def make(self, **kw):
        defaults = dict(
            period=100.0, burst_fraction=0.5, calm_lo=1.0, calm_hi=1.0,
            burst_lo=10.0, burst_hi=10.0,
        )
        defaults.update(kw)
        return AlternatingBurstDelay(make_rng(4), **defaults)

    def test_calm_and_burst_phases_alternate(self):
        model = self.make()
        assert model.delay(1, 10.0) == pytest.approx(1.0)  # calm half
        assert model.delay(1, 60.0) == pytest.approx(10.0)  # burst half
        assert model.delay(1, 110.0) == pytest.approx(1.0)  # next cycle

    def test_timely_pid_drops_out_of_the_cycle_after_gst(self):
        model = self.make(timely_pids={0}, gst=200.0)
        assert model.delay(0, 60.0) == pytest.approx(10.0)  # still bursting
        assert model.delay(0, 260.0) == pytest.approx(1.0)  # timely forever
        assert model.delay(1, 260.0) == pytest.approx(10.0)  # others burst on

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(period=0.0)
        with pytest.raises(ValueError):
            self.make(burst_fraction=1.0)


class TestChurningTimelyDelay:
    def make(self):
        return ChurningTimelyDelay(
            base=FixedDelay(5.0),
            candidates=[0, 1, 2],
            epoch=100.0,
            settle_at=300.0,
            final_pid=0,
            rng=make_rng(5),
            timely_lo=1.0,
            timely_hi=1.0,
        )

    def test_timely_identity_rotates_then_settles(self):
        model = self.make()
        assert [model.timely_at(t) for t in (0.0, 100.0, 200.0)] == [0, 1, 2]
        assert model.timely_at(300.0) == 0
        assert model.timely_at(9999.0) == 0

    def test_only_the_current_witness_is_fast(self):
        model = self.make()
        assert model.delay(1, 150.0) == pytest.approx(1.0)
        assert model.delay(0, 150.0) == pytest.approx(5.0)
        assert model.delay(0, 400.0) == pytest.approx(1.0)
        assert model.delay(2, 400.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurningTimelyDelay(FixedDelay(1.0), [], 10.0, 0.0, 0, make_rng(0))


class TestMeanDelayHelper:
    def test_mean_of_fixed(self):
        assert mean_delay(FixedDelay(2.0), 0, 0.0) == pytest.approx(2.0)

    @given(st.floats(min_value=0.1, max_value=10.0), st.integers(0, 7))
    def test_all_models_produce_valid_delays(self, base, pid):
        reg = make_rng(99)
        models = [
            FixedDelay(base),
            UniformDelay(reg, base / 2, base),
            HeavyTailDelay(reg, scale=base, cap=base * 100),
        ]
        for model in models:
            d = model.delay(pid, 0.0)
            assert d > 0
