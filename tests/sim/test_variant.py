"""Kernel variant selection (REPRO_KERNEL) and the extension build tool."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import variant

REPO = Path(__file__).resolve().parent.parent.parent
BUILD_TOOL = REPO / "tools" / "build_kernel_ext.py"
CKERNEL = REPO / "src" / "repro" / "sim" / "_ckernel.py"


@pytest.fixture(autouse=True)
def restore_variant_state():
    saved = dict(variant._state)
    yield
    variant._state.clear()
    variant._state.update(saved)


class TestRequested:
    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(variant.ENV_KERNEL, raising=False)
        assert variant.requested() == "auto"
        assert variant.want_compiled()

    @pytest.mark.parametrize("value", ["python", "PYTHON", " python "])
    def test_python_normalized(self, monkeypatch, value):
        monkeypatch.setenv(variant.ENV_KERNEL, value)
        assert variant.requested() == "python"
        assert not variant.want_compiled()

    def test_compiled(self, monkeypatch):
        monkeypatch.setenv(variant.ENV_KERNEL, "compiled")
        assert variant.requested() == "compiled"
        assert variant.want_compiled()

    def test_unknown_value_falls_back_to_python(self, monkeypatch):
        monkeypatch.setenv(variant.ENV_KERNEL, "turbo")
        assert variant.requested() == "python"
        assert "turbo" in variant.kernel_variant()[1]


class TestState:
    def test_marks_round_trip(self):
        variant.mark_compiled()
        assert variant.kernel_variant()[0] == "compiled"
        variant.mark_python("back to safety")
        assert variant.kernel_variant() == ("python", "back to safety")


def _run(cmd, **env):
    merged = {**os.environ, "PYTHONPATH": str(REPO / "src"), **env}
    return subprocess.run(
        cmd, cwd=REPO, env=merged, capture_output=True, text=True, timeout=120
    )


class TestBuildTool:
    """The concatenate-and-compile tool, exercised in ``--pure`` mode
    (no compiler backends are required in the test environment)."""

    @pytest.fixture()
    def pure_build(self):
        assert not CKERNEL.exists(), "_ckernel.py left over from a previous run"
        proc = _run([sys.executable, str(BUILD_TOOL), "--pure"])
        assert proc.returncode == 0, proc.stderr
        try:
            yield
        finally:
            _run([sys.executable, str(BUILD_TOOL), "--clean"])
        assert not CKERNEL.exists()

    def test_graceful_skip_without_compiler_backends(self):
        # Neither Cython nor mypyc is installed here: the default build
        # must skip with exit 0, and --require must turn that into 3.
        proc = _run([sys.executable, str(BUILD_TOOL)])
        assert proc.returncode == 0, proc.stderr
        if "built repro.sim._ckernel" not in proc.stdout:
            assert "pure-Python kernel remains" in proc.stdout
            required = _run([sys.executable, str(BUILD_TOOL), "--require"])
            assert required.returncode == 3

    def test_pure_build_selected_under_repro_kernel_compiled(self, pure_build):
        probe = (
            "from repro.sim.kernel import Simulator\n"
            "from repro.sim.variant import kernel_variant\n"
            "s = Simulator()\n"
            "s.schedule_after(1.0, lambda: None)\n"
            "s.run()\n"
            "print(kernel_variant()[0], Simulator.__module__, s.events_fired)\n"
        )
        proc = _run([sys.executable, "-c", probe], REPRO_KERNEL="compiled")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["compiled", "repro.sim._ckernel", "1"]

    def test_repro_kernel_python_ignores_built_extension(self, pure_build):
        probe = (
            "from repro.sim.kernel import Simulator\n"
            "from repro.sim.variant import kernel_variant\n"
            "print(kernel_variant()[0], Simulator.__module__)\n"
        )
        proc = _run([sys.executable, "-c", probe], REPRO_KERNEL="python")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["python", "repro.sim.kernel"]

    def test_missing_extension_with_compiled_request_falls_back(self):
        assert not CKERNEL.exists()
        probe = (
            "from repro.sim.kernel import Simulator\n"
            "from repro.sim.variant import kernel_variant\n"
            "v, reason = kernel_variant()\n"
            "print(v); print(reason)\n"
        )
        proc = _run([sys.executable, "-c", probe], REPRO_KERNEL="compiled")
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.splitlines()
        assert lines[0] == "python"
        assert "fallback" in lines[1]
