"""Equal-timestamp batch dispatch: ordering, cancellation, mid-batch stops.

The run loop drains all events sharing one virtual instant as a single
batch (heap entry + collision bucket).  These tests pin the contracts
that batching must preserve: exact FIFO within the batch, lazy
cancellation taking effect inside the same batch, and exact restoration
of the undrained remainder when ``stop()`` / ``max_events`` /
``stop_when`` end the run mid-batch.
"""

from __future__ import annotations

import pytest

from repro.sim.events import EventLane
from repro.sim.kernel import SimulationError, Simulator


class TestBatchOrdering:
    def test_fifo_within_equal_timestamp_batch(self):
        sim = Simulator()
        fired = []
        for i in range(8):
            sim.schedule_at(5.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(8))

    def test_batches_interleaved_with_singletons(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b0"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b1"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.schedule_at(2.0, lambda: fired.append("b2"))
        sim.run()
        assert fired == ["a", "b0", "b1", "b2", "c"]

    def test_same_instant_events_scheduled_mid_batch_join_the_batch(self):
        # An event that schedules another event at the *current* instant
        # must see it fire within the same virtual time, after the
        # already-queued batch members.
        sim = Simulator()
        fired = []

        def head() -> None:
            fired.append("head")
            sim.schedule_at(5.0, lambda: fired.append("straggler"))

        sim.schedule_at(5.0, head)
        sim.schedule_at(5.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["head", "second", "straggler"]

    def test_now_is_stable_across_the_batch(self):
        sim = Simulator()
        seen = []
        for _ in range(4):
            sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5] * 4


class TestSameBatchCancellation:
    def test_earlier_event_cancels_later_same_batch_handle(self):
        sim = Simulator()
        fired = []
        victim = None

        def assassin() -> None:
            fired.append("assassin")
            victim.cancel()

        sim.schedule_at(3.0, assassin)
        victim = sim.schedule_at_cancellable(3.0, lambda: fired.append("victim"))
        sim.schedule_at(3.0, lambda: fired.append("bystander"))
        sim.run()
        assert fired == ["assassin", "bystander"]
        assert sim.events_skipped == 1

    def test_earlier_event_cancels_later_same_batch_lane_token(self):
        sim = Simulator()
        fired = []
        lane = EventLane("test-lane", None)
        tokens = []

        def assassin() -> None:
            fired.append("assassin")
            lane.cancel(tokens[0])

        sim.schedule_at(2.0, assassin)
        tokens.append(sim.schedule_lane_after(lane, 2.0, lambda: fired.append("victim")))
        sim.run()
        assert fired == ["assassin"]
        assert sim.events_skipped == 1

    def test_cancelled_before_run_is_skipped_in_batch(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        handle = sim.schedule_at_cancellable(1.0, lambda: fired.append("x"))
        sim.schedule_at(1.0, lambda: fired.append("b"))
        handle.cancel()
        sim.run()
        assert fired == ["a", "b"]


class TestMidBatchStops:
    def test_stop_mid_batch_restores_remainder_in_order(self):
        sim = Simulator()
        fired = []

        def stopper() -> None:
            fired.append("stopper")
            sim.stop()

        sim.schedule_at(4.0, stopper)
        for i in range(3):
            sim.schedule_at(4.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == ["stopper"]
        assert sim.pending() == 3
        # Resuming drains the restored remainder in the original order.
        sim.run()
        assert fired == ["stopper", 0, 1, 2]

    def test_max_events_mid_batch_is_exact(self):
        sim = Simulator()
        fired = []
        for i in range(6):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        sim.run()
        assert fired == list(range(6))

    def test_max_events_budget_is_per_invocation(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule_at(1.0, lambda: None)
        sim.run(max_events=4)
        sim.run(max_events=4)
        assert sim.events_fired == 6

    def test_stop_when_sees_live_counters_mid_batch(self):
        sim = Simulator()
        observed = []
        for _ in range(5):
            sim.schedule_at(1.0, lambda: None)
        sim.run(stop_when=lambda: (observed.append(sim.events_fired), False)[1])
        assert observed == [1, 2, 3, 4, 5]

    def test_stop_when_mid_batch_restores_remainder(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run(stop_when=lambda: sim.events_fired >= 2)
        assert fired == [0, 1]
        sim.run()
        assert fired == list(range(5))

    def test_post_stop_schedule_at_pinned_instant_keeps_order(self):
        # After a mid-batch stop the instant is pinned heap-direct;
        # events scheduled at it between runs must still interleave in
        # exact schedule order with the restored remainder.
        sim = Simulator()
        fired = []

        def stopper() -> None:
            fired.append("stopper")
            sim.stop()

        sim.schedule_at(4.0, stopper)
        sim.schedule_at(4.0, lambda: fired.append("restored"))
        sim.run()
        sim.schedule_at(4.0, lambda: fired.append("late"))
        sim.run()
        assert fired == ["stopper", "restored", "late"]

    def test_counters_synced_after_mid_batch_stop(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule_at(1.0, lambda: None)
        sim.run(max_events=2)
        assert sim.events_fired == 2
        assert sim.pending() == 2


class TestSchedulingGuards:
    def test_nan_time_rejected_on_every_scheduler(self):
        sim = Simulator()
        nan = float("nan")
        lane = EventLane("guard-lane", None)
        with pytest.raises(ValueError):
            sim.schedule_at(nan, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_after(nan, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at_cancellable(nan, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_after_cancellable(nan, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_lane_after(lane, nan, lambda: None)

    def test_past_and_negative_times_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_lane_after(EventLane("g", None), -1.0, lambda: None)

    def test_batch_contract_for_plain_callbacks(self):
        # Plain callbacks observe events_fired as of the start of their
        # batch (the documented batch-visible contract).
        sim = Simulator()
        seen = []
        for _ in range(3):
            sim.schedule_at(1.0, lambda: seen.append(sim.events_fired))
        sim.run()
        assert seen == [0, 0, 0]
        assert sim.events_fired == 3


class TestEventLane:
    def test_fire_consumes_payload_via_consume_fn(self):
        sim = Simulator()
        got = []
        lane = EventLane("msg", got.append)
        sim.schedule_lane_after(lane, 1.0, "payload")
        sim.run()
        assert got == ["payload"]

    def test_token_is_stale_after_fire(self):
        sim = Simulator()
        lane = EventLane("msg", lambda p: None)
        token = sim.schedule_lane_after(lane, 1.0, "p")
        assert lane.live(token)
        sim.run()
        assert not lane.live(token)
        assert not lane.cancel(token)

    def test_cancel_is_one_shot(self):
        sim = Simulator()
        lane = EventLane("msg", lambda p: None)
        token = sim.schedule_lane_after(lane, 1.0, "p")
        assert lane.cancel(token)
        assert not lane.cancel(token)
        sim.run()
        assert sim.events_fired == 0 and sim.events_skipped == 1

    def test_slot_reuse_does_not_resurrect_old_token(self):
        sim = Simulator()
        fired = []
        lane = EventLane("msg", fired.append, capacity=1)
        old = sim.schedule_lane_after(lane, 1.0, "old")
        lane.cancel(old)
        sim.schedule_lane_after(lane, 2.0, "new")  # reuses the slot
        assert not lane.live(old)
        sim.run()
        assert fired == ["new"]

    def test_columns_double_under_burst(self):
        sim = Simulator()
        fired = []
        lane = EventLane("msg", fired.append, capacity=2)
        for i in range(20):
            sim.schedule_lane_after(lane, 1.0 + i, i)
        sim.run()
        assert fired == list(range(20))

    def test_consumer_may_reschedule_immediately(self):
        # The slot is freed before consume runs, so a consumer can
        # re-arm through the same lane at once (the timer pattern).
        sim = Simulator()
        count = [0]
        lane = EventLane("timer", None, capacity=1)

        def tick() -> None:
            count[0] += 1
            if count[0] < 5:
                sim.schedule_lane_after(lane, 1.0, tick)

        sim.schedule_lane_after(lane, 1.0, tick)
        sim.run()
        assert count[0] == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLane("bad", None, capacity=0)
