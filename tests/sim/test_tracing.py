"""Run traces: recording and querying."""

from __future__ import annotations

from repro.sim.tracing import RunTrace


class TestRunTrace:
    def test_record_and_len(self):
        trace = RunTrace()
        trace.record(1.0, "crash", pid=2)
        assert len(trace) == 1

    def test_of_kind_filters_in_order(self):
        trace = RunTrace()
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "b", x=2)
        trace.record(3.0, "a", x=3)
        assert [r["x"] for r in trace.of_kind("a")] == [1, 3]

    def test_of_kind_missing_is_empty(self):
        assert RunTrace().of_kind("nope") == []

    def test_last_of_kind(self):
        trace = RunTrace()
        assert trace.last_of_kind("a") is None
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "a", x=2)
        assert trace.last_of_kind("a")["x"] == 2

    def test_record_getitem_and_get(self):
        trace = RunTrace()
        rec = trace.record(1.0, "a", x=1)
        assert rec["x"] == 1
        assert rec.get("y", "default") == "default"

    def test_iteration_in_order(self):
        trace = RunTrace()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        assert [r.kind for r in trace] == ["a", "b"]


class TestLeaderSampleHelpers:
    def _trace(self) -> RunTrace:
        trace = RunTrace()
        trace.record(0.0, "leader_sample", pid=0, leader=1)
        trace.record(0.0, "leader_sample", pid=1, leader=1)
        trace.record(5.0, "leader_sample", pid=0, leader=0)
        trace.record(5.0, "leader_sample", pid=1, leader=0)
        return trace

    def test_leader_samples(self):
        assert self._trace().leader_samples() == [
            (0.0, 0, 1),
            (0.0, 1, 1),
            (5.0, 0, 0),
            (5.0, 1, 0),
        ]

    def test_leader_samples_by_pid(self):
        by_pid = self._trace().leader_samples_by_pid()
        assert by_pid[0] == [(0.0, 1), (5.0, 0)]
        assert by_pid[1] == [(0.0, 1), (5.0, 0)]

    def test_sample_times_deduplicated(self):
        assert self._trace().sample_times() == [0.0, 5.0]
