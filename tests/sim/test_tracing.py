"""Run traces: recording and querying."""

from __future__ import annotations

from repro.sim.tracing import RunTrace


class TestRunTrace:
    def test_record_and_len(self):
        trace = RunTrace()
        trace.record(1.0, "crash", pid=2)
        assert len(trace) == 1

    def test_of_kind_filters_in_order(self):
        trace = RunTrace()
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "b", x=2)
        trace.record(3.0, "a", x=3)
        assert [r["x"] for r in trace.of_kind("a")] == [1, 3]

    def test_of_kind_missing_is_empty(self):
        assert RunTrace().of_kind("nope") == []

    def test_last_of_kind(self):
        trace = RunTrace()
        assert trace.last_of_kind("a") is None
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "a", x=2)
        assert trace.last_of_kind("a")["x"] == 2

    def test_record_getitem_and_get(self):
        trace = RunTrace()
        rec = trace.record(1.0, "a", x=1)
        assert rec["x"] == 1
        assert rec.get("y", "default") == "default"

    def test_iteration_in_order(self):
        trace = RunTrace()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        assert [r.kind for r in trace] == ["a", "b"]


class TestColumnarHotKinds:
    def test_generic_record_routes_hot_kind_to_columns(self):
        trace = RunTrace()
        assert trace.record(1.0, "leader_sample", pid=0, leader=2) is None
        assert trace.leader_samples() == [(1.0, 0, 2)]

    def test_hot_kind_with_extra_fields_falls_back_to_cold(self):
        trace = RunTrace()
        rec = trace.record(1.0, "leader_sample", pid=0, leader=2, note="odd")
        assert rec is not None
        assert rec["note"] == "odd"
        assert trace.leader_samples() == []  # not a canonical hot row
        assert [r["leader"] for r in trace.of_kind("leader_sample")] == [2]

    def test_dedicated_recorders(self):
        trace = RunTrace()
        trace.record_leader_sample(1.0, 0, 1)
        trace.record_timer_set(2.0, 1, 4.0)
        trace.record_timer_fired(3.0, 1, 5.5)
        assert trace.timer_rows("timer_set") == [(2.0, 1, 4.0)]
        assert trace.timer_rows("timer_fired") == [(3.0, 1, 5.5)]
        assert len(trace) == 3

    def test_leader_samples_returns_internal_sequence_no_copy(self):
        trace = RunTrace()
        trace.record_leader_sample(1.0, 0, 1)
        assert trace.leader_samples() is trace.leader_samples()

    def test_of_kind_returns_same_sequence_no_copy(self):
        trace = RunTrace()
        trace.record(1.0, "a", x=1)
        trace.record_leader_sample(2.0, 0, 1)
        assert trace.of_kind("a") is trace.of_kind("a")
        assert trace.of_kind("leader_sample") is trace.of_kind("leader_sample")

    def test_of_kind_materializes_hot_rows_lazily(self):
        trace = RunTrace()
        trace.record_leader_sample(1.0, 0, 1)
        records = trace.of_kind("leader_sample")
        assert [(r.time, r["pid"], r["leader"]) for r in records] == [(1.0, 0, 1)]
        trace.record_leader_sample(2.0, 1, 0)  # cache must extend on next query
        records = trace.of_kind("leader_sample")
        assert [(r.time, r["pid"], r["leader"]) for r in records] == [
            (1.0, 0, 1),
            (2.0, 1, 0),
        ]

    def test_last_of_kind_hot(self):
        trace = RunTrace()
        assert trace.last_of_kind("timer_set") is None
        trace.record_timer_set(1.0, 0, 2.0)
        trace.record_timer_set(5.0, 1, 3.0)
        last = trace.last_of_kind("timer_set")
        assert last.time == 5.0
        assert last["pid"] == 1
        assert last["timeout"] == 3.0

    def test_mixed_iteration_preserves_insertion_order(self):
        trace = RunTrace()
        trace.record(1.0, "crash", pid=0)
        trace.record_leader_sample(2.0, 0, 1)
        trace.record(3.0, "leader_return", pid=0, leader=1, ops=7)
        trace.record_timer_set(4.0, 0, 2.0)
        kinds = [r.kind for r in trace]
        assert kinds == ["crash", "leader_sample", "leader_return", "timer_set"]
        # materialized hot records expose the canonical field names
        sample = list(trace)[1]
        assert (sample["pid"], sample["leader"]) == (0, 1)


class TestLeaderSampleHelpers:
    def _trace(self) -> RunTrace:
        trace = RunTrace()
        trace.record(0.0, "leader_sample", pid=0, leader=1)
        trace.record(0.0, "leader_sample", pid=1, leader=1)
        trace.record(5.0, "leader_sample", pid=0, leader=0)
        trace.record(5.0, "leader_sample", pid=1, leader=0)
        return trace

    def test_leader_samples(self):
        assert self._trace().leader_samples() == [
            (0.0, 0, 1),
            (0.0, 1, 1),
            (5.0, 0, 0),
            (5.0, 1, 0),
        ]

    def test_leader_samples_by_pid(self):
        by_pid = self._trace().leader_samples_by_pid()
        assert by_pid[0] == [(0.0, 1), (5.0, 0)]
        assert by_pid[1] == [(0.0, 1), (5.0, 0)]

    def test_sample_times_deduplicated(self):
        assert self._trace().sample_times() == [0.0, 5.0]
