"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.rng import RngRegistry


@pytest.fixture
def rng() -> RngRegistry:
    """A deterministic RNG registry for tests."""
    return RngRegistry(seed=1234)


def make_rng(seed: int = 1234) -> RngRegistry:
    """Non-fixture helper for hypothesis tests (fixtures don't mix well
    with ``@given``)."""
    return RngRegistry(seed=seed)
