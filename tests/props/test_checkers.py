"""The four theorem monitors, on hand-built traces with known verdicts."""

from __future__ import annotations

import pytest

from repro.props.checkers import (
    BoundednessMonitor,
    SingleWriterMonitor,
    StabilizationMonitor,
    WriteOptimalityMonitor,
    progress_register,
)


def feed_samples(mon, rows):
    """rows: (time, pid, leader) triples."""
    for t, pid, leader in rows:
        mon.observe_sample(t, pid, leader)


class TestStabilizationMonitor:
    def test_clean_stabilization_with_churn(self):
        mon = StabilizationMonitor(horizon=100.0, margin=10.0)
        # Everyone flirts with p2 until t=30, then settles on p0.
        for t in range(0, 101, 10):
            for pid in (0, 1, 2):
                mon.observe_sample(float(t), pid, 2 if t < 30 else 0)
        verdict = mon.finish()
        assert verdict.holds
        assert verdict.leader == 0
        assert verdict.settle_time == 30.0
        assert verdict.churn == 3  # one output change per process
        assert verdict.leaders_seen == 2

    def test_disagreement_fails(self):
        mon = StabilizationMonitor(horizon=100.0)
        feed_samples(mon, [(t, 0, 0) for t in (0.0, 50.0, 100.0)])
        feed_samples(mon, [(t, 1, 1) for t in (0.0, 50.0, 100.0)])
        verdict = mon.finish()
        assert not verdict.holds
        assert "disagree" in verdict.detail

    def test_crashed_leader_fails(self):
        mon = StabilizationMonitor(horizon=100.0)
        feed_samples(mon, [(t, pid, 1) for t in (0.0, 50.0, 90.0) for pid in (0, 2)])
        mon.observe_crash(40.0, 1)
        verdict = mon.finish()
        assert not verdict.holds
        assert verdict.leader == 1  # the common-but-crashed output is reported

    def test_margin_rejects_last_minute_agreement(self):
        mon = StabilizationMonitor(horizon=100.0, margin=10.0)
        # p1 only joins the consensus at t=95, inside the margin.
        feed_samples(mon, [(t, 0, 0) for t in (0.0, 50.0, 95.0)])
        feed_samples(mon, [(0.0, 1, 1), (50.0, 1, 1), (95.0, 1, 0)])
        verdict = mon.finish()
        assert not verdict.holds
        assert mon.finish().settle_time is None

    def test_churn_by_crashed_process_excluded(self):
        mon = StabilizationMonitor(horizon=100.0)
        feed_samples(mon, [(t, 0, 0) for t in (0.0, 50.0, 90.0)])
        # p1 churns wildly, then crashes: its churn must not count.
        feed_samples(mon, [(0.0, 1, 1), (10.0, 1, 0), (20.0, 1, 1)])
        mon.observe_crash(30.0, 1)
        verdict = mon.finish()
        assert verdict.holds and verdict.leader == 0
        assert verdict.churn == 0
        assert verdict.churn_all == 2

    def test_no_correct_samples(self):
        mon = StabilizationMonitor(horizon=100.0)
        mon.observe_sample(0.0, 0, 0)
        mon.observe_crash(10.0, 0)
        assert not mon.finish().holds


class TestBoundednessMonitor:
    def test_only_leader_progress_may_grow(self):
        mon = BoundednessMonitor(horizon=100.0)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)  # grows forever
            mon.observe_write(float(i), 1, "SUSPICIONS[1][0]", min(i, 10))  # plateaus
        verdict = mon.finish(leader=0)
        assert verdict.holds
        assert verdict.growing == ("PROGRESS[0]",)

    def test_growing_non_progress_register_is_offending(self):
        mon = BoundednessMonitor(horizon=100.0)
        for i in range(100):
            mon.observe_write(float(i), 1, "HB[1]", i)
        verdict = mon.finish(leader=0)
        assert not verdict.holds
        assert verdict.offending == ("HB[1]",)

    def test_single_late_record_is_not_growth(self):
        mon = BoundednessMonitor(horizon=100.0)
        mon.observe_write(10.0, 1, "SUSPICIONS[1][0]", 1)
        mon.observe_write(95.0, 1, "SUSPICIONS[1][0]", 2)  # lone late bump
        assert mon.finish(leader=0).holds

    def test_settle_time_excludes_contention_records(self):
        mon = BoundednessMonitor(horizon=100.0)
        # p1's PROGRESS advanced while contending (t < 90), then stopped.
        for i in range(90):
            mon.observe_write(float(i), 1, "PROGRESS[1]", i)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
        assert not mon.finish(leader=0).holds  # judged over the plain tail
        assert mon.finish(leader=0, settle_time=90.0).holds

    def test_booleans_never_grow(self):
        mon = BoundednessMonitor(horizon=100.0)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0][1]", i % 2 == 0)
        assert mon.finish(leader=None).holds

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundednessMonitor(100.0, tail_fraction=0.0)
        with pytest.raises(ValueError):
            BoundednessMonitor(100.0, min_records=0)


class TestSingleWriterMonitor:
    def test_single_writer_single_register(self):
        mon = SingleWriterMonitor(horizon=100.0, tail=20.0)
        mon.observe_write(10.0, 1, "PROGRESS[1]", 1)  # early contender
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
        verdict = mon.finish(leader=0)
        assert verdict.holds
        assert verdict.tail_writers == (0,)
        assert verdict.tail_registers == (progress_register(0),)
        assert verdict.switch_time == 10.0

    def test_second_tail_writer_fails(self):
        mon = SingleWriterMonitor(horizon=100.0, tail=20.0)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
        mon.observe_write(95.0, 1, "SUSPICIONS[1][0]", 7)
        verdict = mon.finish(leader=0)
        assert not verdict.holds
        assert verdict.tail_writers == (0, 1)

    def test_second_register_fails_even_with_one_writer(self):
        mon = SingleWriterMonitor(horizon=100.0, tail=20.0)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
            mon.observe_write(float(i), 0, "STOP[0]", i)
        assert not mon.finish(leader=0).holds

    def test_no_leader_fails(self):
        mon = SingleWriterMonitor(horizon=100.0, tail=20.0)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
        assert not mon.finish(leader=None).holds


class TestWriteOptimalityMonitor:
    def test_exactly_one_forever_writer(self):
        mon = WriteOptimalityMonitor(horizon=100.0, window=10.0, count=4)
        for i in range(100):
            mon.observe_write(float(i), 0, "PROGRESS[0]", i)
        mon.observe_write(65.0, 1, "SUSPICIONS[1][0]", 1)  # one window only
        verdict = mon.finish(leader=0)
        assert verdict.holds
        assert verdict.forever_writers == (0,)
        assert verdict.optimum == 1
        assert verdict.writes_by_pid[0] == 100

    def test_everyone_writing_forever_fails(self):
        mon = WriteOptimalityMonitor(horizon=100.0, window=10.0, count=4)
        for i in range(100):
            for pid in (0, 1, 2):
                mon.observe_write(float(i), pid, f"HB[{pid}]", i)
        verdict = mon.finish(leader=0)
        assert not verdict.holds
        assert verdict.forever_writers == (0, 1, 2)

    def test_forever_writer_must_be_the_leader(self):
        mon = WriteOptimalityMonitor(horizon=100.0, window=10.0, count=4)
        for i in range(100):
            mon.observe_write(float(i), 1, "PROGRESS[1]", i)
        assert not mon.finish(leader=0).holds
        assert mon.finish(leader=None).holds  # count-only fallback
