"""PropertyReport composition: claims, assumptions, round-trips, and the
injected-violation path (a run breaking AWB audited as if AWB held)."""

from __future__ import annotations

import json

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.props.claims import assumption_covers, expected_theorems
from repro.props.report import PropertyReport, TheoremVerdict, check_properties
from repro.workloads.scenarios import capped_timers, leader_crash, nominal


class TestClaims:
    def test_lattice(self):
        assert assumption_covers("awb", "awb")
        assert assumption_covers("ev-sync", "awb")
        assert not assumption_covers("none", "awb")
        assert not assumption_covers("awb", "ev-sync")

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            assumption_covers("synchronous", "awb")

    def test_expected_theorems_per_algorithm(self):
        assert expected_theorems(WriteEfficientOmega, "awb") == frozenset({1, 2, 3, 4})
        assert expected_theorems(BoundedOmega, "awb") == frozenset({1, 2})
        # The baseline needs full eventual synchrony: nothing is
        # expected of it in an AWB-only environment.
        assert expected_theorems(EventuallySynchronousOmega, "awb") == frozenset()
        assert expected_theorems(EventuallySynchronousOmega, "ev-sync") == frozenset({1})
        assert expected_theorems(WriteEfficientOmega, "none") == frozenset()


class TestCheckProperties:
    @pytest.fixture(scope="class")
    def alg1_result(self):
        scen = leader_crash(n=3, horizon=3000.0)
        return scen.run(WriteEfficientOmega, seed=0), scen

    def test_alg1_clean_audit(self, alg1_result):
        result, scen = alg1_result
        report = check_properties(
            result, assumption=scen.assumption, margin=scen.margin
        )
        assert report.ok
        assert [v.theorem for v in report.verdicts] == [1, 2, 3, 4]
        assert all(v.expected and v.holds for v in report.verdicts)
        assert report.claimed == (1, 2, 3, 4)

    def test_alg2_unclaimed_theorems_are_informational(self):
        scen = nominal(n=3, horizon=4000.0)
        result = scen.run(BoundedOmega, seed=0)
        report = check_properties(result, assumption=scen.assumption, margin=scen.margin)
        assert report.ok  # T3/T4 measured false but not claimed
        assert report.verdict(1).holds and report.verdict(2).holds
        assert not report.verdict(3).expected
        assert not report.verdict(4).expected

    def test_injected_awb_violation_is_flagged(self):
        """The acceptance-criterion test: capped-timers breaks AWB2, so
        auditing it *as if* AWB held must flag violations, while the
        honest declaration flags none."""
        scen = capped_timers()
        assert scen.assumption == "none"
        result = scen.run(WriteEfficientOmega, seed=0)
        honest = check_properties(result, assumption=scen.assumption, margin=scen.margin)
        assert honest.ok
        assert not honest.verdict(1).holds  # measured failure, not a violation
        lying = check_properties(result, assumption="awb", margin=scen.margin)
        assert not lying.ok
        assert 1 in [v.theorem for v in lying.violations()]

    def test_result_convenience_delegation(self, alg1_result):
        result, scen = alg1_result
        via_method = result.check_properties(
            assumption=scen.assumption, margin=scen.margin
        )
        direct = check_properties(result, assumption=scen.assumption, margin=scen.margin)
        assert via_method == direct


class TestRoundTrip:
    def make_report(self):
        return PropertyReport(
            algorithm="alg1",
            assumption="awb",
            requires="awb",
            claimed=(1, 2, 3, 4),
            verdicts=tuple(
                TheoremVerdict(theorem=t, name=f"t{t}", holds=t != 3, expected=True,
                               detail=f"detail {t}")
                for t in (1, 2, 3, 4)
            ),
        )

    def test_json_round_trip(self):
        report = self.make_report()
        clone = PropertyReport.from_jsonable(json.loads(json.dumps(report.to_jsonable())))
        assert clone == report
        assert clone.violations() == [report.verdict(3)]

    def test_verdict_lookup(self):
        report = self.make_report()
        assert report.verdict(2).holds
        with pytest.raises(KeyError):
            report.verdict(9)


class TestSummaryEmbedding:
    def test_summary_carries_report_through_json(self):
        scen = nominal(n=3, horizon=1500.0)
        result = scen.run(WriteEfficientOmega, seed=1)
        summary = result.summarize(
            scenario_name=scen.name, margin=scen.margin, assumption=scen.assumption
        )
        assert summary.properties is not None
        assert summary.property_violations == 0
        from repro.engine.summary import RunSummary

        clone = RunSummary.from_jsonable(json.loads(json.dumps(summary.to_jsonable())))
        assert clone == summary
        assert clone.properties == summary.properties
        assert clone.canonical_json() == summary.canonical_json()
