"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ALGORITHMS, CHECK_SCENARIOS, SCENARIOS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "alg1"
        assert args.scenario == "nominal"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "alg2", "--scenario", "san", "--seed", "9", "--n", "5"]
        )
        assert (args.algorithm, args.scenario, args.seed, args.n) == ("alg2", "san", 9, 5)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])

    def test_compare_seeds(self):
        args = build_parser().parse_args(["compare", "--seeds", "1", "2", "3"])
        assert args.seeds == [1, 2, 3]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == ["nominal"]
        assert args.seeds == [0, 1]
        assert args.jobs is None and not args.no_cache

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "alg1", "alg2", "--scenarios", "nominal",
             "leader-crash", "--seeds", "0", "1", "2", "--jobs", "4", "--no-cache"]
        )
        assert args.algorithms == ["alg1", "alg2"]
        assert args.scenarios == ["nominal", "leader-crash"]
        assert args.jobs == 4 and args.no_cache

    def test_sweep_traced_flag(self):
        assert build_parser().parse_args(["sweep"]).traced is False
        assert build_parser().parse_args(["sweep", "--traced"]).traced is True

    def test_sweep_shard_flags(self):
        args = build_parser().parse_args(["sweep"])
        assert args.shard is None and args.shards == 1
        args = build_parser().parse_args(["sweep", "--shard", "2/4"])
        assert args.shard == "2/4"
        args = build_parser().parse_args(["sweep", "--shards", "3"])
        assert args.shards == 3

    def test_memory_flags(self):
        assert build_parser().parse_args(["sweep"]).memory is None
        assert (
            build_parser().parse_args(["sweep", "--memory", "shared"]).memory
            == "shared"
        )
        assert (
            build_parser().parse_args(["sweep", "--memory", "emulated"]).memory
            == "emulated"
        )
        assert build_parser().parse_args(["run"]).memory is None
        assert (
            build_parser().parse_args(["run", "--memory", "emulated"]).memory
            == "emulated"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--memory", "astral"])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.profile == "full"
        assert args.compare is None
        assert args.max_regress == "15%"
        assert args.retries == 1

    def test_perf_options(self):
        args = build_parser().parse_args(
            ["perf", "--quick", "--compare", "BENCH_perf.json",
             "--max-regress", "25%", "--no-write"]
        )
        assert args.profile == "quick" and args.no_write
        assert args.compare == "BENCH_perf.json"
        assert args.max_regress == "25%"

    def test_perf_quick_conflicts_with_explicit_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--profile", "all", "--quick"])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.algorithms == ["alg1", "alg2"]
        assert args.scenarios == CHECK_SCENARIOS
        assert len(args.scenarios) >= 6  # the adversarial suite
        assert args.seeds == [0]

    def test_check_scenarios_are_registered(self):
        for name in CHECK_SCENARIOS:
            assert name in SCENARIOS

    def test_check_suite_includes_atomic_audit_cells(self):
        assert "nominal-emulated-atomic" in CHECK_SCENARIOS
        assert "replica-crash-atomic" in CHECK_SCENARIOS

    def test_check_suite_includes_lossy_audit_cell(self):
        assert "emulated-lossy-audit" in CHECK_SCENARIOS

    def test_consistency_flags(self):
        assert build_parser().parse_args(["run"]).consistency is None
        assert build_parser().parse_args(["sweep"]).consistency is None
        assert (
            build_parser().parse_args(["run", "--consistency", "atomic"]).consistency
            == "atomic"
        )
        assert (
            build_parser().parse_args(["sweep", "--consistency", "regular"]).consistency
            == "regular"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--consistency", "sequential"])

    def test_membership_flags(self):
        assert build_parser().parse_args(["run"]).membership is None
        assert build_parser().parse_args(["sweep"]).membership is None
        assert (
            build_parser().parse_args(["run", "--membership", "churn"]).membership
            == "churn"
        )
        assert (
            build_parser().parse_args(["sweep", "--membership", "none"]).membership
            == "none"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--membership", "rolling"])

    def test_check_suite_includes_membership_cells(self):
        assert "membership-churn" in CHECK_SCENARIOS
        assert "membership-churn-atomic" in CHECK_SCENARIOS

    def test_membership_canary_is_check_exempt_but_registered(self):
        # The canary is deliberately broken (single-config transitions);
        # `repro check` must never run it as a green cell, but CI replays
        # it by name expecting red.
        assert "membership-canary" in SCENARIOS
        assert "membership-canary" not in CHECK_SCENARIOS

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.budget == 50 and args.seed == 0 and args.batch == 16
        assert args.horizon == 3000.0 and args.jobs is None
        assert args.corpus is None and not args.replay
        assert not args.no_shrink and not args.no_resync and not args.json

    def test_fuzz_options(self):
        args = build_parser().parse_args(
            ["fuzz", "--budget", "25", "--seed", "3", "--batch", "8",
             "--jobs", "2", "--horizon", "1200", "--corpus", "results/fuzz",
             "--no-shrink", "--no-resync", "--verbose", "--json"]
        )
        assert (args.budget, args.seed, args.batch, args.jobs) == (25, 3, 8, 2)
        assert args.horizon == 1200.0 and args.corpus == "results/fuzz"
        assert args.no_shrink and args.no_resync and args.verbose and args.json

    def test_fuzz_broken_transition_flag(self):
        assert not build_parser().parse_args(["fuzz"]).broken_transition
        assert build_parser().parse_args(
            ["fuzz", "--broken-transition"]
        ).broken_transition

    def test_fuzz_cell_is_check_exempt_but_registered(self):
        # The fuzzer audits the genome space itself; `repro check` must
        # not re-run an unpinned grid over it, but the factory has to be
        # registry-resolvable for pinned repros to replay.
        assert "fuzz-cell" in SCENARIOS
        assert "fuzz-cell" not in CHECK_SCENARIOS


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in out
        for name in SCENARIOS:
            assert name in out

    def test_run_nominal(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal", "--seed", "1",
             "--n", "3", "--horizon", "1500", "--timeline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stabilized: True" in out
        assert "leadership timeline" in out
        assert "forever writers" in out

    def test_run_exit_code_on_non_stabilizing(self, capsys):
        code = main(
            ["run", "--algorithm", "baseline", "--scenario", "awb-only", "--seed", "2",
             "--n", "3", "--horizon", "800"]
        )
        # Short horizon: the baseline may or may not settle; the exit
        # code must reflect the printed verdict either way.
        out = capsys.readouterr().out
        assert ("stabilized: True" in out) == (code == 0)

    def test_check_audits_and_reports_results_dir(self, capsys, tmp_path):
        # A single fast cell through the real engine path: the property
        # table, the violation count and the resolved cache dir must all
        # be reported.  (The full adversarial suite runs in CI.)
        code = main(
            ["check", "--algorithms", "alg1", "--scenarios", "leader-crash",
             "--seeds", "0", "--jobs", "1", "--results-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "T1 leadership" in out and "T4 write-optimal" in out
        assert "0 violation(s)" in out
        assert f"results dir: {tmp_path.resolve()}" in out

    def test_sweep_runs_grid(self, capsys, tmp_path):
        argv = ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
                "--seeds", "0", "1", "--n", "3", "--horizon", "1500",
                "--jobs", "2", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "nominal-n3" in out
        assert "2 executed" in out and "0 from cache" in out
        # Second invocation of the same spec is served from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "2 from cache" in out

    def test_sweep_shard_splits_and_resumes(self, capsys, tmp_path):
        base = ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
                "--seeds", "0", "1", "2", "--n", "3", "--horizon", "1000",
                "--jobs", "1", "--results-dir", str(tmp_path)]
        assert main(base + ["--shard", "1/2"]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2: cells 1..2 of 3" in out
        assert "2 executed" in out
        assert main(base + ["--shard", "2/2"]) == 0
        out = capsys.readouterr().out
        assert "shard 2/2: cells 3..3 of 3" in out
        # The unsharded sweep is now fully served from the shared cache.
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "3 from cache" in out

    def test_sweep_in_process_shards(self, capsys, tmp_path):
        assert main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "1", "--n", "3", "--horizon", "1000",
             "--jobs", "1", "--shards", "2", "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "in-process shards: 2" in out
        assert "2 executed" in out

    def test_sweep_shard_malformed_is_friendly(self, capsys):
        assert main(["sweep", "--shard", "nope"]) == 2
        err = capsys.readouterr().err
        assert "shard must look like 'K/N'" in err

    def test_sweep_shard_out_of_range_is_friendly(self, capsys):
        assert main(["sweep", "--shard", "3/2"]) == 2
        err = capsys.readouterr().err
        assert "out of range" in err

    def test_sweep_shard_conflicts_with_shards(self, capsys):
        assert main(["sweep", "--shard", "1/2", "--shards", "2"]) == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_sweep_memory_emulated(self, capsys, tmp_path):
        assert main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "--n", "3", "--horizon", "1000",
             "--memory", "emulated", "--jobs", "1", "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out

    def test_run_memory_override(self, capsys):
        assert main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal", "--seed", "0",
             "--n", "3", "--horizon", "1000", "--memory", "emulated"]
        ) == 0
        out = capsys.readouterr().out
        assert "emulated memory" in out and "stabilized: True" in out

    def test_run_memory_conflict_is_friendly(self, capsys):
        # The SAN scenario uses the disk model; forcing the emulated
        # backend on top must produce a CLI error, not a traceback.
        code = main(["run", "--scenario", "san", "--memory", "emulated"])
        captured = capsys.readouterr()
        assert code == 2
        assert "repro run: error:" in captured.err and "pick one" in captured.err

    def test_run_atomic_scenario_prints_audit(self, capsys):
        assert main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal-emulated-atomic",
             "--seed", "0", "--n", "3", "--horizon", "1500"]
        ) == 0
        out = capsys.readouterr().out
        assert "atomic reads" in out
        assert "consistency audit: consistent:" in out

    def test_run_consistency_override_on_emulated(self, capsys):
        assert main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal", "--seed", "0",
             "--n", "3", "--horizon", "1000", "--memory", "emulated",
             "--consistency", "atomic"]
        ) == 0
        out = capsys.readouterr().out
        assert "emulated memory, atomic reads" in out

    def test_run_consistency_on_shared_is_friendly(self, capsys):
        code = main(["run", "--scenario", "nominal", "--consistency", "atomic"])
        captured = capsys.readouterr()
        assert code == 2
        assert "emulated-backend axis" in captured.err

    def test_sweep_consistency_on_shared_grid_is_friendly(self, capsys):
        code = main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "--consistency", "atomic"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "emulated-backend axis" in captured.err

    def test_sweep_consistency_on_emulated_grid(self, capsys, tmp_path):
        assert main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal-emulated",
             "--seeds", "0", "--n", "3", "--horizon", "1000",
             "--consistency", "atomic", "--jobs", "1",
             "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out

    def test_check_counts_consistency_audited_cells(self, capsys, tmp_path):
        code = main(
            ["check", "--algorithms", "alg1",
             "--scenarios", "nominal-emulated-atomic",
             "--seeds", "0", "--jobs", "1", "--results-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out
        assert "1 consistency-audited cell(s)" in out

    def test_sweep_reports_cell_failures(self, capsys, tmp_path):
        code = main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "--n", "1", "--horizon", "500",
             "--results-dir", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err

    def test_perf_writes_baseline_and_gates(self, capsys, tmp_path, monkeypatch):
        # Substitute a tiny deterministic profile so the CLI path is
        # exercised without multi-second benchmark workloads.
        from repro.perf.bench import bench_kernel_throughput

        def tiny_quick():
            return [bench_kernel_throughput(events=2_000, chains=2, repeats=1)]

        import repro.perf.bench as bench_mod

        monkeypatch.setitem(bench_mod.PROFILES, "quick", tiny_quick)
        out_path = tmp_path / "BENCH_perf.json"
        code = main(["perf", "--quick", "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.is_file()
        assert "kernel_events_per_sec" in out

        # Gating a fresh run against the file just written must pass...
        code = main(
            ["perf", "--quick", "--no-write", "--compare", str(out_path),
             "--max-regress", "99%"]
        )
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

        # ... and an impossible baseline must fail the gate.
        import json

        payload = json.loads(out_path.read_text())
        bench = payload["profiles"]["quick"]["benchmarks"]["kernel_events_per_sec"]
        bench["value"] = bench["value"] * 1e6
        out_path.write_text(json.dumps(payload))
        code = main(
            ["perf", "--quick", "--no-write", "--compare", str(out_path),
             "--max-regress", "15%"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "PERF REGRESSION" in captured.err

    def test_perf_compare_against_own_output_path_uses_pre_write_values(
        self, capsys, tmp_path, monkeypatch
    ):
        """The documented `perf --compare BENCH_perf.json` invocation:
        the baseline must be loaded before the output is written, so the
        gate never compares a run against itself."""
        import json

        from repro.perf.bench import bench_kernel_throughput
        import repro.perf.bench as bench_mod

        def tiny_quick():
            return [bench_kernel_throughput(events=2_000, chains=2, repeats=1)]

        monkeypatch.setitem(bench_mod.PROFILES, "quick", tiny_quick)
        out_path = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--quick", "--out", str(out_path)]) == 0
        capsys.readouterr()

        # Poison the committed baseline with an impossible value; gating
        # against the same path we write to must still fail.
        payload = json.loads(out_path.read_text())
        bench = payload["profiles"]["quick"]["benchmarks"]["kernel_events_per_sec"]
        bench["value"] *= 1e6
        out_path.write_text(json.dumps(payload))
        code = main(
            ["perf", "--quick", "--out", str(out_path), "--compare", str(out_path),
             "--max-regress", "15%", "--retries", "0"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "PERF REGRESSION" in captured.err

    def test_perf_quick_write_preserves_full_profile(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.perf.bench import bench_kernel_throughput
        import repro.perf.bench as bench_mod

        def tiny_quick():
            return [bench_kernel_throughput(events=2_000, chains=2, repeats=1)]

        monkeypatch.setitem(bench_mod.PROFILES, "quick", tiny_quick)
        out_path = tmp_path / "BENCH_perf.json"
        existing = {
            "format": 1,
            "kind": "repro-perf",
            "profiles": {
                "full": {
                    "benchmarks": {
                        "kernel_events_per_sec": {
                            "value": 123.0,
                            "unit": "events/s",
                            "higher_is_better": True,
                            "meta": {},
                        }
                    }
                }
            },
        }
        out_path.write_text(json.dumps(existing))
        assert main(["perf", "--quick", "--out", str(out_path)]) == 0
        capsys.readouterr()
        merged = json.loads(out_path.read_text())
        assert set(merged["profiles"]) == {"full", "quick"}
        assert (
            merged["profiles"]["full"]["benchmarks"]["kernel_events_per_sec"]["value"]
            == 123.0
        )

    def test_perf_rejects_bad_threshold(self, capsys):
        code = main(["perf", "--quick", "--no-write", "--max-regress", "abc"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_compare_table(self, capsys):
        code = main(
            ["compare", "--scenario", "nominal", "--algorithms", "alg1", "alg1-no-timer",
             "--seeds", "0", "--n", "3", "--horizon", "1500"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "alg1" in out and "alg1-no-timer" in out
        assert "forever writers" in out

    def test_run_membership_churn_override(self, capsys):
        assert main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal-emulated",
             "--seed", "0", "--n", "3", "--horizon", "4000",
             "--membership", "churn"]
        ) == 0
        out = capsys.readouterr().out
        assert "reconfiguration: 2 config(s) installed" in out
        assert "2 transfer round(s)" in out

    def test_run_membership_on_shared_is_friendly(self, capsys):
        code = main(["run", "--scenario", "nominal", "--membership", "churn"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--membership is an emulated-backend axis" in captured.err

    def test_run_membership_churn_scenario(self, capsys):
        assert main(
            ["run", "--algorithm", "alg1", "--scenario", "membership-churn",
             "--seed", "0", "--n", "3", "--horizon", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "reconfiguration: 2 config(s) installed" in out
        assert "consistency audit: consistent:" in out

    def test_run_membership_canary_exits_red(self, capsys):
        # The negative control: the broken single-config mode must turn
        # the history audit red and flip the exit code.
        code = main(
            ["run", "--algorithm", "alg1", "--scenario", "membership-canary",
             "--seed", "0", "--n", "3"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT consistent" in out

    def test_sweep_membership_on_shared_grid_is_friendly(self, capsys):
        code = main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "--membership", "churn"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--membership is an emulated-backend axis" in captured.err

    def test_sweep_membership_on_emulated_grid(self, capsys, tmp_path):
        assert main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal-emulated",
             "--seeds", "0", "--n", "3", "--horizon", "4000",
             "--membership", "churn", "--jobs", "1",
             "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out

    def test_fuzz_replay_requires_a_corpus(self, capsys):
        assert main(["fuzz", "--replay"]) == 2
        assert "--corpus" in capsys.readouterr().err

    def test_fuzz_smoke_run_reports_signatures(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        code = main(
            ["fuzz", "--budget", "4", "--batch", "4", "--jobs", "2",
             "--horizon", "900", "--corpus", str(corpus)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 genome(s) run: 0 violating genome(s)" in out
        assert (corpus / "coverage.json").is_file()
        # An immediate replay of an all-clean corpus has nothing pinned.
        assert main(["fuzz", "--replay", "--corpus", str(corpus)]) == 0
        assert "0 still red" in capsys.readouterr().out

    def test_fuzz_broken_transition_pins_the_membership_repro(self, capsys, tmp_path):
        # The membership negative oracle end to end: seeding the probe
        # under --broken-transition must catch, shrink and pin a
        # registry-replayable repro, mirroring --no-resync.
        corpus = tmp_path / "corpus"
        code = main(
            ["fuzz", "--budget", "1", "--batch", "1", "--jobs", "1",
             "--horizon", "900", "--broken-transition", "--corpus", str(corpus)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "BROKEN TRANSITIONS" in captured.out
        assert "1 violating genome(s)" in captured.out
        assert "pinned repro" in captured.err
        assert '"transition": "single-config"' in captured.err
        # The pinned repro stays red on replay until the mode is fixed.
        assert main(["fuzz", "--replay", "--corpus", str(corpus)]) == 1
        assert "1 still red" in capsys.readouterr().out
