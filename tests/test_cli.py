"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ALGORITHMS, CHECK_SCENARIOS, SCENARIOS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "alg1"
        assert args.scenario == "nominal"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "alg2", "--scenario", "san", "--seed", "9", "--n", "5"]
        )
        assert (args.algorithm, args.scenario, args.seed, args.n) == ("alg2", "san", 9, 5)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])

    def test_compare_seeds(self):
        args = build_parser().parse_args(["compare", "--seeds", "1", "2", "3"])
        assert args.seeds == [1, 2, 3]

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == ["nominal"]
        assert args.seeds == [0, 1]
        assert args.jobs is None and not args.no_cache

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "alg1", "alg2", "--scenarios", "nominal",
             "leader-crash", "--seeds", "0", "1", "2", "--jobs", "4", "--no-cache"]
        )
        assert args.algorithms == ["alg1", "alg2"]
        assert args.scenarios == ["nominal", "leader-crash"]
        assert args.jobs == 4 and args.no_cache

    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.algorithms == ["alg1", "alg2"]
        assert args.scenarios == CHECK_SCENARIOS
        assert len(args.scenarios) >= 6  # the adversarial suite
        assert args.seeds == [0]

    def test_check_scenarios_are_registered(self):
        for name in CHECK_SCENARIOS:
            assert name in SCENARIOS


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in out
        for name in SCENARIOS:
            assert name in out

    def test_run_nominal(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal", "--seed", "1",
             "--n", "3", "--horizon", "1500", "--timeline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stabilized: True" in out
        assert "leadership timeline" in out
        assert "forever writers" in out

    def test_run_exit_code_on_non_stabilizing(self, capsys):
        code = main(
            ["run", "--algorithm", "baseline", "--scenario", "awb-only", "--seed", "2",
             "--n", "3", "--horizon", "800"]
        )
        # Short horizon: the baseline may or may not settle; the exit
        # code must reflect the printed verdict either way.
        out = capsys.readouterr().out
        assert ("stabilized: True" in out) == (code == 0)

    def test_check_audits_and_reports_results_dir(self, capsys, tmp_path):
        # A single fast cell through the real engine path: the property
        # table, the violation count and the resolved cache dir must all
        # be reported.  (The full adversarial suite runs in CI.)
        code = main(
            ["check", "--algorithms", "alg1", "--scenarios", "leader-crash",
             "--seeds", "0", "--jobs", "1", "--results-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "T1 leadership" in out and "T4 write-optimal" in out
        assert "0 violation(s)" in out
        assert f"results dir: {tmp_path.resolve()}" in out

    def test_sweep_runs_grid(self, capsys, tmp_path):
        argv = ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
                "--seeds", "0", "1", "--n", "3", "--horizon", "1500",
                "--jobs", "2", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "nominal-n3" in out
        assert "2 executed" in out and "0 from cache" in out
        # Second invocation of the same spec is served from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "2 from cache" in out

    def test_sweep_reports_cell_failures(self, capsys, tmp_path):
        code = main(
            ["sweep", "--algorithms", "alg1", "--scenarios", "nominal",
             "--seeds", "0", "--n", "1", "--horizon", "500",
             "--results-dir", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err

    def test_compare_table(self, capsys):
        code = main(
            ["compare", "--scenario", "nominal", "--algorithms", "alg1", "alg1-no-timer",
             "--seeds", "0", "--n", "3", "--horizon", "1500"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "alg1" in out and "alg1-no-timer" in out
        assert "forever writers" in out
