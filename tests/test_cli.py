"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ALGORITHMS, SCENARIOS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "alg1"
        assert args.scenario == "nominal"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "alg2", "--scenario", "san", "--seed", "9", "--n", "5"]
        )
        assert (args.algorithm, args.scenario, args.seed, args.n) == ("alg2", "san", 9, 5)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])

    def test_compare_seeds(self):
        args = build_parser().parse_args(["compare", "--seeds", "1", "2", "3"])
        assert args.seeds == [1, 2, 3]


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALGORITHMS:
            assert name in out
        for name in SCENARIOS:
            assert name in out

    def test_run_nominal(self, capsys):
        code = main(
            ["run", "--algorithm", "alg1", "--scenario", "nominal", "--seed", "1",
             "--n", "3", "--horizon", "1500", "--timeline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stabilized: True" in out
        assert "leadership timeline" in out
        assert "forever writers" in out

    def test_run_exit_code_on_non_stabilizing(self, capsys):
        code = main(
            ["run", "--algorithm", "baseline", "--scenario", "awb-only", "--seed", "2",
             "--n", "3", "--horizon", "800"]
        )
        # Short horizon: the baseline may or may not settle; the exit
        # code must reflect the printed verdict either way.
        out = capsys.readouterr().out
        assert ("stabilized: True" in out) == (code == 0)

    def test_compare_table(self, capsys):
        code = main(
            ["compare", "--scenario", "nominal", "--algorithms", "alg1", "alg1-no-timer",
             "--seeds", "0", "--n", "3", "--horizon", "1500"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "alg1" in out and "alg1-no-timer" in out
        assert "forever writers" in out
