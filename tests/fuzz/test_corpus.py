"""Corpus persistence: write-through files, idempotent reloads."""

from __future__ import annotations

import json

from repro.faults.plan import FaultEvent
from repro.fuzz.corpus import Corpus
from repro.fuzz.coverage import TraceFeatureMap
from repro.fuzz.genome import BASELINE_GENOME, ScenarioGenome

FAULTED = ScenarioGenome(
    backend="emulated",
    fault_plan=(
        FaultEvent(kind="replica-crash", at=100.0, replica=1),
        FaultEvent(kind="replica-recover", at=300.0, replica=1),
    ),
)


class TestInMemory:
    def test_rootless_corpus_never_touches_disk(self):
        corpus = Corpus(None)
        corpus.add_genome(BASELINE_GENOME)
        corpus.save_coverage(3000.0)  # must be a no-op, not a crash
        assert corpus.members() == [BASELINE_GENOME]

    def test_members_are_key_sorted(self):
        corpus = Corpus(None)
        genomes = [BASELINE_GENOME, FAULTED, ScenarioGenome(n=5)]
        for g in genomes:
            corpus.add_genome(g)
        assert [g.key() for g in corpus.members()] == sorted(g.key() for g in genomes)

    def test_add_genome_is_idempotent(self):
        corpus = Corpus(None)
        corpus.add_genome(BASELINE_GENOME)
        corpus.add_genome(BASELINE_GENOME)
        assert len(corpus.genomes) == 1


class TestPersistence:
    def test_round_trip_through_a_directory(self, tmp_path):
        root = tmp_path / "corpus"
        corpus = Corpus(root)
        corpus.add_genome(BASELINE_GENOME)
        corpus.add_genome(FAULTED)
        corpus.coverage = TraceFeatureMap({"stabilized=True": 3})
        corpus.add_regression(FAULTED, {"factory": "fuzz-cell", "kwargs": {}})
        corpus.save_coverage(3000.0)

        loaded = Corpus.load(root)
        assert loaded.members() == corpus.members()
        assert loaded.coverage.keys() == corpus.coverage.keys()
        assert loaded.coverage.hits("stabilized=True") == 3
        assert loaded.regression_items() == corpus.regression_items()

    def test_missing_directory_loads_fresh(self, tmp_path):
        corpus = Corpus.load(tmp_path / "nope")
        assert corpus.members() == []
        assert len(corpus.coverage) == 0

    def test_files_are_content_addressed_and_canonical(self, tmp_path):
        root = tmp_path / "corpus"
        Corpus(root).add_genome(FAULTED)
        path = root / "genomes" / f"{FAULTED.key()}.json"
        assert path.is_file()
        payload = json.loads(path.read_text())
        assert ScenarioGenome.from_jsonable(payload) == FAULTED
        # Canonical bytes: rewriting the same genome changes nothing.
        before = path.read_bytes()
        Corpus.load(root).add_genome(FAULTED)
        assert path.read_bytes() == before

    def test_coverage_file_carries_the_base_horizon(self, tmp_path):
        root = tmp_path / "corpus"
        corpus = Corpus(root)
        corpus.save_coverage(1200.0)
        payload = json.loads((root / "coverage.json").read_text())
        assert payload["base_horizon"] == 1200.0
        assert payload["format"] == 1
