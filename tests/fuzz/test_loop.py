"""The fuzz loop end to end: determinism, the negative control, replay.

The satellite acceptance bars live here:

* same ``(seed, corpus)`` -> byte-identical genome sequence and
  coverage map, in-process and across ``REPRO_KERNEL`` variants;
* the deliberately broken recover-without-resync emulation is caught,
  shrunk to a mutation-minimal genome (complexity <= 6) and pinned as a
  registry-replayable regression that stays red until fixed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.faults.campaign import violation_count
from repro.fuzz.corpus import Corpus
from repro.fuzz.loop import (
    FuzzConfig,
    amnesia_probe,
    membership_probe,
    replay_genome,
    replay_regressions,
    run_fuzz,
)
from repro.workloads.registry import ALGORITHMS, build_scenario

REPO = Path(__file__).resolve().parents[2]

#: Small enough for test wall-clock, large enough to reach >= 3
#: signatures and exercise batching.
QUICK = dict(seed=0, budget=6, batch=6, jobs=2, horizon=900.0)


def quick_config(**overrides) -> FuzzConfig:
    return FuzzConfig(**{**QUICK, **overrides})


def fingerprint(result, corpus_dir: Path) -> dict:
    corpus = Corpus.load(corpus_dir)
    return {
        "result": result.to_jsonable(),
        "genomes": sorted(corpus.genomes),
        "coverage": corpus.coverage.keys(),
    }


class TestDeterminism:
    def test_same_seed_same_sequence_and_coverage(self, tmp_path):
        a = run_fuzz(quick_config(), corpus_dir=tmp_path / "a")
        b = run_fuzz(quick_config(), corpus_dir=tmp_path / "b")
        assert json.dumps(fingerprint(a, tmp_path / "a"), sort_keys=True) == json.dumps(
            fingerprint(b, tmp_path / "b"), sort_keys=True
        )
        assert a.genomes_run == QUICK["budget"]
        assert a.total_signatures >= 3

    def test_kernel_variants_agree_byte_for_byte(self, tmp_path):
        """REPRO_KERNEL=python and =compiled produce identical fuzz runs
        (with no built extension the compiled variant falls back, which
        must be equally deterministic)."""
        probe = (
            "import json, sys\n"
            "from pathlib import Path\n"
            "from repro.fuzz.corpus import Corpus\n"
            "from repro.fuzz.loop import FuzzConfig, run_fuzz\n"
            "root = Path(sys.argv[1])\n"
            "result = run_fuzz(FuzzConfig(seed=3, budget=4, batch=4, jobs=2, "
            "horizon=900.0), corpus_dir=root)\n"
            "corpus = Corpus.load(root)\n"
            "print(json.dumps({'result': result.to_jsonable(), "
            "'genomes': sorted(corpus.genomes), "
            "'coverage': corpus.coverage.keys()}, sort_keys=True))\n"
        )
        outputs = {}
        for variant in ("python", "compiled"):
            env = {**os.environ, "REPRO_KERNEL": variant,
                   "PYTHONPATH": str(REPO / "src")}
            proc = subprocess.run(
                [sys.executable, "-c", probe, str(tmp_path / variant)],
                capture_output=True, text=True, timeout=600, env=env, cwd=REPO,
            )
            assert proc.returncode == 0, proc.stderr
            outputs[variant] = proc.stdout
        assert outputs["python"] == outputs["compiled"]

    def test_corpus_reload_skips_already_seen_genomes(self, tmp_path):
        root = tmp_path / "corpus"
        first = run_fuzz(quick_config(), corpus_dir=root)
        second = run_fuzz(quick_config(budget=4), corpus_dir=root)
        assert second.total_signatures >= first.total_signatures
        # The reloaded corpus seeds the dedup set, so the second run
        # explores fresh genomes instead of re-running the corpus.
        assert second.genomes_run == 4
        assert len(Corpus.load(root).genomes) >= first.corpus_size


class TestNegativeControl:
    def test_amnesia_probe_caught_shrunk_and_pinned(self, tmp_path):
        root = tmp_path / "corpus"
        probe = amnesia_probe(QUICK["horizon"])
        config = quick_config(budget=1, resync=False)
        result = run_fuzz(config, corpus_dir=root, initial=[probe])
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.violations > 0
        # Acceptance bar: the pinned repro is <= 6 mutation steps out.
        assert violation.shrunk is not None
        assert violation.shrunk.complexity() <= 6
        assert violation.oracle_runs > 0
        # Pinned payload is engine-ready and the corpus persisted it.
        assert violation.repro["factory"] == "fuzz-cell"
        assert violation.repro["kwargs"]["resync"] is False
        assert Corpus.load(root).regression_items()

    def test_pinned_regression_replays_red_through_the_registry(self, tmp_path):
        root = tmp_path / "corpus"
        probe = amnesia_probe(QUICK["horizon"])
        run_fuzz(quick_config(budget=1, resync=False), corpus_dir=root, initial=[probe])
        rows = replay_regressions(root)
        assert rows and all(count > 0 for _, _, count in rows)
        # ... and directly through build_scenario, the long-way round.
        _key, payload, _count = rows[0]
        scenario = build_scenario(payload["factory"], payload["kwargs"])
        run = scenario.run(
            ALGORITHMS[payload["algorithm"]],
            seed=payload["seed"],
            log_reads=False,
            trace_events=False,
        )
        audit = run.audit_consistency()
        assert audit is not None and len(audit.violations) > 0

    def test_fixed_emulation_replays_the_regression_clean(self, tmp_path):
        # "The fix" for the pinned regression is turning resync back on:
        # the same cell kwargs with a correct emulation run violation-free.
        root = tmp_path / "corpus"
        probe = amnesia_probe(QUICK["horizon"])
        run_fuzz(quick_config(budget=1, resync=False), corpus_dir=root, initial=[probe])
        _key, payload, _count = replay_regressions(root)[0]
        fixed = dict(payload["kwargs"], resync=True)
        scenario = build_scenario(payload["factory"], fixed)
        run = scenario.run(
            ALGORITHMS[payload["algorithm"]],
            seed=payload["seed"],
            log_reads=False,
            trace_events=False,
        )
        summary = run.summarize(
            scenario_name=scenario.name,
            margin=scenario.margin,
            assumption=scenario.assumption,
        )
        assert violation_count(summary) == 0

    def test_probe_is_clean_on_the_correct_emulation(self):
        # The canary genome itself carries no violation -- only the
        # broken resync mode does (so fuzz runs on a clean tree can
        # mutate onto fault plans without tripping the oracle).
        summary = replay_genome(amnesia_probe(QUICK["horizon"]), quick_config())
        assert violation_count(summary) == 0


class TestMembershipNegativeControl:
    """The ``--broken-transition`` canary: single-config reconfiguration
    must be caught, shrunk and pinned exactly like the resync one."""

    def test_membership_probe_caught_shrunk_and_pinned(self, tmp_path):
        root = tmp_path / "corpus"
        probe = membership_probe(QUICK["horizon"])
        config = quick_config(budget=1, transition="single-config")
        result = run_fuzz(config, corpus_dir=root, initial=[probe])
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.violations > 0
        # Acceptance bar: the pinned repro is <= 6 mutation steps out.
        assert violation.shrunk is not None
        assert violation.shrunk.complexity() <= 6
        # Both timelines survive shrinking: the crash of the last
        # original member AND the full-turnover plan are load-bearing.
        assert violation.shrunk.membership_plan != ()
        assert violation.shrunk.fault_plan != ()
        assert violation.oracle_runs > 0
        # Pinned payload is engine-ready and the corpus persisted it.
        assert violation.repro["factory"] == "fuzz-cell"
        assert violation.repro["kwargs"]["transition"] == "single-config"
        assert violation.repro["kwargs"]["membership"]
        assert Corpus.load(root).regression_items()

    def test_pinned_membership_regression_replays_red_through_the_registry(
        self, tmp_path
    ):
        root = tmp_path / "corpus"
        probe = membership_probe(QUICK["horizon"])
        run_fuzz(
            quick_config(budget=1, transition="single-config"),
            corpus_dir=root,
            initial=[probe],
        )
        rows = replay_regressions(root)
        assert rows and all(count > 0 for _, _, count in rows)
        # ... and directly through build_scenario, the long-way round.
        _key, payload, _count = rows[0]
        scenario = build_scenario(payload["factory"], payload["kwargs"])
        run = scenario.run(
            ALGORITHMS[payload["algorithm"]],
            seed=payload["seed"],
            log_reads=False,
            trace_events=False,
        )
        audit = run.audit_consistency()
        assert audit is not None and len(audit.violations) > 0

    def test_dual_quorum_replays_the_membership_regression_clean(self, tmp_path):
        # "The fix" is restoring dual-quorum windows: the same cell
        # kwargs with a correct transition mode run violation-free.
        root = tmp_path / "corpus"
        probe = membership_probe(QUICK["horizon"])
        run_fuzz(
            quick_config(budget=1, transition="single-config"),
            corpus_dir=root,
            initial=[probe],
        )
        _key, payload, _count = replay_regressions(root)[0]
        fixed = dict(payload["kwargs"], transition="dual-quorum")
        scenario = build_scenario(payload["factory"], fixed)
        run = scenario.run(
            ALGORITHMS[payload["algorithm"]],
            seed=payload["seed"],
            log_reads=False,
            trace_events=False,
        )
        summary = run.summarize(
            scenario_name=scenario.name,
            margin=scenario.margin,
            assumption=scenario.assumption,
        )
        assert violation_count(summary) == 0

    def test_membership_probe_is_clean_on_the_correct_emulation(self):
        # The probe genome carries no violation of its own -- only the
        # broken transition mode does (so clean-tree fuzz runs can
        # mutate onto membership plans without tripping the oracle).
        summary = replay_genome(membership_probe(QUICK["horizon"]), quick_config())
        assert violation_count(summary) == 0
        assert summary.configs_installed > 0
        assert summary.transfer_rounds > 0

    def test_membership_counters_reach_the_coverage_signature(self):
        # The new counters are real coverage features: a churned run and
        # a static run land in different signatures.
        from repro.fuzz.coverage import signature

        churned = dict(signature(replay_genome(membership_probe(QUICK["horizon"]),
                                               quick_config())))
        static = dict(signature(replay_genome(
            amnesia_probe(QUICK["horizon"]), quick_config())))
        assert churned["configs_installed"] > 0
        assert static["configs_installed"] == 0
        assert churned["transfer_rounds"] > 0
