"""ScenarioGenome: validation, derived horizons, JSON round trips."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultEvent
from repro.memory.membership import MembershipEvent
from repro.fuzz.genome import (
    BASELINE_GENOME,
    GENOME_ALGORITHMS,
    GENOME_BACKENDS,
    GENOME_CONSISTENCY,
    GENOME_CRASHES,
    GENOME_DELAYS,
    GENOME_LINKS,
    GENOME_NS,
    GENOME_REPLICAS,
    ScenarioGenome,
)
from repro.fuzz.mutate import random_genome

PAIR = (
    FaultEvent(kind="replica-crash", at=100.0, replica=1),
    FaultEvent(kind="replica-recover", at=300.0, replica=1),
)

CHURN = (
    MembershipEvent(kind="join", at=400.0, replica=3),
    MembershipEvent(kind="leave", at=800.0, replica=0),
)


class TestValidation:
    def test_baseline_is_the_default(self):
        assert BASELINE_GENOME == ScenarioGenome()
        assert BASELINE_GENOME.complexity() == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"algorithm": "alg2"},  # excluded: needs ~10x the horizon
            {"backend": "virtual"},
            {"n": 6},
            {"delay": "corrupted"},
            {"crash": "all"},
            {"replicas": 4},  # even replica counts are off-vocabulary
            {"links": "corruption"},  # the known-negative adversary
            {"consistency": "causal"},
        ],
    )
    def test_off_vocabulary_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioGenome(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 5},
            {"links": "lossy"},
            {"consistency": "atomic"},
            {"fault_plan": PAIR},
            {"resync": False},
            {"membership_plan": CHURN},
            {"transition": "single-config"},
        ],
    )
    def test_shared_backend_forces_emulated_axes_to_baseline(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioGenome(backend="shared", **kwargs)
        ScenarioGenome(backend="emulated", **kwargs)  # legal there

    def test_fault_plans_require_the_sync_fabric(self):
        with pytest.raises(ValueError):
            ScenarioGenome(backend="emulated", links="lossy", fault_plan=PAIR)

    def test_membership_plans_require_the_sync_fabric(self):
        with pytest.raises(ValueError):
            ScenarioGenome(backend="emulated", links="lossy", membership_plan=CHURN)

    def test_membership_plan_validated_against_replicas(self):
        # A join of replica 3 is out of order when 5 replicas exist.
        with pytest.raises(ValueError):
            ScenarioGenome(backend="emulated", replicas=5, membership_plan=CHURN)
        ScenarioGenome(backend="emulated", replicas=3, membership_plan=CHURN)

    def test_off_vocabulary_transition_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGenome(backend="emulated", transition="triple-config")

    def test_fault_plan_replica_indices_validated(self):
        storm = (
            FaultEvent(kind="replica-crash", at=50.0, replica=4),
            FaultEvent(kind="replica-recover", at=90.0, replica=4),
        )
        with pytest.raises(ValueError):
            ScenarioGenome(backend="emulated", replicas=3, fault_plan=storm)
        ScenarioGenome(backend="emulated", replicas=5, fault_plan=storm)


class TestDerivedHorizon:
    def test_shared_runs_at_the_base(self):
        assert BASELINE_GENOME.horizon(3000.0) == 3000.0

    def test_substrate_axes_scale_up_monotonically(self):
        emulated = ScenarioGenome(backend="emulated")
        lossy = ScenarioGenome(backend="emulated", links="lossy")
        atomic = ScenarioGenome(backend="emulated", links="lossy", consistency="atomic")
        horizons = [g.horizon(3000.0) for g in (BASELINE_GENOME, emulated, lossy, atomic)]
        assert horizons == sorted(horizons)
        assert len(set(horizons)) == len(horizons)

    def test_kwargs_carry_the_derived_horizon(self):
        g = ScenarioGenome(backend="emulated", consistency="atomic")
        kwargs = g.scenario_kwargs(2000.0)
        assert kwargs["horizon"] == g.horizon(2000.0)
        assert kwargs["plan"] is None


class TestComplexity:
    def test_axis_steps_count_once_each(self):
        g = ScenarioGenome(algorithm="alg1-nwnr", n=5, delay="bursts")
        assert g.complexity() == 3

    def test_fault_groups_count_as_steps(self):
        g = ScenarioGenome(backend="emulated", fault_plan=PAIR)
        assert g.complexity() == 2  # backend step + one crash/recover group

    def test_membership_plan_counts_as_one_step(self):
        g = ScenarioGenome(backend="emulated", membership_plan=CHURN)
        assert g.complexity() == 2  # backend step + the membership axis

    def test_membership_kwargs_carry_plan_and_transition(self):
        g = ScenarioGenome(
            backend="emulated", membership_plan=CHURN, transition="single-config"
        )
        kwargs = g.scenario_kwargs(2000.0)
        assert kwargs["membership"] == [ev.to_jsonable() for ev in CHURN]
        assert kwargs["transition"] == "single-config"
        assert BASELINE_GENOME.scenario_kwargs(2000.0)["membership"] is None


class TestRoundTrip:
    def test_unknown_keys_rejected(self):
        payload = BASELINE_GENOME.to_jsonable()
        payload["timer"] = "exp"
        with pytest.raises(ValueError):
            ScenarioGenome.from_jsonable(payload)

    def test_plan_survives_the_round_trip(self):
        g = ScenarioGenome(backend="emulated", fault_plan=PAIR, resync=False)
        assert ScenarioGenome.from_jsonable(g.to_jsonable()) == g

    def test_membership_plan_survives_the_round_trip(self):
        g = ScenarioGenome(
            backend="emulated", membership_plan=CHURN, transition="single-config"
        )
        clone = ScenarioGenome.from_jsonable(g.to_jsonable())
        assert clone == g and clone.key() == g.key()

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_reachable_genome_round_trips(self, seed):
        g = random_genome(random.Random(seed), max_mutations=6)
        clone = ScenarioGenome.from_jsonable(g.to_jsonable())
        assert clone == g
        assert clone.key() == g.key()
        assert clone.scenario_kwargs() == g.scenario_kwargs()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_vocabularies_are_closed_under_mutation(self, seed):
        g = random_genome(random.Random(seed), max_mutations=8)
        assert g.algorithm in GENOME_ALGORITHMS
        assert g.backend in GENOME_BACKENDS
        assert g.n in GENOME_NS
        assert g.delay in GENOME_DELAYS
        assert g.crash in GENOME_CRASHES
        assert g.replicas in GENOME_REPLICAS
        assert g.links in GENOME_LINKS
        assert g.consistency in GENOME_CONSISTENCY
