"""Trace-feature signatures and the AFL-style coverage map."""

from __future__ import annotations

from repro.engine.summary import RunSummary
from repro.fuzz.coverage import (
    SMALL_COUNT_CAP,
    TraceFeatureMap,
    bucket,
    signature,
    signature_key,
)


def summary(**overrides) -> RunSummary:
    base = dict(
        algorithm="alg1",
        scenario="fuzz-shared-uniform-none-n3",
        seed=0,
        n=3,
        horizon=3000.0,
        stabilized=True,
        stabilization_time=400.0,
        leader=1,
        valid=True,
        termination_ok=True,
        forever_writer_count=1,
        forever_writers=frozenset({1}),
        growing_register_count=0,
        single_writer=True,
        total_writes=10,
        total_reads=20,
    )
    base.update(overrides)
    return RunSummary(**base)


class TestBucket:
    def test_log2_buckets(self):
        assert [bucket(v) for v in (0, 1, 2, 3, 4, 7, 8, 1023)] == [
            0, 1, 2, 2, 3, 3, 4, 10,
        ]

    def test_negative_counters_clamp_to_zero(self):
        assert bucket(-5) == 0


class TestSignature:
    def test_features_are_behavioural_not_configurational(self):
        # Backend/consistency echoes must not create fake novelty: two
        # runs that behave identically share a signature even when one
        # is emulated and the other shared.
        a = summary(memory_backend="shared", consistency="regular")
        b = summary(memory_backend="emulated", consistency="atomic")
        assert signature(a) == signature(b)

    def test_churn_is_bucketed_not_exact(self):
        assert signature(summary(leader_changes=4)) == signature(
            summary(leader_changes=7)
        )
        assert signature(summary(leader_changes=4)) != signature(
            summary(leader_changes=8)
        )

    def test_never_stabilized_gets_its_own_decile(self):
        sig = dict(signature(summary(stabilized=False, stabilization_time=None)))
        assert sig["stab_decile"] == -1

    def test_small_counters_cap(self):
        assert signature(summary(recoveries=SMALL_COUNT_CAP)) == signature(
            summary(recoveries=SMALL_COUNT_CAP + 3)
        )

    def test_key_is_stable_and_readable(self):
        key = signature_key(signature(summary()))
        assert key.startswith("stabilized=True|")
        assert "churn=" in key


class TestTraceFeatureMap:
    def test_observe_reports_novelty_once(self):
        cov = TraceFeatureMap()
        sig = signature(summary())
        assert cov.observe(sig) is True
        assert cov.observe(sig) is False
        assert len(cov) == 1
        assert cov.hits(signature_key(sig)) == 2

    def test_round_trip_preserves_hits(self):
        cov = TraceFeatureMap()
        cov.observe(signature(summary()))
        cov.observe(signature(summary(leader_changes=9)))
        clone = TraceFeatureMap.from_jsonable(cov.to_jsonable())
        assert clone.keys() == cov.keys()
        assert all(clone.hits(k) == cov.hits(k) for k in cov.keys())
