"""Genome shrinking with synthetic (no-simulation) oracles."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults.plan import FaultEvent
from repro.fuzz.genome import BASELINE_GENOME, ScenarioGenome
from repro.fuzz.shrink import shrink_genome

PAIR_A = (
    FaultEvent(kind="replica-crash", at=100.0, replica=1),
    FaultEvent(kind="replica-recover", at=300.0, replica=1),
)
PAIR_B = (
    FaultEvent(kind="replica-crash", at=500.0, replica=0),
    FaultEvent(kind="replica-recover", at=700.0, replica=0),
)


class TestAxisReduction:
    def test_irrelevant_axes_are_stripped(self):
        # The "bug" only needs the bursts delay; everything else piled on
        # by mutation must shrink away.
        start = ScenarioGenome(
            algorithm="alg1-nwnr", n=5, delay="bursts", crash="leader"
        )
        result = shrink_genome(start, lambda g: g.delay == "bursts")
        assert result.genome == ScenarioGenome(delay="bursts")
        assert result.genome.complexity() == 1
        assert result.oracle_runs > 0

    def test_conjunction_of_axes_is_kept(self):
        start = ScenarioGenome(delay="bursts", crash="leader", n=4)
        result = shrink_genome(
            start, lambda g: g.delay == "bursts" and g.crash == "leader"
        )
        assert result.genome == ScenarioGenome(delay="bursts", crash="leader")
        assert result.genome.complexity() == 2

    def test_backend_collapse_requires_baseline_emulated_axes(self):
        # A violation independent of the backend must shrink all the way
        # back to the shared baseline -- including the big collapse step.
        start = ScenarioGenome(
            backend="emulated", replicas=5, consistency="atomic", crash="leader"
        )
        result = shrink_genome(start, lambda g: g.crash == "leader")
        assert result.genome == ScenarioGenome(crash="leader")

    def test_emulated_only_violation_keeps_the_backend(self):
        start = ScenarioGenome(backend="emulated", links="lossy", n=4)
        result = shrink_genome(start, lambda g: g.backend == "emulated")
        assert result.genome == ScenarioGenome(backend="emulated")
        assert result.genome.complexity() == 1


class TestFaultPlanStage:
    def test_plan_free_violation_drops_the_whole_timeline(self):
        start = ScenarioGenome(backend="emulated", fault_plan=PAIR_A + PAIR_B)
        result = shrink_genome(start, lambda g: g.backend == "emulated")
        assert result.genome.fault_plan == ()
        assert "faults->()" in result.steps

    def test_needed_group_survives_ddmin(self):
        def needs_pair_a(g: ScenarioGenome) -> bool:
            return g.backend == "emulated" and PAIR_A[0] in g.fault_plan

        start = ScenarioGenome(backend="emulated", fault_plan=PAIR_A + PAIR_B)
        result = shrink_genome(start, needs_pair_a)
        assert result.genome.fault_plan == PAIR_A
        assert result.genome.complexity() == 2

    def test_resync_reduces_first_when_irrelevant(self):
        start = ScenarioGenome(backend="emulated", resync=False, fault_plan=PAIR_A)
        result = shrink_genome(start, lambda g: g.backend == "emulated")
        assert result.genome == ScenarioGenome(backend="emulated")

    def test_broken_resync_is_kept_when_it_carries_the_violation(self):
        def amnesia(g: ScenarioGenome) -> bool:
            return not g.resync and bool(g.fault_plan)

        start = ScenarioGenome(
            backend="emulated", resync=False, fault_plan=PAIR_A + PAIR_B, n=4
        )
        result = shrink_genome(start, amnesia)
        assert result.genome.resync is False
        assert result.genome.n == 3  # the irrelevant axis still reduced
        assert len(result.genome.fault_plan) == 2  # one group survived


class TestBudget:
    def test_oracle_budget_is_respected(self):
        calls = []

        def oracle(g: ScenarioGenome) -> bool:
            calls.append(g)
            return True

        start = ScenarioGenome(
            backend="emulated", replicas=5, consistency="atomic",
            delay="bursts", crash="leader", n=5, fault_plan=PAIR_A,
        )
        result = shrink_genome(start, oracle, max_oracle_runs=3)
        assert result.oracle_runs <= 3 + 1  # the ddmin stage may finish its probe
        assert len(calls) == result.oracle_runs

    def test_shrunk_genome_always_violates(self):
        # 1-minimality contract: the result itself passed the oracle.
        witnessed = []

        def oracle(g: ScenarioGenome) -> bool:
            ok = g.delay == "bursts"
            if ok:
                witnessed.append(g)
            return ok

        start = ScenarioGenome(delay="bursts", crash="minority-cascade", n=4)
        result = shrink_genome(start, oracle)
        assert result.genome in witnessed


@pytest.mark.parametrize("axis", ["delay", "crash", "n", "algorithm"])
def test_single_axis_violations_shrink_to_complexity_one(axis):
    values = {"delay": "gst-ramp", "crash": "leader", "n": 5, "algorithm": "alg1-no-timer"}
    minimal = ScenarioGenome(**{axis: values[axis]})
    # Pile two unrelated axes on top, then require only `axis` back.
    noisy = replace(minimal, backend="emulated", consistency="atomic")
    result = shrink_genome(noisy, lambda g: getattr(g, axis) == values[axis])
    assert result.genome == minimal
    assert result.genome.complexity() == 1
