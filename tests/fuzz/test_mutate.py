"""One-axis mutation operators: structural rules and determinism."""

from __future__ import annotations

import random
from dataclasses import fields

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.fuzz.genome import BASELINE_GENOME, ScenarioGenome
from repro.fuzz.mutate import MAX_PLAN_FAULTS, _mutable_axes, mutate, random_genome


def axis_diff(a: ScenarioGenome, b: ScenarioGenome) -> list:
    return [f.name for f in fields(a) if getattr(a, f.name) != getattr(b, f.name)]


class TestSingleStep:
    @pytest.mark.parametrize("seed", range(30))
    def test_every_mutation_touches_at_most_the_promised_axes(self, seed):
        rng = random.Random(seed)
        genome = BASELINE_GENOME
        for _ in range(12):
            child = mutate(genome, rng)
            diff = axis_diff(genome, child)
            if diff == []:
                # Only the faults axis may no-op textually (a fresh plan
                # can only equal the old one by hash collision) -- never
                # reached in practice, but the invariant is "no hidden
                # multi-axis step", which an empty diff satisfies.
                continue
            if "backend" in diff and child.backend == "shared":
                # The collapse back to shared resets emulated-only axes.
                assert set(diff) <= {
                    "backend", "replicas", "links", "consistency",
                    "fault_plan", "resync", "membership_plan", "transition",
                }
            else:
                assert len(diff) == 1, diff
            genome = child

    def test_resync_is_never_a_mutation_axis(self):
        rng = random.Random(7)
        genome = BASELINE_GENOME
        for _ in range(200):
            genome = mutate(genome, rng)
            assert genome.resync is True

    def test_transition_is_never_a_mutation_axis(self):
        rng = random.Random(11)
        genome = BASELINE_GENOME
        for _ in range(200):
            genome = mutate(genome, rng)
            assert genome.transition == "dual-quorum"


class TestAxisRules:
    def test_shared_genomes_offer_no_emulated_axes(self):
        axes = _mutable_axes(BASELINE_GENOME)
        assert "links" not in axes
        assert "replicas" not in axes
        assert "consistency" not in axes
        assert "faults" not in axes
        assert "membership" not in axes

    def test_faulted_genomes_freeze_links_replicas_and_membership(self):
        pair = (
            FaultEvent(kind="replica-crash", at=100.0, replica=1),
            FaultEvent(kind="replica-recover", at=300.0, replica=1),
        )
        axes = _mutable_axes(ScenarioGenome(backend="emulated", fault_plan=pair))
        assert "links" not in axes
        assert "replicas" not in axes
        assert "membership" not in axes
        assert "faults" in axes  # clearing the plan stays offered

    def test_non_sync_links_freeze_the_timeline_axes(self):
        axes = _mutable_axes(ScenarioGenome(backend="emulated", links="lossy"))
        assert "faults" not in axes
        assert "membership" not in axes
        assert "links" in axes

    def test_churned_genomes_freeze_links_replicas_and_faults(self):
        from repro.memory.membership import churn_plan

        plan = churn_plan(3, 4500.0)
        axes = _mutable_axes(
            ScenarioGenome(backend="emulated", membership_plan=plan.events)
        )
        assert "links" not in axes
        assert "replicas" not in axes
        assert "faults" not in axes
        assert "membership" in axes  # clearing the plan stays offered

    def test_membership_mutations_keep_a_quorum_alive(self):
        from repro.memory.membership import MembershipPlan

        rng = random.Random(5)
        seen_plans = 0
        genome = ScenarioGenome(backend="emulated")
        for _ in range(300):
            genome = mutate(genome, rng)
            if genome.backend != "emulated":
                genome = ScenarioGenome(backend="emulated")
            if genome.membership_plan:
                seen_plans += 1
                plan = MembershipPlan(genome.membership_plan)
                # validate() enforces >= 2 members after every event.
                plan.validate(genome.replicas)
                for _at, members in plan.member_timeline(genome.replicas):
                    assert len(members) >= 2
        assert seen_plans > 0

    def test_generated_plans_respect_the_group_budget(self):
        rng = random.Random(3)
        seen_plans = 0
        genome = ScenarioGenome(backend="emulated")
        for _ in range(300):
            genome = mutate(genome, rng)
            if genome.backend != "emulated":
                genome = ScenarioGenome(backend="emulated")
            if genome.fault_plan:
                seen_plans += 1
                assert len(FaultPlan(genome.fault_plan).groups()) <= MAX_PLAN_FAULTS
        assert seen_plans > 0


class TestDeterminism:
    def test_identical_streams_mutate_identically(self):
        a_rng, b_rng = random.Random("s"), random.Random("s")
        a = b = BASELINE_GENOME
        for _ in range(60):
            a, b = mutate(a, a_rng), mutate(b, b_rng)
            assert a == b

    def test_random_genome_is_a_pure_function_of_the_stream(self):
        seq_a = [random_genome(random.Random(f"g:{i}")).key() for i in range(40)]
        seq_b = [random_genome(random.Random(f"g:{i}")).key() for i in range(40)]
        assert seq_a == seq_b
        assert len(set(seq_a)) > 5  # the space is actually explored
