"""End-to-end dynamic membership: the churn battery.

The hard interleavings the two-config transition window must survive,
each pinned as its own cell and each asserting the full oracle stack --
stabilization, zero T1-T4 violations, and a clean history audit:

* a write in flight across a config change (operations complete inside
  the dual-quorum window);
* a reconfiguration while a minority of the old config is crashed;
* retiring the lead replica while links are still on a GST ramp;
* back-to-back reconfigurations (transitions queue, one at a time);
* a reconfiguration racing a crash-recovery amnesia resync.

Plus the negative control (``single-config`` transition mode must go
red under the history audit while the matched dual-quorum run stays
clean) and the backend-equivalence satellite: a no-op membership plan
changes nothing, byte for byte, under both ``REPRO_KERNEL`` variants.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.runner import Run
from repro.memory.emulated import EmulatedMemory
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import (
    MEMBERSHIP_CANARY_CRASHES,
    MEMBERSHIP_CANARY_PLAN,
    emulated_gst_ramp_audit,
    membership_canary,
    membership_churn,
    membership_churn_atomic,
)

REPO = Path(__file__).resolve().parents[2]


def assert_clean(result, scen) -> None:
    """The full membership oracle stack: liveness, theorems, audit."""
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    props = result.check_properties(assumption=scen.assumption, margin=scen.margin)
    assert props.violations() == []
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0


# ----------------------------------------------------------------------
# The churn battery: hard interleavings, all clean under dual-quorum
# ----------------------------------------------------------------------
class TestChurnBattery:
    @pytest.mark.parametrize("algo", ["alg1", "alg2"])
    def test_write_in_flight_across_config_change(self, algo):
        """Transfer windows stay open long enough that quorum phases
        start in one config and finish under the dual predicate: the
        dual_quorum_ops census must be non-zero and every such
        operation must still read/write safely."""
        scen = membership_churn(n=3, horizon=8000.0, transfer_delay=400.0)
        result = scen.run(ALGORITHMS[algo], seed=0)
        assert isinstance(result.memory, EmulatedMemory)
        assert result.memory.configs_installed == 2
        assert result.memory.transfer_rounds == 2
        assert result.memory.dual_quorum_ops > 0
        assert_clean(result, scen)

    def test_reconfigure_with_minority_crashed(self):
        """A crashed minority of the OLD config must not block the
        transition: dual quorums assemble from the live majority of
        both configs and the install still lands."""
        scen = membership_churn(n=3, horizon=8000.0, crash_times={"1": 1000.0})
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.configs_installed == 2
        assert result.memory.transfer_rounds == 2
        assert_clean(result, scen)

    def test_leave_the_lead_replica_under_gst_ramp(self):
        """Retiring replica 0 while links are still ramping toward GST:
        the transition's transfer round itself rides slow links, so the
        window stays open across stretched quorum round trips."""
        scen = emulated_gst_ramp_audit(n=4, horizon=10000.0)
        scen.name = "membership-leave-under-ramp"
        scen.emulation = {
            **scen.emulation,
            "membership_plan": [{"kind": "leave", "at": 2000.0, "replica": 0}],
        }
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.configs_installed == 1
        assert result.memory.transfer_rounds == 1
        # The ramp stress is real: retries flooded duplicate traffic.
        assert result.memory.retransmissions > 0
        # Replica 0 is retired once the new config installs.
        assert result.memory.next_config is None
        assert 0 not in result.memory.current_config.members
        assert_clean(result, scen)

    def test_back_to_back_reconfigurations_queue(self):
        """Three events inside one transfer window: transitions must
        queue and run one at a time, installing every config."""
        plan = [
            {"kind": "join", "at": 1000.0, "replica": 3},
            {"kind": "join", "at": 1040.0, "replica": 4},
            {"kind": "leave", "at": 1080.0, "replica": 0},
        ]
        scen = membership_churn(n=3, horizon=8000.0, plan=plan, transfer_delay=300.0)
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.configs_installed == 3
        assert result.memory.transfer_rounds == 3
        assert result.memory.next_config is None
        assert result.memory.current_config.members == (1, 2, 3, 4)
        assert_clean(result, scen)

    def test_reconfiguration_races_amnesia_resync(self):
        """A replica crash-recovers (losing its store) while the churn
        plan is mid-transition: the recovery resync and the membership
        state transfer overlap, and neither may manufacture a stale
        read."""
        scen = membership_churn(n=3, horizon=8000.0)
        scen.name = "membership-vs-amnesia"
        scen.emulation = {
            **scen.emulation,
            "fault_plan": [
                {"kind": "replica-crash", "at": 2000.0, "replica": 1},
                {"kind": "replica-recover", "at": 2600.0, "replica": 1},
            ],
        }
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.recoveries > 0
        assert result.memory.resyncs > 0
        assert result.memory.configs_installed == 2
        assert_clean(result, scen)

    def test_atomic_churn_audits_linearizable(self):
        """The hardest cell: atomic write-backs must assemble dual
        majorities across both transitions and the recorded history
        must be linearizable, not merely regular."""
        scen = membership_churn_atomic(n=3, horizon=10000.0)
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.config.consistency == "atomic"
        assert result.memory.write_backs > 0
        assert result.memory.configs_installed == 2
        assert_clean(result, scen)

    def test_summary_carries_the_reconfiguration_counters(self):
        scen = membership_churn(n=3, horizon=8000.0)
        row = scen.run(ALGORITHMS["alg1"], seed=0).summarize(
            scenario_name=scen.name, margin=scen.margin, assumption=scen.assumption
        )
        assert row.configs_installed == 2
        assert row.transfer_rounds == 2
        assert row.dual_quorum_ops >= 0
        assert row.audit_ok is True and row.audit_violations == 0


# ----------------------------------------------------------------------
# The negative control: single-config mode must go red
# ----------------------------------------------------------------------
class TestNegativeControl:
    def test_single_config_canary_fails_the_history_audit(self):
        """Full config turnover then the last original member crashes:
        with old-config-only quorums and no state transfer the joiners
        serve stale values and the audit must catch it."""
        scen = membership_canary()  # transition="single-config" default
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        audit = result.audit_consistency()
        assert audit is not None and not audit.ok
        assert len(audit.violations) > 0
        # The broken mode is visible in the counters too: configs
        # install (trivially) but no transfer round ever runs.
        assert result.memory.configs_installed == 4
        assert result.memory.transfer_rounds == 0
        assert result.memory.dual_quorum_ops == 0

    def test_dual_quorum_twin_of_the_canary_stays_clean(self):
        """The matched positive control: the same plan, crash and seed
        under dual-quorum windows audits clean -- so the red verdict
        above is the transition mode's fault and nothing else's."""
        scen = membership_canary(transition="dual-quorum")
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        audit = result.audit_consistency()
        assert audit is not None and audit.ok and audit.ops_checked > 0
        assert result.memory.configs_installed == 4
        assert result.memory.transfer_rounds == 4
        assert result.memory.dual_quorum_ops > 0

    def test_canary_construction_is_pinned(self):
        """CI replays the canary by name; its construction must not
        drift silently."""
        assert [ev["kind"] for ev in MEMBERSHIP_CANARY_PLAN] == [
            "join", "join", "leave", "leave",
        ]
        assert [ev["replica"] for ev in MEMBERSHIP_CANARY_PLAN] == [3, 4, 0, 1]
        assert MEMBERSHIP_CANARY_CRASHES == {"2": 2500.0}


# ----------------------------------------------------------------------
# Run-level membership overrides (the spec/CLI axis)
# ----------------------------------------------------------------------
class TestMembershipOverride:
    def test_churn_override_installs_the_canonical_plan(self):
        result = Run(
            ALGORITHMS["alg1"],
            n=3,
            seed=0,
            horizon=4000.0,
            memory="emulated",
            membership="churn",
        ).execute()
        assert result.memory.configs_installed == 2
        assert result.memory.transfer_rounds == 2

    def test_none_override_strips_an_existing_plan(self):
        result = Run(
            ALGORITHMS["alg1"],
            n=3,
            seed=0,
            horizon=4000.0,
            memory="emulated",
            emulation={"membership_plan": [{"kind": "leave", "at": 500.0, "replica": 0}]},
            membership="none",
        ).execute()
        assert result.memory.config.membership_plan == ()
        assert result.memory.configs_installed == 0

    def test_membership_rejected_on_shared_backend(self):
        with pytest.raises(ValueError, match="axis of the emulated backend"):
            Run(ALGORITHMS["alg1"], n=3, membership="churn")

    def test_unknown_membership_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown membership mode"):
            Run(ALGORITHMS["alg1"], n=3, memory="emulated", membership="rolling")


# ----------------------------------------------------------------------
# Backend equivalence: a no-op plan changes nothing, on either kernel
# ----------------------------------------------------------------------
EQUIVALENCE_PROBE = (
    "from repro.core.runner import Run\n"
    "from repro.workloads.registry import ALGORITHMS\n"
    "kwargs = dict(n=3, seed=0, horizon=2000.0, memory='emulated',\n"
    "              emulation={'record_history': True})\n"
    "plain = Run(ALGORITHMS['alg1'], **kwargs).execute().summarize(\n"
    "    scenario_name='equiv', margin=100.0)\n"
    "noop = Run(ALGORITHMS['alg1'], membership='none', **kwargs).execute().summarize(\n"
    "    scenario_name='equiv', margin=100.0)\n"
    "assert plain.canonical_json() == noop.canonical_json()\n"
    "print(plain.canonical_json())\n"
)


class TestBackendEquivalence:
    def test_noop_plan_is_byte_identical_in_process(self):
        kwargs = dict(n=3, seed=0, horizon=2000.0, memory="emulated",
                      emulation={"record_history": True})
        plain = Run(ALGORITHMS["alg1"], **kwargs).execute().summarize(
            scenario_name="equiv", margin=100.0
        )
        noop = Run(ALGORITHMS["alg1"], membership="none", **kwargs).execute().summarize(
            scenario_name="equiv", margin=100.0
        )
        assert plain.canonical_json() == noop.canonical_json()
        assert plain.configs_installed == 0 and noop.configs_installed == 0

    def test_noop_plan_agrees_across_kernel_variants(self):
        """REPRO_KERNEL=python and =compiled: the probe asserts the
        no-op-plan equivalence inside each variant and the two variants'
        canonical summaries must match byte for byte."""
        outputs = {}
        for variant in ("python", "compiled"):
            env = {**os.environ, "REPRO_KERNEL": variant,
                   "PYTHONPATH": str(REPO / "src")}
            proc = subprocess.run(
                [sys.executable, "-c", EQUIVALENCE_PROBE],
                capture_output=True, text=True, timeout=600, env=env, cwd=REPO,
            )
            assert proc.returncode == 0, proc.stderr
            outputs[variant] = proc.stdout
        assert outputs["python"] == outputs["compiled"]
