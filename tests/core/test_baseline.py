"""The eventually-synchronous baseline: works under its (stronger)
assumption, pays the costs Algorithm 1 avoids."""

from __future__ import annotations

import pytest

from repro.analysis.write_stats import forever_writers, growing_registers
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan
from repro.workloads.scenarios import ev_sync


class TestBaselineCorrectness:
    @pytest.fixture(scope="class")
    def result(self):
        return ev_sync(n=4, horizon=3000.0).run(EventuallySynchronousOmega, seed=70)

    def test_stabilizes_under_eventual_synchrony(self, result):
        report = result.stabilization(margin=100.0)
        assert report.stabilized and report.leader_correct

    def test_elects_smallest_correct_id(self, result):
        assert result.stabilization(margin=100.0).leader == 0

    def test_reelects_after_leader_crash(self):
        scen = ev_sync(n=4, horizon=5000.0)
        plan = CrashPlan.single(4, 0, 2500.0)
        result = scen.run(EventuallySynchronousOmega, seed=71, crash_plan=plan)
        report = result.stabilization(margin=100.0)
        assert report.stabilized and report.leader == 1


class TestBaselineCosts:
    """The two costs the paper's Algorithm 1 eliminates."""

    @pytest.fixture(scope="class")
    def result(self):
        return ev_sync(n=4, horizon=3000.0).run(EventuallySynchronousOmega, seed=70)

    def test_every_process_writes_forever(self, result):
        writers = forever_writers(result.memory, result.horizon, window=200.0)
        assert writers == frozenset(range(result.n))

    def test_every_heartbeat_register_unbounded(self, result):
        growing = growing_registers(result.memory, result.horizon)
        assert growing == frozenset(f"HB[{i}]" for i in range(result.n))


class TestBaselineAdaptiveTimeout:
    def test_patience_doubles_on_false_suspicion(self):
        result = ev_sync(n=3, horizon=2000.0).run(EventuallySynchronousOmega, seed=72)
        # At least one follower should have backed off beyond the
        # initial patience at some point (heavy-tailed pre-gst delays
        # force false suspicions).
        patiences = [max(alg.patience) for alg in result.algorithms]
        assert any(p > 2 for p in patiences)
