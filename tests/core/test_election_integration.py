"""Integration matrix: every algorithm under every canonical scenario.

Theorem 1's claim is universal over runs satisfying AWB; the matrix
samples that space across scenarios and seeds.  The negative scenario
(capped timers) checks the assumption is load-bearing rather than
decorative.
"""

from __future__ import annotations

import pytest

from repro.analysis.omega_props import check_validity
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.variants import MultiWriterOmega, StepCounterOmega
from repro.workloads.scenarios import (
    all_but_one,
    awb_only,
    capped_timers,
    cascade,
    chaotic_timers,
    leader_crash,
    nominal,
    scrambled,
)

FAST_ALGORITHMS = [WriteEfficientOmega, MultiWriterOmega, StepCounterOmega]
ALL_ALGORITHMS = FAST_ALGORITHMS + [BoundedOmega]


class TestNominalMatrix:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.display_name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stabilizes(self, algorithm, seed):
        scen = nominal(n=4)
        report = scen.run(algorithm, seed=seed).stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct


class TestLeaderCrashMatrix:
    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS, ids=lambda a: a.display_name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reelects(self, algorithm, seed):
        scen = leader_crash(n=4)
        report = scen.run(algorithm, seed=seed).stabilization(margin=scen.margin)
        assert report.stabilized
        assert report.leader != 0

    def test_alg2_reelects(self):
        scen = leader_crash(n=4, horizon=9000.0)
        report = scen.run(BoundedOmega, seed=0).stabilization(margin=scen.margin)
        assert report.stabilized and report.leader != 0


class TestChaoticTimers:
    @pytest.mark.parametrize("algorithm", [WriteEfficientOmega, MultiWriterOmega], ids=lambda a: a.display_name)
    def test_survives_chaos_era(self, algorithm):
        scen = chaotic_timers(n=4)
        result = scen.run(algorithm, seed=2)
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct

    def test_chaos_causes_false_suspicions(self):
        scen = chaotic_timers(n=4)
        result = scen.run(WriteEfficientOmega, seed=2)
        total_suspicions = sum(
            result.memory.register(f"SUSPICIONS[{j}][{k}]").peek()
            for j in range(4)
            for k in range(4)
        )
        assert total_suspicions > 0


class TestHeavyFaults:
    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS, ids=lambda a: a.display_name)
    def test_cascade(self, algorithm):
        scen = cascade(n=6)
        report = scen.run(algorithm, seed=3).stabilization(margin=scen.margin)
        assert report.stabilized
        assert report.leader in range(3, 6)  # pids 0..2 crashed

    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS, ids=lambda a: a.display_name)
    def test_all_but_one(self, algorithm):
        scen = all_but_one(n=5, survivor=2)
        report = scen.run(algorithm, seed=4).stabilization(margin=scen.margin)
        assert report.stabilized
        assert report.leader == 2


class TestAwbOnly:
    """The paper's exact assumption: one timely process, the rest
    arbitrarily asynchronous."""

    @pytest.mark.parametrize("algorithm", [WriteEfficientOmega, MultiWriterOmega], ids=lambda a: a.display_name)
    def test_stabilizes_with_single_timely_process(self, algorithm):
        scen = awb_only(n=4, timely_pid=0)
        report = scen.run(algorithm, seed=5).stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct


class TestScrambledInitialValues:
    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS, ids=lambda a: a.display_name)
    def test_converges(self, algorithm):
        scen = scrambled(n=4)
        report = scen.run(algorithm, seed=6).stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct


class TestNegativeScenario:
    def test_capped_timers_prevent_stabilization(self):
        """With AWB2 violated, false suspicions never stop: suspicion
        counters keep growing to the very end of the run."""
        scen = capped_timers(n=4)
        result = scen.run(WriteEfficientOmega, seed=7)
        horizon = result.horizon
        late_suspicion_writes = [
            rec
            for rec in result.memory.writes_in(horizon * 0.8, horizon)
            if rec.register.startswith("SUSPICIONS")
        ]
        assert late_suspicion_writes, "capped timers should keep producing suspicions"

    def test_validity_holds_even_without_stabilization(self):
        scen = capped_timers(n=4)
        result = scen.run(WriteEfficientOmega, seed=7)
        assert check_validity(result.trace, result.n)

    def test_positive_twin_with_awb_timers_stabilizes(self):
        """Identical asynchrony profile, only the timers differ: with
        AWB2 restored the election converges -- the assumption, not the
        environment, is what the negative test exercised."""
        from repro.workloads.scenarios import slow_leader_awb

        scen = slow_leader_awb(n=4)
        report = scen.run(WriteEfficientOmega, seed=7).stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct


class TestDeterminismAcrossMatrix:
    @pytest.mark.parametrize("algorithm", [WriteEfficientOmega, BoundedOmega], ids=lambda a: a.display_name)
    def test_same_seed_reproduces_stabilization(self, algorithm):
        scen = nominal(n=3, horizon=2500.0)
        a = scen.run(algorithm, seed=9).stabilization(margin=scen.margin)
        b = scen.run(algorithm, seed=9).stabilization(margin=scen.margin)
        assert (a.stabilized, a.leader, a.time) == (b.stabilized, b.leader, b.time)
