"""Section 3.5 variants: nWnR suspicion vector and the timer-free loop."""

from __future__ import annotations

import pytest

from repro.analysis.write_stats import forever_writers, growing_registers
from repro.core.runner import Run
from repro.core.variants import MultiWriterOmega, StepCounterOmega
from repro.sim.crash import CrashPlan

HORIZON = 2500.0
MARGIN = 250.0


class TestMultiWriterOmega:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(MultiWriterOmega, n=4, seed=60, horizon=HORIZON).execute()

    def test_stabilizes(self, result):
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader_correct

    def test_uses_vector_not_matrix(self, result):
        names = result.memory.names()
        assert "SUSPICIONS[0]" in names
        assert not any(name.startswith("SUSPICIONS[0][") for name in names)

    def test_leader_query_reads_fewer_registers(self, result):
        """The nWnR variant reads |candidates| suspicion registers per
        invocation instead of (n-1) * |candidates|."""
        bound = result.n  # one read per candidate
        for alg in result.algorithms:
            assert alg.max_leader_ops <= bound

    def test_reelects_after_leader_crash(self):
        plan = CrashPlan.single(4, 0, HORIZON * 0.4)
        result = Run(
            MultiWriterOmega, n=4, seed=61, horizon=HORIZON * 1.6, crash_plan=plan
        ).execute()
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader != 0

    def test_racy_increment_mode_still_stabilizes(self):
        """Plain read-then-write increments may lose updates; the
        election must still converge (lost increments only slow
        suspicion growth)."""
        result = Run(
            MultiWriterOmega,
            n=4,
            seed=62,
            horizon=HORIZON,
            algo_config={"atomic_increment": False},
        ).execute()
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader_correct

    def test_still_write_efficient(self, result):
        writers = forever_writers(result.memory, result.horizon, window=200.0)
        assert len(writers) == 1


class TestStepCounterOmega:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(StepCounterOmega, n=4, seed=63, horizon=HORIZON).execute()

    def test_stabilizes_without_timers(self, result):
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader_correct

    def test_no_timer_events_fired(self, result):
        assert "timer" not in result.sim.fired_by_kind

    def test_no_timer_history(self, result):
        assert result.timer_service.history_by_pid == {}

    def test_single_growing_register(self, result):
        leader = result.stabilization(margin=MARGIN).leader
        assert growing_registers(result.memory, result.horizon) == frozenset(
            {f"PROGRESS[{leader}]"}
        )

    def test_reelects_after_leader_crash(self):
        plan = CrashPlan.single(4, 0, HORIZON * 0.4)
        result = Run(
            StepCounterOmega, n=4, seed=64, horizon=HORIZON * 1.6, crash_plan=plan
        ).execute()
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader != 0
