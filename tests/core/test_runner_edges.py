"""Runner edge cases: task exhaustion, event caps, timer-vs-block races,
and analysis reuse across substrates."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import build_timeline
from repro.apps.lease import lease_intervals
from repro.core.algorithm2 import BoundedOmega
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import LocalStep, OmegaAlgorithm, SetTimer
from repro.core.runner import Run
from repro.memory.disk import Disk, LatencyModel
from repro.netsim.network import EventuallyTimelyLinks, FairLossyLinks
from repro.netsim.runtime import MpRun
from repro.related.omega_tsource import TSourceOmega
from repro.sim.rng import RngRegistry


class FiniteTaskAlgorithm(OmegaAlgorithm):
    """Test double whose extra task terminates: the runner must drop it
    and keep the main task running."""

    display_name = "finite-task"
    uses_timer = False

    @classmethod
    def create_shared(cls, memory, n, config):
        return memory.create_array("X", n, initial=0)

    def __init__(self, ctx, shared):
        super().__init__(ctx, shared)
        self.extra_done = False
        self.main_steps = 0

    def main_task(self):
        while True:
            self.main_steps += 1
            yield LocalStep()

    def extra_tasks(self):
        return [self._finite()]

    def _finite(self):
        for _ in range(5):
            yield LocalStep()
        self.extra_done = True

    def peek_leader(self):
        return 0


class TimerDuringBlockAlgorithm(OmegaAlgorithm):
    """Arms a timer, then issues a long disk access; the expiry lands
    mid-block and the T3 task must run after the access completes."""

    display_name = "timer-during-block"

    @classmethod
    def create_shared(cls, memory, n, config):
        return memory.create_array("R", n, initial=0)

    def __init__(self, ctx, shared):
        super().__init__(ctx, shared)
        self.timer_ran_at = None
        self.read_done_at = None

    def initial_timeout(self):
        return 1.0  # fires while the first disk read is in flight

    def main_task(self):
        from repro.core.interfaces import ReadReg

        yield ReadReg(self.shared.register(self.pid))
        self.read_done_at = self.ctx.clock()
        while True:
            yield LocalStep()

    def timer_task(self):
        self.timer_ran_at = self.ctx.clock()
        yield LocalStep()

    def peek_leader(self):
        return 0


class TestTaskLifecycle:
    def test_finite_extra_task_dropped_main_continues(self):
        result = Run(FiniteTaskAlgorithm, n=2, seed=1, horizon=100.0).execute()
        for alg in result.algorithms:
            assert alg.extra_done
            assert alg.main_steps > 20

    def test_max_events_cap(self):
        run = Run(FiniteTaskAlgorithm, n=2, seed=1, horizon=1e6)
        run.execute(max_events=500)
        assert run.sim.events_fired <= 500


class TestTimerDuringDiskBlock:
    def test_expiry_midblock_is_deferred_not_lost(self):
        disk = Disk(LatencyModel(RngRegistry(2), lo=8.0, hi=10.0))
        result = Run(
            TimerDuringBlockAlgorithm, n=2, seed=2, horizon=100.0, disk=disk,
            sample_interval=10.0,
        ).execute()
        for alg in result.algorithms:
            assert alg.timer_ran_at is not None
            assert alg.read_done_at is not None
            # The timer fired at ~1 but its task could only *run* after
            # the blocking access (latency >= 8) released the process --
            # deferred, not lost, and never mid-block.
            assert alg.timer_ran_at >= 8.0
            assert alg.read_done_at >= 8.0


class TestAnalysisReuseAcrossSubstrates:
    """Trace-level analysis must work identically for MP runs."""

    @pytest.fixture(scope="class")
    def mp_result(self):
        rng = RngRegistry(1)
        behavior = EventuallyTimelyLinks(
            FairLossyLinks(rng, loss=0.2), sources={0}, gst=300.0, rng=rng
        )
        return MpRun(TSourceOmega, n=4, seed=1, horizon=4000.0, behavior=behavior).execute()

    def test_timeline_on_mp_trace(self, mp_result):
        report = build_timeline(mp_result.trace, crash_plan=mp_result.crash_plan)
        assert set(report.intervals_by_pid) == set(range(4))
        assert report.last_anarchy_end < mp_result.horizon * 0.5

    def test_lease_on_mp_trace(self, mp_result):
        report = lease_intervals(mp_result.trace, length=200.0)
        stab = mp_result.stabilization(margin=200.0)
        assert stab.stabilized
        assert report.holders_at(mp_result.horizon - 10.0) == [stab.leader]


class TestLeaseOnBoundedOmega:
    def test_unique_holder_after_stabilization(self):
        result = Run(BoundedOmega, n=3, seed=55, horizon=6000.0).execute()
        stab = result.stabilization(margin=300.0)
        assert stab.stabilized
        report = lease_intervals(result.trace, length=200.0)
        assert report.holders_at(result.horizon - 10.0) == [stab.leader]


class TestHorizonSamplingConsistency:
    def test_every_correct_pid_sampled_at_horizon(self):
        result = Run(WriteEfficientOmega, n=3, seed=9, horizon=333.0).execute()
        at_horizon = {
            pid for t, pid, _ in result.trace.leader_samples() if t == 333.0
        }
        assert at_horizon == {0, 1, 2}
