"""Lower-bound falsification: Lemmas 5 and 6 exhibited on mutants.

These tests *depend on failure*: a mutant that keeps satisfying
Eventual Leadership would refute the paper's lower bound (or, far more
likely, expose a harness bug).
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.mutants import BlindProcessOmega, MutedLeaderOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan

HORIZON = 3000.0


class TestLemma5LeaderMustWriteForever:
    """A leader that stops writing is indistinguishable from a crashed
    one, so it must lose the leadership at some follower."""

    @pytest.fixture(scope="class")
    def muted_result(self):
        return Run(
            MutedLeaderOmega,
            n=4,
            seed=80,
            horizon=HORIZON,
            algo_config={"muted_pid": 0, "mute_after": 800.0},
        ).execute()

    @pytest.fixture(scope="class")
    def control_result(self):
        """Same seed, unmutated algorithm: pid 0 stays leader."""
        return Run(WriteEfficientOmega, n=4, seed=80, horizon=HORIZON).execute()

    def test_control_keeps_pid0_leading(self, control_result):
        report = control_result.stabilization(margin=200.0)
        assert report.stabilized and report.leader == 0

    def test_muted_leader_is_demoted_at_followers(self, muted_result):
        """After the mute point, followers stop outputting 0."""
        final = {
            pid: leader
            for _, pid, leader in muted_result.trace.leader_samples()
        }
        followers = [pid for pid in range(4) if pid != 0]
        assert all(final[pid] != 0 for pid in followers)

    def test_muted_leader_stops_writing(self, muted_result):
        late_writes = [
            rec for rec in muted_result.memory.writes_in(1000.0, HORIZON) if rec.pid == 0
        ]
        assert late_writes == []

    def test_followers_eventually_agree_on_someone_else(self, muted_result):
        """The *other* processes re-stabilize among themselves; the
        muted process may disagree (it still thinks it leads), which is
        precisely the specification violation."""
        finals = {pid: leader for _, pid, leader in muted_result.trace.leader_samples()}
        follower_finals = {finals[pid] for pid in range(4) if pid != 0}
        assert len(follower_finals) == 1
        assert follower_finals.pop() in {1, 2, 3}


class TestLemma6EveryoneMustReadForever:
    """A process that stops reading cannot detect the leader's crash and
    keeps outputting a dead process -- violating Eventual Leadership."""

    @pytest.fixture(scope="class")
    def blind_result(self):
        # Let pid 0 lead, blind pid 1 at t=600, crash pid 0 at t=900.
        return Run(
            BlindProcessOmega,
            n=4,
            seed=81,
            horizon=HORIZON,
            algo_config={"blind_pid": 1, "blind_after": 600.0},
            crash_plan=CrashPlan.single(4, 0, 900.0),
        ).execute()

    def test_blind_process_stops_reading(self, blind_result):
        late_reads = [rec for rec in blind_result.memory.reads_in(1000.0, HORIZON) if rec.pid == 1]
        assert late_reads == []

    def test_blind_process_stuck_on_dead_leader(self, blind_result):
        finals = {pid: leader for _, pid, leader in blind_result.trace.leader_samples()}
        assert finals[1] == 0  # still believes the crashed process leads

    def test_sighted_processes_move_on(self, blind_result):
        finals = {pid: leader for _, pid, leader in blind_result.trace.leader_samples()}
        for pid in (2, 3):
            assert finals[pid] != 0

    def test_eventual_leadership_violated(self, blind_result):
        report = blind_result.stabilization(margin=200.0)
        assert not report.stabilized
