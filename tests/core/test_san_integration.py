"""SAN (disk-backed) integration across the stack.

The disk substrate must compose with every layer: both Omega
algorithms, the consensus application, and the linearizability checker.
"""

from __future__ import annotations

import pytest

from repro.apps.consensus import ConsensusProcess
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run
from repro.memory.disk import Disk, LatencyModel
from repro.memory.linearizability import check_single_writer_history
from repro.sim.rng import RngRegistry
from repro.workloads.scenarios import san


def make_disk(seed, lo=0.5, hi=2.0):
    return Disk(LatencyModel(RngRegistry(seed), lo=lo, hi=hi))


class TestAlg1OverSan:
    def test_scenario_stabilizes(self):
        scen = san(n=3)
        result = scen.run(WriteEfficientOmega, seed=3)
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct

    def test_history_linearizable(self):
        scen = san(n=3)
        result = scen.run(WriteEfficientOmega, seed=3)
        assert check_single_writer_history(result.disk.history).ok


class TestAlg2OverSan:
    @pytest.fixture(scope="class")
    def result(self):
        disk = make_disk(44)
        # Disk latency stretches every step; run long enough for the
        # hand-shake to make real progress but don't demand full
        # stabilization (Algorithm 2 needs ~10x Algorithm 1's horizon).
        return Run(
            BoundedOmega,
            n=3,
            seed=44,
            horizon=4000.0,
            disk=disk,
            sample_interval=50.0,
            timer_behaviors=None,
        ).execute()

    def test_history_linearizable(self, result):
        report = check_single_writer_history(result.disk.history)
        assert report.ok, report.summary()

    def test_handshake_operates_over_disk(self, result):
        """PROGRESS/LAST signals flow through the disk."""
        progress_writes = [
            rec for rec in result.memory.write_log if rec.register.startswith("PROGRESS[")
        ]
        last_writes = [rec for rec in result.memory.write_log if rec.register.startswith("LAST[")]
        assert progress_writes and last_writes

    def test_column_ownership_preserved_over_disk(self, result):
        for rec in result.memory.write_log:
            if rec.register.startswith("LAST["):
                _, col = (int(x) for x in rec.register[5:-1].split("]["))
                assert rec.pid == col


class TestConsensusOverSan:
    def test_consensus_decides_over_disk(self):
        disk = make_disk(45, lo=0.5, hi=1.5)
        result = Run(
            ConsensusProcess, n=3, seed=45, horizon=6000.0, disk=disk, sample_interval=50.0
        ).execute()
        decisions = {alg.pid: alg.decision for alg in result.algorithms}
        assert all(d is not None for d in decisions.values())
        assert len(set(decisions.values())) == 1

    def test_disk_history_linearizable(self):
        disk = make_disk(45, lo=0.5, hi=1.5)
        result = Run(
            ConsensusProcess, n=3, seed=45, horizon=6000.0, disk=disk, sample_interval=50.0
        ).execute()
        assert check_single_writer_history(result.disk.history).ok


class TestBlockedProcessSemantics:
    def test_crash_during_disk_access_stops_resume(self):
        """A process that crashes mid-access takes no further step even
        though its in-flight operation may still linearize."""
        from repro.sim.crash import CrashPlan

        disk = make_disk(46, lo=5.0, hi=10.0)
        plan = CrashPlan.single(3, 0, 100.0)
        result = Run(
            WriteEfficientOmega, n=3, seed=46, horizon=400.0, disk=disk, crash_plan=plan,
            sample_interval=20.0,
        ).execute()
        # No operation by pid 0 after crash + max latency window.
        late = [rec for rec in result.memory.writes_in(115.0, 400.0) if rec.pid == 0]
        assert late == []
