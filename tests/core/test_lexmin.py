"""The lex-min tie-breaking rule (paper Section 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lexmin import least_suspected, lexmin_pair


class TestLexminPair:
    def test_smaller_count_wins(self):
        assert lexmin_pair([(5, 0), (2, 3)]) == (2, 3)

    def test_ties_broken_by_id(self):
        assert lexmin_pair([(2, 4), (2, 1)]) == (2, 1)

    def test_single_element(self):
        assert lexmin_pair([(7, 7)]) == (7, 7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lexmin_pair([])

    def test_paper_ordering_definition(self):
        """(a, i) < (b, j) iff a < b or (a = b and i < j)."""
        assert lexmin_pair([(1, 9), (2, 0)]) == (1, 9)


class TestLeastSuspected:
    def test_basic(self):
        assert least_suspected({0: 7, 1: 5, 2: 5}) == 1

    def test_all_equal_yields_min_id(self):
        assert least_suspected({3: 0, 1: 0, 2: 0}) == 1


class TestLexminProperties:
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 31)), min_size=1, max_size=30))
    def test_matches_sorted(self, pairs):
        assert lexmin_pair(pairs) == sorted(pairs)[0]

    @given(st.dictionaries(st.integers(0, 31), st.integers(0, 100), min_size=1, max_size=16))
    def test_winner_has_minimal_count(self, suspicions):
        winner = least_suspected(suspicions)
        assert suspicions[winner] == min(suspicions.values())

    @given(st.dictionaries(st.integers(0, 31), st.integers(0, 100), min_size=1, max_size=16))
    def test_deterministic(self, suspicions):
        assert least_suspected(suspicions) == least_suspected(dict(reversed(list(suspicions.items()))))
