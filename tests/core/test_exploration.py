"""The open-question exploration: lazy (non-reading) leaders.

Two halves: the heuristic delivers zero leader reads under stable
conditions, and it breaks Eventual Leadership under post-stabilization
disturbance -- evidence the open question does not fall to the naive
approach.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.exploration import LazyLeaderOmega
from repro.core.runner import Run
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import AdversarialStallDelay, StallWindow, UniformDelay

HORIZON = 3000.0


def stall_model(seed: int, pid: int = 0, start: float = 1200.0, end: float = 2000.0):
    """Uniform asynchrony plus one long stall of ``pid`` -- legal
    asynchronous behaviour that demotes a stable leader."""
    rng = RngRegistry(seed)
    return AdversarialStallDelay(UniformDelay(rng, 0.5, 1.5), [StallWindow(pid, start, end)])


class TestStableConditions:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(LazyLeaderOmega, n=4, seed=140, horizon=HORIZON).execute()

    def test_still_elects_correct_leader(self, result):
        report = result.stabilization(margin=200.0)
        assert report.stabilized and report.leader_correct

    def test_leader_goes_lazy(self, result):
        leader = result.stabilization(margin=200.0).leader
        assert result.algorithms[leader].lazy

    def test_lazy_leader_stops_reading(self, result):
        """The prize the open question asks about: zero leader reads in
        the tail of the run."""
        leader = result.stabilization(margin=200.0).leader
        tail_reads = [
            rec
            for rec in result.memory.reads_in(HORIZON * 0.7, HORIZON)
            if rec.pid == leader
        ]
        assert tail_reads == []

    def test_followers_keep_reading(self, result):
        leader = result.stabilization(margin=200.0).leader
        readers = result.memory.readers_in(HORIZON * 0.7, HORIZON)
        assert readers == frozenset(range(4)) - {leader}

    def test_lazy_leader_keeps_writing(self, result):
        """Lemma 5 is respected: laziness elides reads, never writes."""
        leader = result.stabilization(margin=200.0).leader
        tail_writes = [
            rec for rec in result.memory.writes_in(HORIZON * 0.7, HORIZON) if rec.pid == leader
        ]
        assert tail_writes


class TestDisturbedConditions:
    """The failure mode that keeps the question open."""

    @pytest.fixture(scope="class")
    def lazy_result(self):
        return Run(
            LazyLeaderOmega, n=4, seed=141, horizon=HORIZON, delay_model=stall_model(141)
        ).execute()

    @pytest.fixture(scope="class")
    def plain_result(self):
        return Run(
            WriteEfficientOmega, n=4, seed=141, horizon=HORIZON, delay_model=stall_model(141)
        ).execute()

    def test_plain_algorithm_recovers_from_the_stall(self, plain_result):
        report = plain_result.stabilization(margin=200.0)
        assert report.stabilized and report.leader_correct

    def test_lazy_leader_never_notices_demotion(self, lazy_result):
        """Followers suspect the stalled leader and elect someone else;
        the lazy ex-leader still answers itself."""
        finals = {pid: leader for _, pid, leader in lazy_result.trace.leader_samples()}
        assert finals[0] == 0  # stuck on itself
        others = {finals[pid] for pid in (1, 2, 3)}
        assert 0 not in others

    def test_eventual_leadership_violated(self, lazy_result):
        assert not lazy_result.stabilization(margin=200.0).stabilized

    def test_violation_is_permanent(self, lazy_result):
        """The lazy process reads nothing after going lazy, so no
        future information can fix its answer."""
        lazy_alg = lazy_result.algorithms[0]
        assert lazy_alg.lazy
        last_read = lazy_result.memory.last_read_time_by_pid[0]
        assert last_read < HORIZON * 0.6
