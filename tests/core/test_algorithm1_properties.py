"""Algorithm 1 (Figure 2): the paper's lemmas and theorems, measured.

Each test names the paper statement it checks.  Runs use generous
horizons relative to the scenario knobs so the eventual properties are
visible in the trace tail.
"""

from __future__ import annotations

import pytest

from repro.analysis.omega_props import check_termination, check_validity
from repro.analysis.write_stats import (
    forever_readers,
    forever_writers,
    growing_registers,
    single_writer_point,
    tail_written_registers,
)
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan


@pytest.fixture(scope="module")
def nominal_result():
    """One shared long fault-free run (module-scoped: it is reused by
    several property checks, which read different aspects of it)."""
    return Run(WriteEfficientOmega, n=4, seed=42, horizon=2000.0).execute()


@pytest.fixture(scope="module")
def crash_result():
    """A run where the stable leader crashes mid-way."""
    plan = CrashPlan.single(4, 0, 600.0)
    return Run(WriteEfficientOmega, n=4, seed=43, horizon=2400.0, crash_plan=plan).execute()


class TestTheorem1EventualLeadership:
    def test_stabilizes_on_correct_common_leader(self, nominal_result):
        report = nominal_result.stabilization(margin=200.0)
        assert report.stabilized
        assert report.leader_correct

    def test_all_correct_processes_agree(self, nominal_result):
        report = nominal_result.stabilization(margin=200.0)
        finals = set(report.final_by_pid.values())
        assert finals == {report.leader}

    def test_reelects_after_leader_crash(self, crash_result):
        report = crash_result.stabilization(margin=200.0)
        assert report.stabilized
        assert report.leader != 0
        assert report.leader_correct


class TestLemma1CrashedLeaveCandidates:
    def test_faulty_process_leaves_all_candidate_sets_forever(self, crash_result):
        for alg in crash_result.algorithms:
            if alg.pid == 0:
                continue  # the crashed process's own state is irrelevant
            assert 0 not in alg.candidates

    def test_faulty_process_never_readded(self, crash_result):
        """After the crash, last_i[0] equals PROGRESS[0] forever, so the
        line-17 test stays false: 0 can never re-enter candidates."""
        final_progress = crash_result.memory.register("PROGRESS[0]").peek()
        for alg in crash_result.algorithms:
            if alg.pid != 0:
                assert alg.last[0] == final_progress


class TestLemma2BoundedSuspicions:
    def test_leader_suspicions_bounded(self, nominal_result):
        """SUSPICIONS[j][ell] stops growing: no write to any entry of the
        leader's column lands in the tail half of the run."""
        leader = nominal_result.stabilization(margin=200.0).leader
        horizon = nominal_result.horizon
        tail_writes = [
            rec
            for rec in nominal_result.memory.writes_in(horizon / 2, horizon)
            if rec.register.startswith("SUSPICIONS") and rec.register.endswith(f"[{leader}]")
        ]
        assert tail_writes == []

    def test_own_suspicion_entry_never_written(self, nominal_result):
        """T3 skips k = i, so SUSPICIONS[i][i] is never increased."""
        n = nominal_result.n
        for i in range(n):
            assert nominal_result.memory.register(f"SUSPICIONS[{i}][{i}]").peek() == 0


class TestTheorem2AllButOneBounded:
    def test_only_leader_progress_still_grows(self, nominal_result):
        leader = nominal_result.stabilization(margin=200.0).leader
        growing = growing_registers(nominal_result.memory, nominal_result.horizon)
        assert growing == frozenset({f"PROGRESS[{leader}]"})

    def test_leader_progress_grows_without_bound(self, nominal_result):
        """PROGRESS[ell] keeps increasing: its maximum in the tail
        exceeds its maximum in the first half."""
        leader = nominal_result.stabilization(margin=200.0).leader
        history = nominal_result.memory.value_history(f"PROGRESS[{leader}]")
        horizon = nominal_result.horizon
        first_half = [v for t, v in history if t < horizon / 2]
        tail = [v for t, v in history if t >= horizon / 2]
        assert tail and first_half
        assert max(tail) > max(first_half)

    def test_suspicion_values_plateau(self, nominal_result):
        """Every SUSPICIONS entry reaches a final value and stays there."""
        horizon = nominal_result.horizon
        tail_writes = [
            rec
            for rec in nominal_result.memory.writes_in(horizon * 0.75, horizon)
            if rec.register.startswith("SUSPICIONS")
        ]
        assert tail_writes == []


class TestTheorem3SingleWriter:
    def test_eventually_single_writer(self, nominal_result):
        point = single_writer_point(nominal_result.memory, nominal_result.horizon, tail=300.0)
        assert point.reached
        assert point.writer == nominal_result.stabilization(margin=200.0).leader

    def test_single_writer_writes_single_register(self, nominal_result):
        leader = nominal_result.stabilization(margin=200.0).leader
        tail_regs = tail_written_registers(nominal_result.memory, nominal_result.horizon, tail=300.0)
        assert tail_regs == frozenset({f"PROGRESS[{leader}]"})

    def test_forever_writers_is_leader_singleton(self, nominal_result):
        writers = forever_writers(nominal_result.memory, nominal_result.horizon, window=200.0)
        assert writers == frozenset({nominal_result.stabilization(margin=200.0).leader})


class TestLemma6EveryoneReadsForever:
    def test_all_correct_processes_read_forever(self, nominal_result):
        readers = forever_readers(nominal_result.memory, nominal_result.horizon, window=200.0)
        assert readers == frozenset(range(nominal_result.n))


class TestOmegaSpecification:
    def test_validity(self, nominal_result):
        assert check_validity(nominal_result.trace, nominal_result.n)

    def test_termination_witness(self, nominal_result):
        report = check_termination(nominal_result.algorithms, nominal_result.crash_plan)
        assert report.ok

    def test_self_always_candidate(self, nominal_result):
        for alg in nominal_result.algorithms:
            assert alg.pid in alg.candidates


class TestSelfStabilization:
    """Footnote 7: arbitrary initial shared values are tolerated."""

    def test_converges_from_scrambled_registers(self):
        from repro.workloads.scenarios import scramble_registers

        result = Run(
            WriteEfficientOmega, n=4, seed=44, horizon=2500.0, scramble=scramble_registers
        ).execute()
        report = result.stabilization(margin=200.0)
        assert report.stabilized and report.leader_correct

    def test_converges_with_partial_initial_candidates(self):
        result = Run(
            WriteEfficientOmega,
            n=4,
            seed=45,
            horizon=2500.0,
            algo_config={"initial_candidates": [0]},
        ).execute()
        report = result.stabilization(margin=200.0)
        assert report.stabilized and report.leader_correct
