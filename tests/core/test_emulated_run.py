"""End-to-end runs on the emulated backend: liveness, theorems, equivalence."""

from __future__ import annotations

import pytest

from repro.core.runner import Run
from repro.memory.emulated import EmulatedMemory
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import (
    BACKEND_EQUIVALENCE_CELLS,
    emulated_lossy,
    leader_crash,
    leader_crash_emulated,
    nominal,
    nominal_emulated,
    nominal_emulated_atomic,
    replica_crash,
    replica_crash_atomic,
)


@pytest.mark.parametrize("algo", ["alg1", "alg2", "alg1-nwnr", "alg1-no-timer"])
def test_nominal_emulated_stabilizes_clean(algo):
    """Acceptance: every algorithm stabilizes with zero T1-T4 violations."""
    scen = nominal_emulated(n=4)
    result = scen.run(ALGORITHMS[algo], seed=0)
    assert result.memory_backend == "emulated"
    assert isinstance(result.memory, EmulatedMemory)
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    props = result.check_properties(assumption=scen.assumption, margin=scen.margin)
    assert props.violations() == []
    assert result.memory.network.total_sent > 0


@pytest.mark.parametrize("algo", ["alg1", "alg2"])
def test_leader_crash_emulated_reelects_clean(algo):
    scen = leader_crash_emulated(n=4)
    result = scen.run(ALGORITHMS[algo], seed=0)
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader != 0 and report.leader_correct
    props = result.check_properties(assumption=scen.assumption, margin=scen.margin)
    assert props.violations() == []


@pytest.mark.parametrize(
    "algo,shared_factory,emulated_factory,seed",
    BACKEND_EQUIVALENCE_CELLS,
    ids=[f"{a}-{sf.__name__}-s{s}" for a, sf, _, s in BACKEND_EQUIVALENCE_CELLS],
)
def test_backend_equivalence_identical_leaders(algo, shared_factory, emulated_factory, seed):
    """Acceptance: same seed, sync links -> identical elected leaders."""
    cls = ALGORITHMS[algo]
    shared = shared_factory(n=4).run(cls, seed=seed).final_leaders()
    emulated = emulated_factory(n=4).run(cls, seed=seed).final_leaders()
    assert shared == emulated


def test_replica_crash_scenario_survives():
    scen = replica_crash(n=4)
    result = scen.run(ALGORITHMS["alg1"], seed=1)
    assert result.memory.live_replicas == 3  # 2 of 5 crashed
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    assert result.check_properties(margin=scen.margin).violations() == []


def test_lossy_scenario_retransmits_and_stabilizes():
    scen = emulated_lossy(n=3)
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.network.dropped > 0
    assert result.memory.retransmissions > 0
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct


def test_emulated_run_blocks_are_intervals():
    """Operation latency is visible: emulated runs fire far more events."""
    shared = Run(ALGORITHMS["alg1"], n=3, seed=0, horizon=500.0).execute()
    emulated = Run(
        ALGORITHMS["alg1"], n=3, seed=0, horizon=500.0, memory="emulated"
    ).execute()
    assert emulated.sim.events_fired > 2 * shared.sim.events_fired
    assert emulated.memory.total_op_latency > 0


def test_run_rejects_emulated_plus_disk():
    from repro.memory.disk import Disk, LatencyModel
    from repro.sim.rng import RngRegistry

    disk = Disk(LatencyModel(RngRegistry(0), lo=1.0, hi=2.0))
    with pytest.raises(ValueError, match="pick one"):
        Run(ALGORITHMS["alg1"], n=3, memory="emulated", disk=disk)


def test_run_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown memory backend"):
        Run(ALGORITHMS["alg1"], n=3, memory="astral")


def test_scenario_override_back_to_shared_drops_emulation_knobs():
    """``repro run --memory shared`` on an emulated scenario must work."""
    scen = nominal_emulated(n=3, horizon=800.0)
    result = scen.run(ALGORITHMS["alg1"], seed=0, memory="shared")
    assert result.memory_backend == "shared"
    assert not isinstance(result.memory, EmulatedMemory)


# ----------------------------------------------------------------------
# Consistency levels: atomic (write-back) runs and the history audit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", ["alg1", "alg2"])
def test_nominal_atomic_stabilizes_and_audits_clean(algo):
    """Acceptance: atomic-level runs stabilize with zero T1-T4
    violations AND a linearizable recorded history."""
    scen = nominal_emulated_atomic(n=4)
    result = scen.run(ALGORITHMS[algo], seed=0)
    assert isinstance(result.memory, EmulatedMemory)
    assert result.memory.config.consistency == "atomic"
    assert result.memory.write_backs > 0
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    assert result.check_properties(assumption=scen.assumption, margin=scen.margin).violations() == []
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0


def test_replica_crash_atomic_audits_clean():
    """Write-backs keep assembling majorities through replica crashes
    and the history stays linearizable."""
    scen = replica_crash_atomic(n=4)
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.live_replicas == 3  # 2 of 5 crashed
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0


def test_emulated_lossy_audit_clean_under_retransmission_races():
    """The `repro check` lossy audit cell: dropped quorum messages force
    duplicate REQ/ACK traffic, and no replay or re-ack may manufacture a
    stale read -- the recorded history must stay regular."""
    from repro.workloads.scenarios import emulated_lossy_audit

    scen = emulated_lossy_audit(n=3, horizon=4000.0)
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.config.record_history is True
    assert result.memory.config.consistency == "regular"
    # The stress is real: the fabric dropped messages and phases retried.
    assert result.memory.network.dropped > 0
    assert result.memory.retransmissions > 0
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0


def test_emulated_gst_ramp_audit_clean_under_duplicate_floods():
    """The `repro check` ramp audit cell: pre-GST quorum round trips
    outlast the deliberately tight retry timer, so phases re-broadcast
    into links that deliver everything -- the reply dedup must not
    double-count a replica into a fake quorum, and the recorded history
    must stay regular."""
    from repro.workloads.scenarios import emulated_gst_ramp_audit

    scen = emulated_gst_ramp_audit(n=3, horizon=6000.0)
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.config.record_history is True
    assert result.memory.config.consistency == "regular"
    # The stress is real: phases retried into non-lossy links, so every
    # retransmission manufactured duplicate REQ/ACK traffic.
    assert result.memory.retransmissions > 0
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0


def test_regular_run_passes_the_regularity_audit():
    """The default level really is regular: its history passes the
    regularity check (the atomic check is not promised -- the pinned
    anomaly in repro.memory.anomaly demonstrates the divergence)."""
    result = Run(
        ALGORITHMS["alg1"],
        n=3,
        seed=0,
        horizon=1500.0,
        memory="emulated",
        emulation={"record_history": True},
    ).execute()
    audit = result.audit_consistency()
    assert audit is not None and audit.ok and audit.ops_checked > 0
    assert result.memory.write_backs == 0


def test_audit_none_when_nothing_recorded():
    shared = Run(ALGORITHMS["alg1"], n=3, seed=0, horizon=500.0).execute()
    emulated = Run(
        ALGORITHMS["alg1"], n=3, seed=0, horizon=500.0, memory="emulated"
    ).execute()
    assert shared.audit_consistency() is None
    assert emulated.audit_consistency() is None  # recorder off by default


def test_run_rejects_consistency_on_shared_backend():
    with pytest.raises(ValueError, match="axis of the emulated backend"):
        Run(ALGORITHMS["alg1"], n=3, consistency="atomic")


def test_run_consistency_param_overrides_emulation_dict():
    run = Run(
        ALGORITHMS["alg1"],
        n=3,
        memory="emulated",
        emulation={"consistency": "regular"},
        consistency="atomic",
    )
    assert run.memory.config.consistency == "atomic"


def test_atomic_scenario_override_back_to_shared_drops_consistency():
    """``repro run --memory shared`` works on the atomic scenarios too."""
    scen = nominal_emulated_atomic(n=3, horizon=800.0)
    result = scen.run(ALGORITHMS["alg1"], seed=0, memory="shared")
    assert result.memory_backend == "shared"


def test_summary_carries_consistency_and_audit_fields():
    scen = nominal_emulated_atomic(n=3, horizon=1500.0)
    row = scen.run(ALGORITHMS["alg1"], seed=0).summarize(
        scenario_name=scen.name, margin=scen.margin, assumption=scen.assumption
    )
    assert row.consistency == "atomic"
    assert row.audit_ok is True and row.audit_ops > 0 and row.audit_violations == 0
    regular = nominal_emulated(n=3, horizon=1500.0)
    row = regular.run(ALGORITHMS["alg1"], seed=0).summarize(
        scenario_name=regular.name, margin=regular.margin, assumption=regular.assumption
    )
    assert row.consistency == "regular"
    assert row.audit_ok is None and row.audit_ops == 0
    shared = nominal(n=3, horizon=800.0)
    row = shared.run(ALGORITHMS["alg1"], seed=0).summarize(
        scenario_name=shared.name, margin=shared.margin, assumption=shared.assumption
    )
    assert row.consistency == "atomic"  # shared registers are atomic
    assert row.audit_ok is None


# ----------------------------------------------------------------------
# Mutating link faults: the negative/positive scenario pair
# ----------------------------------------------------------------------
def test_corruption_links_break_the_theorem_audit():
    """Value corruption is the fault class the emulation does NOT
    tolerate: the Theorem-1 audit must fail (the ROADMAP's
    negative-scenario family)."""
    scen = nominal_emulated(n=4, links="corruption")
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.network.behavior.corrupted > 0
    props = result.check_properties(assumption=scen.assumption, margin=scen.margin)
    assert any(v.theorem == 1 for v in props.violations())


def test_duplication_links_are_survived():
    """Duplicate deliveries must leave every claim intact."""
    scen = nominal_emulated(n=4, links="duplication")
    result = scen.run(ALGORITHMS["alg1"], seed=0)
    assert result.memory.network.behavior.duplicated > 0
    report = result.stabilization(margin=scen.margin)
    assert report.stabilized and report.leader_correct
    assert result.check_properties(assumption=scen.assumption, margin=scen.margin).violations() == []
