"""The run assembly: determinism, crash semantics, task multiplexing."""

from __future__ import annotations

import pytest

from repro.core.runner import Run
from repro.core.algorithm1 import WriteEfficientOmega
from repro.memory.disk import Disk, LatencyModel
from repro.memory.linearizability import check_single_writer_history
from repro.sim.crash import CrashPlan
from repro.sim.rng import RngRegistry
from repro.workloads.scenarios import scramble_registers


class TestRunBasics:
    def test_requires_two_processes(self):
        with pytest.raises(ValueError):
            Run(WriteEfficientOmega, n=1)

    def test_same_seed_same_trace(self):
        a = Run(WriteEfficientOmega, n=3, seed=11, horizon=300.0).execute()
        b = Run(WriteEfficientOmega, n=3, seed=11, horizon=300.0).execute()
        assert a.trace.leader_samples() == b.trace.leader_samples()
        assert a.memory.total_writes == b.memory.total_writes
        assert [r.time for r in a.memory.write_log] == [r.time for r in b.memory.write_log]

    def test_different_seed_different_schedule(self):
        a = Run(WriteEfficientOmega, n=3, seed=1, horizon=300.0).execute()
        b = Run(WriteEfficientOmega, n=3, seed=2, horizon=300.0).execute()
        assert [r.time for r in a.memory.write_log] != [r.time for r in b.memory.write_log]

    def test_timer_activity_traced(self):
        run = Run(WriteEfficientOmega, n=3, seed=3, horizon=300.0)
        result = run.execute()
        set_rows = result.trace.timer_rows("timer_set")
        fired_rows = result.trace.timer_rows("timer_fired")
        assert set_rows and fired_rows
        # every fired row carries the realized duration of an armed timer
        assert all(duration > 0 for _, _, duration in fired_rows)
        total_expirations = sum(rt.timer_expirations for rt in run.runtimes)
        assert len(fired_rows) == total_expirations

    def test_result_carries_config(self):
        result = Run(WriteEfficientOmega, n=3, seed=5, horizon=100.0).execute()
        assert result.n == 3
        assert result.seed == 5
        assert result.horizon == 100.0
        assert result.algorithm_name == "alg1-write-efficient"

    def test_final_sample_at_horizon(self):
        result = Run(WriteEfficientOmega, n=3, seed=5, horizon=100.0).execute()
        times = [t for t, _, _ in result.trace.leader_samples()]
        assert max(times) == 100.0

    def test_final_leaders_only_correct_pids(self):
        plan = CrashPlan.single(3, 2, 50.0)
        result = Run(WriteEfficientOmega, n=3, seed=5, horizon=200.0, crash_plan=plan).execute()
        assert set(result.final_leaders()) == {0, 1}

    def test_final_leaders_take_last_sample_per_pid(self):
        result = Run(WriteEfficientOmega, n=3, seed=5, horizon=200.0).execute()
        expected = {}
        for t, pid, leader in result.trace.leader_samples():
            if pid not in expected or t >= expected[pid][0]:
                expected[pid] = (t, leader)
        assert result.final_leaders() == {pid: lv for pid, (_, lv) in expected.items()}

    def test_trace_events_flag_plumbs_to_simulator(self):
        fast = Run(WriteEfficientOmega, n=3, seed=5, horizon=100.0, trace_events=False)
        result = fast.execute()
        assert result.sim.trace_events is False
        assert result.sim.fired_by_kind == {}
        default = Run(WriteEfficientOmega, n=3, seed=5, horizon=100.0).execute()
        assert default.sim.fired_by_kind  # per-kind counts kept by default
        # The flag is pure observability: the schedule is unchanged.
        assert result.sim.events_fired == default.sim.events_fired

    def test_summarize_in_place(self):
        result = Run(WriteEfficientOmega, n=3, seed=5, horizon=400.0).execute()
        row = result.summarize(scenario_name="adhoc", window=50.0)
        assert row.scenario == "adhoc"
        assert row.seed == 5 and row.n == 3
        assert row.total_writes == result.memory.total_writes
        assert row.events_fired == result.sim.events_fired


class TestCrashSemantics:
    def test_crashed_process_takes_no_steps_after_crash(self):
        plan = CrashPlan.single(3, 0, 100.0)
        result = Run(WriteEfficientOmega, n=3, seed=7, horizon=400.0, crash_plan=plan).execute()
        writes_after = [r for r in result.memory.writes_in(100.0, 400.0) if r.pid == 0]
        assert writes_after == []

    def test_crash_recorded_in_trace(self):
        plan = CrashPlan.single(3, 1, 50.0)
        result = Run(WriteEfficientOmega, n=3, seed=7, horizon=200.0, crash_plan=plan).execute()
        crashes = result.trace.of_kind("crash")
        assert [(c.time, c["pid"]) for c in crashes] == [(50.0, 1)]

    def test_crashed_process_not_sampled(self):
        plan = CrashPlan.single(3, 1, 50.0)
        result = Run(WriteEfficientOmega, n=3, seed=7, horizon=200.0, crash_plan=plan).execute()
        late_samples = [
            (t, pid) for t, pid, _ in result.trace.leader_samples() if t > 60.0 and pid == 1
        ]
        assert late_samples == []

    def test_runtime_flags(self):
        plan = CrashPlan.single(3, 1, 50.0)
        run = Run(WriteEfficientOmega, n=3, seed=7, horizon=200.0, crash_plan=plan)
        run.execute()
        assert run.runtimes[1].crashed
        assert not run.runtimes[0].crashed


class TestScramble:
    def test_scrambled_registers_differ_from_defaults(self):
        run = Run(
            WriteEfficientOmega, n=4, seed=9, horizon=10.0, scramble=scramble_registers
        )
        values = [reg.peek() for reg in run.memory.all_registers()]
        # Default SUSPICIONS/PROGRESS are all zero; scrambling must have
        # touched some of them.
        assert any(v not in (0, True) for v in values)

    def test_scramble_deterministic_per_seed(self):
        r1 = Run(WriteEfficientOmega, n=4, seed=9, horizon=10.0, scramble=scramble_registers)
        r2 = Run(WriteEfficientOmega, n=4, seed=9, horizon=10.0, scramble=scramble_registers)
        assert [reg.peek() for reg in r1.memory.all_registers()] == [
            reg.peek() for reg in r2.memory.all_registers()
        ]


class TestSnapshots:
    def test_snapshot_interval_records(self):
        result = Run(
            WriteEfficientOmega, n=3, seed=3, horizon=100.0, snapshot_interval=10.0
        ).execute()
        times = [t for t, _ in result.snapshots]
        assert len(times) == 11  # t = 0, 10, ..., 100
        assert times[0] == 0.0


class TestDiskIntegration:
    def test_disk_run_produces_linearizable_history(self):
        rng = RngRegistry(21)
        disk = Disk(LatencyModel(rng, lo=0.5, hi=2.0))
        result = Run(
            WriteEfficientOmega, n=3, seed=21, horizon=400.0, disk=disk, sample_interval=20.0
        ).execute()
        assert len(disk.history) > 100
        report = check_single_writer_history(disk.history)
        assert report.ok, report.summary()

    def test_disk_slows_progress(self):
        base = Run(WriteEfficientOmega, n=3, seed=4, horizon=200.0).execute()
        rng = RngRegistry(4)
        disk = Disk(LatencyModel(rng, lo=2.0, hi=5.0))
        slowed = Run(WriteEfficientOmega, n=3, seed=4, horizon=200.0, disk=disk).execute()
        assert slowed.memory.total_writes < base.memory.total_writes
