"""The operation vocabulary and the algorithm base class."""

from __future__ import annotations

import pytest

from repro.core.interfaces import (
    AlgorithmContext,
    FetchAdd,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    WriteReg,
)
from repro.memory.register import AtomicRegister


class TestOperations:
    def test_ops_are_frozen(self):
        reg = AtomicRegister("R", owner=0)
        op = ReadReg(reg)
        with pytest.raises(AttributeError):
            op.register = None

    def test_write_carries_value(self):
        reg = AtomicRegister("R", owner=0)
        assert WriteReg(reg, 42).value == 42

    def test_set_timer_carries_timeout(self):
        assert SetTimer(7.0).timeout == 7.0

    def test_fetch_add_default_amount(self):
        from repro.memory.mwmr import MultiWriterRegister

        assert FetchAdd(MultiWriterRegister("M")).amount == 1

    def test_local_step_is_stateless(self):
        assert LocalStep() == LocalStep()


class _Minimal(OmegaAlgorithm):
    display_name = "minimal"

    @classmethod
    def create_shared(cls, memory, n, config):
        return None

    def main_task(self):
        while True:
            yield LocalStep()

    def peek_leader(self):
        return 0


def make_ctx(pid=0, n=3, config=None):
    return AlgorithmContext(pid=pid, n=n, clock=lambda: 0.0, rng=None, config=config or {})


class TestAlgorithmBase:
    def test_defaults(self):
        alg = _Minimal(make_ctx(), None)
        assert alg.timer_task() is None
        assert alg.extra_tasks() == []
        assert alg.initial_timeout() == 1.0  # uses_timer default True

    def test_initial_timeout_none_without_timer(self):
        class NoTimer(_Minimal):
            uses_timer = False

        assert NoTimer(make_ctx(), None).initial_timeout() is None

    def test_leader_query_not_implemented_by_default(self):
        alg = _Minimal(make_ctx(), None)
        with pytest.raises(NotImplementedError):
            alg.leader_query()

    def test_invocation_accounting(self):
        alg = _Minimal(make_ctx(), None)
        alg._note_leader_invocation(5)
        alg._note_leader_invocation(3)
        assert alg.leader_invocations == 2
        assert alg.max_leader_ops == 5

    def test_context_fields(self):
        ctx = make_ctx(pid=2, n=5, config={"k": "v"})
        alg = _Minimal(ctx, "shared")
        assert (alg.pid, alg.n, alg.shared) == (2, 5, "shared")
        assert alg.ctx.config["k"] == "v"


class TestTimeoutPolicyValidation:
    def test_unknown_policy_rejected(self):
        from repro.core.runner import Run
        from repro.core.algorithm1 import WriteEfficientOmega

        with pytest.raises(ValueError, match="timeout_policy"):
            Run(WriteEfficientOmega, n=2, algo_config={"timeout_policy": "bogus"})
