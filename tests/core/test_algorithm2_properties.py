"""Algorithm 2 (Figure 5): bounded memory, hand-shake, Theorems 6-8."""

from __future__ import annotations

import pytest

from repro.analysis.omega_props import check_termination, check_validity
from repro.analysis.write_stats import (
    boundedness,
    forever_readers,
    forever_writers,
    growing_registers,
    tail_written_registers,
)
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan

HORIZON = 6000.0
MARGIN = 400.0


@pytest.fixture(scope="module")
def nominal_result():
    return Run(BoundedOmega, n=4, seed=50, horizon=HORIZON).execute()


@pytest.fixture(scope="module")
def crash_result():
    plan = CrashPlan.single(4, 0, HORIZON * 0.55)
    return Run(BoundedOmega, n=4, seed=51, horizon=HORIZON * 1.5, crash_plan=plan).execute()


class TestTheorem1StillHolds:
    def test_stabilizes_on_correct_common_leader(self, nominal_result):
        report = nominal_result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader_correct

    def test_reelects_after_leader_crash(self, crash_result):
        report = crash_result.stabilization(margin=MARGIN)
        assert report.stabilized
        assert report.leader != 0


class TestTheorem6AllVariablesBounded:
    def test_no_register_still_growing(self, nominal_result):
        assert growing_registers(nominal_result.memory, nominal_result.horizon) == frozenset()

    def test_progress_and_last_are_boolean(self, nominal_result):
        for name, verdict in boundedness(nominal_result.memory, nominal_result.horizon).items():
            if name.startswith(("PROGRESS", "LAST", "STOP")):
                assert verdict.distinct_values <= 2, name

    def test_suspicions_plateau(self, nominal_result):
        horizon = nominal_result.horizon
        tail = [
            rec
            for rec in nominal_result.memory.writes_in(horizon * 0.8, horizon)
            if rec.register.startswith("SUSPICIONS")
        ]
        assert tail == []


class TestTheorem7MinimalWriterSet:
    def test_tail_registers_are_handshake_pairs_of_leader(self, nominal_result):
        leader = nominal_result.stabilization(margin=MARGIN).leader
        tail_regs = tail_written_registers(nominal_result.memory, nominal_result.horizon, tail=400.0)
        for name in tail_regs:
            assert name.startswith((f"PROGRESS[{leader}][", f"LAST[{leader}][")), name

    def test_leader_row_handshake_written_forever(self, nominal_result):
        """PROGRESS[ell][i] (by the leader) and LAST[ell][i] (by p_i)
        keep being written."""
        leader = nominal_result.stabilization(margin=MARGIN).leader
        tail_regs = tail_written_registers(nominal_result.memory, nominal_result.horizon, tail=400.0)
        others = [k for k in range(nominal_result.n) if k != leader]
        for k in others:
            assert f"PROGRESS[{leader}][{k}]" in tail_regs

    def test_all_correct_processes_write_forever(self, nominal_result):
        """Corollary 1's price, paid by design: the writer census is the
        full correct set."""
        writers = forever_writers(nominal_result.memory, nominal_result.horizon, window=400.0)
        assert writers == frozenset(range(nominal_result.n))

    def test_after_crash_only_correct_processes_write(self, crash_result):
        writers = forever_writers(crash_result.memory, crash_result.horizon, window=400.0)
        assert writers == crash_result.crash_plan.correct


class TestHandshakeMechanics:
    def test_last_written_only_by_column_owner(self, nominal_result):
        """LAST[i][k] is owned (and thus written) by p_k alone."""
        n = nominal_result.n
        for rec in nominal_result.memory.write_log:
            if rec.register.startswith("LAST["):
                row, col = (int(x) for x in rec.register[5:-1].split("]["))
                assert rec.pid == col

    def test_progress_written_only_by_row_owner(self, nominal_result):
        for rec in nominal_result.memory.write_log:
            if rec.register.startswith("PROGRESS["):
                row = int(rec.register.split("[")[1].rstrip("]"))
                assert rec.pid == row

    def test_signal_semantics_alternate(self, nominal_result):
        """Values written to one PROGRESS[l][k] register alternate
        True/False -- each write raises a fresh signal."""
        leader = nominal_result.stabilization(margin=MARGIN).leader
        k = next(i for i in range(nominal_result.n) if i != leader)
        history = [v for _, v in nominal_result.memory.value_history(f"PROGRESS[{leader}][{k}]")]
        # The leader re-writes the raised value until the partner
        # acknowledges (line 8.R2 is unconditional), so the raw history
        # has repeats; the *transitions* must strictly alternate.
        deduped = [history[0]]
        for v in history[1:]:
            if v != deduped[-1]:
                deduped.append(v)
        assert len(deduped) >= 4  # the hand-shake keeps toggling
        assert all(deduped[i] != deduped[i + 1] for i in range(len(deduped) - 1))


class TestOmegaSpecification:
    def test_validity(self, nominal_result):
        assert check_validity(nominal_result.trace, nominal_result.n)

    def test_termination_witness(self, nominal_result):
        assert check_termination(nominal_result.algorithms, nominal_result.crash_plan).ok

    def test_everyone_reads_forever(self, nominal_result):
        readers = forever_readers(nominal_result.memory, nominal_result.horizon, window=400.0)
        assert readers == frozenset(range(nominal_result.n))


class TestSelfStabilization:
    def test_converges_from_scrambled_registers(self):
        from repro.workloads.scenarios import scramble_registers

        result = Run(
            BoundedOmega, n=3, seed=52, horizon=HORIZON, scramble=scramble_registers
        ).execute()
        report = result.stabilization(margin=MARGIN)
        assert report.stabilized and report.leader_correct
