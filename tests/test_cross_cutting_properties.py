"""Cross-cutting properties over the whole algorithm zoo.

Hypothesis drives short runs of every algorithm with random seeds and
small system sizes, asserting the invariants that must hold in *every*
run regardless of stabilization: Validity, candidate-set sanity,
ownership discipline, monotone suspicion counters, and bit-for-bit
determinism.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.omega_props import check_validity
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.runner import Run
from repro.core.variants import MultiWriterOmega, StepCounterOmega
from repro.sim.crash import CrashPlan
from repro.sim.rng import RngRegistry

ZOO = [
    WriteEfficientOmega,
    BoundedOmega,
    MultiWriterOmega,
    StepCounterOmega,
    EventuallySynchronousOmega,
]

SHORT = 300.0


def short_run(algorithm_cls, seed, n, crash_seed=None):
    plan = (
        CrashPlan.none(n)
        if crash_seed is None
        else CrashPlan.random(n, RngRegistry(crash_seed), horizon=SHORT)
    )
    return Run(
        algorithm_cls, n=n, seed=seed, horizon=SHORT, crash_plan=plan, sample_interval=10.0
    ).execute()


class TestValidityEverywhere:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(ZOO),
        st.integers(0, 10_000),
        st.integers(2, 6),
    )
    def test_every_sampled_output_is_a_pid(self, algorithm_cls, seed, n):
        result = short_run(algorithm_cls, seed, n)
        assert check_validity(result.trace, n)

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(ZOO), st.integers(0, 10_000), st.integers(3, 6))
    def test_validity_with_random_crashes(self, algorithm_cls, seed, n):
        result = short_run(algorithm_cls, seed, n, crash_seed=seed + 1)
        assert check_validity(result.trace, n)


class TestStructuralInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from([WriteEfficientOmega, BoundedOmega, MultiWriterOmega, StepCounterOmega]),
        st.integers(0, 10_000),
        st.integers(2, 5),
    )
    def test_self_always_candidate(self, algorithm_cls, seed, n):
        result = short_run(algorithm_cls, seed, n)
        for alg in result.algorithms:
            assert alg.pid in alg.candidates

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_suspicion_registers_monotone(self, seed, n):
        """SUSPICIONS values never decrease (the proofs rely on it)."""
        result = short_run(WriteEfficientOmega, seed, n)
        last: dict[str, int] = {}
        for rec in result.memory.write_log:
            if rec.register.startswith("SUSPICIONS"):
                assert rec.value >= last.get(rec.register, 0)
                last[rec.register] = rec.value

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_progress_monotone(self, seed, n):
        result = short_run(WriteEfficientOmega, seed, n)
        last: dict[str, int] = {}
        for rec in result.memory.write_log:
            if rec.register.startswith("PROGRESS"):
                assert rec.value > last.get(rec.register, -1)
                last[rec.register] = rec.value


class TestDeterminismEverywhere:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(ZOO), st.integers(0, 10_000))
    def test_bitwise_reproducible(self, algorithm_cls, seed):
        a = short_run(algorithm_cls, seed, 3)
        b = short_run(algorithm_cls, seed, 3)
        assert a.trace.leader_samples() == b.trace.leader_samples()
        assert [
            (r.time, r.pid, r.register, r.value) for r in a.memory.write_log
        ] == [(r.time, r.pid, r.register, r.value) for r in b.memory.write_log]


class TestOwnershipDiscipline:
    """No algorithm ever writes a register it does not own -- enforced
    by the register layer, so a single passing long run of each
    algorithm is a real proof of discipline (violations raise)."""

    @pytest.mark.parametrize("algorithm_cls", ZOO, ids=lambda a: a.display_name)
    def test_no_ownership_violation(self, algorithm_cls):
        short_run(algorithm_cls, seed=123, n=4)  # would raise OwnershipError
