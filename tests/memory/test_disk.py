"""The SAN disk model: latency sampling and version bookkeeping."""

from __future__ import annotations

import pytest

from repro.memory.disk import Disk, LatencyModel
from tests.conftest import make_rng


class TestLatencyModel:
    def test_sample_within_bounds(self):
        model = LatencyModel(make_rng(1), lo=1.0, hi=4.0)
        for pid in range(4):
            for _ in range(100):
                s = model.sample(pid)
                assert 1.0 <= s.resp_offset <= 4.0
                assert 0.0 <= s.lin_offset <= s.resp_offset

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyModel(make_rng(1), lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            LatencyModel(make_rng(1), lo=3.0, hi=1.0)

    def test_deterministic(self):
        a = LatencyModel(make_rng(5)).sample(0)
        b = LatencyModel(make_rng(5)).sample(0)
        assert a == b


class TestDiskHistory:
    def _disk(self) -> Disk:
        return Disk(LatencyModel(make_rng(2)))

    def test_write_versions_increment_per_register(self):
        disk = self._disk()
        assert disk.note_write(0, "R", 0.0, 0.5, 1.0) == 0
        assert disk.note_write(0, "R", 1.0, 1.5, 2.0) == 1
        assert disk.note_write(1, "Q", 0.0, 0.5, 1.0) == 0

    def test_read_returns_latest_version(self):
        disk = self._disk()
        disk.note_write(0, "R", 0.0, 0.5, 1.0)
        assert disk.note_read(1, "R", 1.0, 1.2, 1.5) == 0
        disk.note_write(0, "R", 2.0, 2.5, 3.0)
        assert disk.note_read(1, "R", 3.0, 3.2, 3.5) == 1

    def test_read_before_any_write_sees_initial_version(self):
        disk = self._disk()
        assert disk.note_read(1, "R", 0.0, 0.1, 0.2) == -1

    def test_ops_for_filters_register(self):
        disk = self._disk()
        disk.note_write(0, "R", 0.0, 0.5, 1.0)
        disk.note_write(1, "Q", 0.0, 0.5, 1.0)
        disk.note_read(2, "R", 1.0, 1.2, 1.5)
        assert [op.kind for op in disk.ops_for("R")] == ["write", "read"]

    def test_op_ids_monotone(self):
        disk = self._disk()
        disk.note_write(0, "R", 0.0, 0.5, 1.0)
        disk.note_read(1, "R", 1.0, 1.2, 1.5)
        ids = [op.op_id for op in disk.history]
        assert ids == sorted(ids)
