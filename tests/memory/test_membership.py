"""Dynamic membership vocabulary: configs, events, plans, quorum math.

Unit coverage for :mod:`repro.memory.membership` plus the hypothesis
property at the heart of the two-config transition window: **any two
quorums drawn from adjacent configurations intersect** as long as both
satisfy the dual-quorum predicate (a majority of the old config AND a
majority of the new one).  The end-to-end churn battery lives in
``tests/core/test_membership_run.py``; this file pins the algebra it
relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.emulated import EmulationConfig
from repro.memory.membership import (
    MEMBERSHIP_KINDS,
    MEMBERSHIP_MODES,
    TRANSITION_MODES,
    MembershipEvent,
    MembershipPlan,
    ReplicaConfig,
    churn_plan,
)


# ----------------------------------------------------------------------
# ReplicaConfig: the versioned member set and its majority quorum
# ----------------------------------------------------------------------
class TestReplicaConfig:
    def test_members_are_canonicalized_sorted(self):
        cfg = ReplicaConfig(config_id=0, members=(2, 0, 1))
        assert cfg.members == (0, 1, 2)
        assert cfg.member_set == frozenset({0, 1, 2})

    @pytest.mark.parametrize("size,majority", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)])
    def test_majority_is_floor_half_plus_one(self, size, majority):
        assert ReplicaConfig(0, tuple(range(size))).majority == majority

    def test_quorum_met_requires_members_not_strangers(self):
        cfg = ReplicaConfig(1, (0, 1, 2))
        assert cfg.quorum_met({0, 1})
        assert cfg.quorum_met({0, 1, 2, 99})
        assert not cfg.quorum_met({0})
        assert not cfg.quorum_met({0, 98, 99})  # strangers don't count

    def test_rejects_negative_config_id(self):
        with pytest.raises(ValueError, match="negative config id"):
            ReplicaConfig(-1, (0, 1))

    def test_rejects_empty_member_set(self):
        with pytest.raises(ValueError, match="at least one member"):
            ReplicaConfig(0, ())

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError, match="repeats a member"):
            ReplicaConfig(0, (1, 1, 2))

    def test_rejects_negative_member_index(self):
        with pytest.raises(ValueError, match="negative member index"):
            ReplicaConfig(0, (-1, 0))


# ----------------------------------------------------------------------
# MembershipEvent: one join/leave entry and its JSON form
# ----------------------------------------------------------------------
class TestMembershipEvent:
    def test_kinds_are_join_then_leave(self):
        assert MEMBERSHIP_KINDS == ("join", "leave")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown membership kind"):
            MembershipEvent("replace", 10.0, 0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="negative membership time"):
            MembershipEvent("join", -1.0, 3)

    def test_rejects_negative_replica(self):
        with pytest.raises(ValueError, match="non-negative replica"):
            MembershipEvent("leave", 10.0, -2)

    def test_json_round_trip(self):
        ev = MembershipEvent("join", 600.0, 3)
        assert MembershipEvent.from_jsonable(ev.to_jsonable()) == ev

    def test_from_jsonable_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown membership-event key"):
            MembershipEvent.from_jsonable({"kind": "join", "at": 1.0, "replica": 3, "x": 1})

    def test_join_sorts_before_leave_at_equal_times(self):
        join = MembershipEvent("join", 100.0, 3)
        leave = MembershipEvent("leave", 100.0, 0)
        assert join.sort_key() < leave.sort_key()


# ----------------------------------------------------------------------
# MembershipPlan: validated, sorted, JSON-round-trippable timelines
# ----------------------------------------------------------------------
class TestMembershipPlan:
    def test_events_sort_on_construction(self):
        plan = MembershipPlan(
            (MembershipEvent("leave", 900.0, 0), MembershipEvent("join", 300.0, 3))
        )
        assert [ev.kind for ev in plan] == ["join", "leave"]

    def test_validate_accepts_the_canonical_churn(self):
        churn_plan(3, 8000.0).validate(3)  # must not raise

    def test_validate_rejects_out_of_order_join(self):
        plan = MembershipPlan((MembershipEvent("join", 100.0, 5),))
        with pytest.raises(ValueError, match="out of order"):
            plan.validate(3)

    def test_validate_rejects_leave_of_non_member(self):
        plan = MembershipPlan((MembershipEvent("leave", 100.0, 7),))
        with pytest.raises(ValueError, match="not a member"):
            plan.validate(3)

    def test_validate_rejects_dropping_below_two_members(self):
        plan = MembershipPlan(
            (MembershipEvent("leave", 100.0, 0), MembershipEvent("leave", 200.0, 1))
        )
        with pytest.raises(ValueError, match="below two"):
            plan.validate(3)

    def test_validate_rejects_single_replica_base(self):
        with pytest.raises(ValueError, match=">= 2 initial replicas"):
            MembershipPlan(()).validate(1)

    def test_member_timeline_walks_the_state_machine(self):
        plan = MembershipPlan(
            (
                MembershipEvent("join", 600.0, 3),
                MembershipEvent("leave", 1200.0, 0),
            )
        )
        assert plan.member_timeline(3) == (
            (0.0, (0, 1, 2)),
            (600.0, (0, 1, 2, 3)),
            (1200.0, (1, 2, 3)),
        )
        assert plan.final_members(3) == (1, 2, 3)
        assert plan.max_replica_index(3) == 4
        assert plan.last_event_time() == 1200.0

    def test_empty_plan_edges(self):
        plan = MembershipPlan(())
        assert len(plan) == 0
        assert plan.final_members(3) == (0, 1, 2)
        assert plan.max_replica_index(3) == 3
        assert plan.last_event_time() == 0.0

    def test_json_round_trip(self):
        plan = churn_plan(4, 6000.0)
        assert MembershipPlan.from_jsonable(plan.to_jsonable()) == plan
        assert MembershipPlan.from_jsonable(None) == MembershipPlan(())

    def test_churn_plan_is_a_replace_one_replica_pair(self):
        plan = churn_plan(3, 8000.0)
        assert [ev.kind for ev in plan] == ["join", "leave"]
        join, leave = plan.events
        assert join.replica == 3 and join.at == pytest.approx(2400.0)
        assert leave.replica == 0 and leave.at == pytest.approx(4400.0)
        plan.validate(3)

    def test_mode_vocabularies_are_pinned(self):
        # CLI choices, spec validation and the fuzzer's negative-control
        # hook all index into these; a silent rename breaks replays.
        assert TRANSITION_MODES == ("dual-quorum", "single-config")
        assert MEMBERSHIP_MODES == ("none", "churn")


# ----------------------------------------------------------------------
# EmulationConfig: the membership knobs ride the JSON round trip
# ----------------------------------------------------------------------
class TestEmulationConfigMembership:
    def test_round_trip_preserves_membership_knobs(self):
        cfg = EmulationConfig(
            replicas=3,
            membership_plan=churn_plan(3, 8000.0).events,
            transfer_delay=90.0,
            transition="dual-quorum",
            record_history=True,
        )
        assert EmulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_rejects_unknown_transition_mode(self):
        with pytest.raises(ValueError, match="unknown transition mode"):
            EmulationConfig(replicas=3, transition="triple-config")

    def test_rejects_non_positive_transfer_delay(self):
        with pytest.raises(ValueError, match="transfer_delay must be positive"):
            EmulationConfig(replicas=3, transfer_delay=0.0)

    def test_rejects_illegal_plan_for_replica_count(self):
        with pytest.raises(ValueError, match="out of order"):
            EmulationConfig(
                replicas=4, membership_plan=(MembershipEvent("join", 100.0, 3),)
            )

    def test_rejects_crash_before_join(self):
        with pytest.raises(ValueError, match="before it joins"):
            EmulationConfig(
                replicas=3,
                membership_plan=(MembershipEvent("join", 1000.0, 3),),
                replica_crash_times=((3, 500.0),),
            )

    def test_rejects_crashes_that_starve_the_current_members(self):
        # After replicas 3, 4 join and 0, 1 leave, the member set is
        # {2, 3, 4}: crashing two of them kills the quorum.
        plan = (
            MembershipEvent("join", 600.0, 3),
            MembershipEvent("join", 900.0, 4),
            MembershipEvent("leave", 1200.0, 0),
            MembershipEvent("leave", 1500.0, 1),
        )
        with pytest.raises(ValueError, match="no live\\s+majority"):
            EmulationConfig(
                replicas=3,
                membership_plan=plan,
                replica_crash_times=((2, 2500.0), (3, 2600.0)),
            )

    def test_allows_minority_crash_in_the_final_config(self):
        plan = (
            MembershipEvent("join", 600.0, 3),
            MembershipEvent("join", 900.0, 4),
            MembershipEvent("leave", 1200.0, 0),
            MembershipEvent("leave", 1500.0, 1),
        )
        cfg = EmulationConfig(
            replicas=3, membership_plan=plan, replica_crash_times=((2, 2500.0),)
        )
        assert MembershipPlan(cfg.membership_plan).final_members(3) == (2, 3, 4)


# ----------------------------------------------------------------------
# The transition-window property: adjacent-config quorums intersect
# ----------------------------------------------------------------------
def _adjacent_configs(draw) -> tuple:
    """An old config plus the new config one join/leave event away."""
    size = draw(st.integers(min_value=2, max_value=7))
    old = ReplicaConfig(0, tuple(range(size)))
    if size > 2 and draw(st.booleans()):
        gone = draw(st.integers(min_value=0, max_value=size - 1))
        members = tuple(i for i in old.members if i != gone)
    else:
        members = old.members + (size,)
    return old, ReplicaConfig(1, members)


@st.composite
def adjacent_config_pairs(draw):
    return _adjacent_configs(draw)


@st.composite
def dual_quorum_replies(draw):
    """Two independent reply sets, each satisfying the dual-quorum
    predicate for one adjacent-config pair."""
    old, new = draw(adjacent_config_pairs())
    universe = sorted(old.member_set | new.member_set)

    def reply_set() -> frozenset:
        picked = frozenset(
            i for i in universe if draw(st.booleans())
        )
        # Top up until the dual-quorum predicate holds; deterministic
        # fill order keeps the strategy shrinkable.
        for i in universe:
            if old.quorum_met(set(picked)) and new.quorum_met(set(picked)):
                break
            picked |= {i}
        return picked

    return old, new, reply_set(), reply_set()


class TestTransitionWindowQuorums:
    @settings(max_examples=200, deadline=None)
    @given(dual_quorum_replies())
    def test_any_two_dual_quorums_intersect(self, case):
        """The RAMBO window invariant: two operations completing inside
        the same transition window always share a replica, so a write's
        timestamp is visible to every subsequent read."""
        old, new, a, b = case
        assert old.quorum_met(set(a)) and new.quorum_met(set(a))
        assert old.quorum_met(set(b)) and new.quorum_met(set(b))
        assert a & b, (old.members, new.members, sorted(a), sorted(b))

    @settings(max_examples=200, deadline=None)
    @given(adjacent_config_pairs())
    def test_dual_quorums_intersect_plain_majorities_of_both_configs(self, pair):
        """A dual quorum also intersects every majority of EITHER config
        alone -- the property that makes the window safe against
        operations that completed just before (old config) or just after
        (new config) the transition."""
        old, new = pair
        # The smallest dual quorum one can build greedily.
        dual: set = set()
        for i in sorted(old.member_set | new.member_set):
            if old.quorum_met(dual) and new.quorum_met(dual):
                break
            dual.add(i)
        assert old.quorum_met(dual) and new.quorum_met(dual)
        # Exhaustive over all majorities of each config (configs are
        # small by construction, so this is cheap).
        from itertools import combinations

        for cfg in (old, new):
            for majority in combinations(cfg.members, cfg.majority):
                assert dual & set(majority), (cfg.members, sorted(dual), majority)

    @settings(max_examples=120, deadline=None)
    @given(adjacent_config_pairs())
    def test_single_config_mode_can_miss_the_new_majority(self, pair):
        """Why ``single-config`` is broken: an old-config majority that
        avoids the surviving overlap need not intersect a new-config
        majority.  The witness exists whenever the adjacent configs are
        genuinely different AND quorum arithmetic leaves slack; at the
        very least the old majority never *guarantees* the dual
        predicate that the window invariant needs."""
        old, new = pair
        from itertools import combinations

        old_majorities = [set(c) for c in combinations(old.members, old.majority)]
        # Every dual quorum satisfies new.quorum_met; the broken mode
        # accepts any old majority, so soundness requires ALL old
        # majorities to be new majorities too -- which fails whenever a
        # member left (its majority-mates may be gone) or the join grew
        # the quorum size.
        all_covered = all(new.quorum_met(m) for m in old_majorities)
        if old.members != new.members and not all_covered:
            witness = next(m for m in old_majorities if not new.quorum_met(m))
            assert not new.quorum_met(witness)
