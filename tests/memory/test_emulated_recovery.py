"""Recovery edges of the ABD emulation: amnesia, resync, retry policies.

The mid-operation cases the fault campaigns cannot pin deterministically
live here: an in-flight quorum op spanning a crash *and* the recovery,
the no-service window of a recovering replica, and the retry-timer
hygiene of both retransmission policies.
"""

from __future__ import annotations

import pytest

from repro.memory.emulated import (
    EmulatedMemory,
    EmulationConfig,
    _PendingOp,
)
from repro.netsim.network import Message
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def make_memory(seed: int = 7, horizon: float = 10_000.0, **knobs):
    """A started EmulatedMemory with one register PROG owned by pid 0."""
    sim = Simulator()
    mem = EmulatedMemory(
        clock=lambda: sim.now,
        sim=sim,
        rng=RngRegistry(seed),
        config=EmulationConfig.from_dict(knobs),
    )
    reg = mem.create_register("PROG", owner=0, initial=0, critical=True)
    mem.start(horizon=horizon)
    return sim, mem, reg


class _RecordingNet:
    """Stub network capturing ``send`` calls (for direct handle() probes)."""

    def __init__(self):
        self.sent = []

    def send(self, sender, receiver, kind, payload):
        self.sent.append((sender, receiver, kind, payload))


def _msg(sender, receiver, kind, payload, sent_at=0.0):
    return Message(sender=sender, receiver=receiver, kind=kind, payload=payload, sent_at=sent_at)


_INITIAL = lambda name: ((0, -1), 0)  # noqa: E731 - trivial initial_of stub


# ----------------------------------------------------------------------
# In-flight operations across crash + recovery + resync
# ----------------------------------------------------------------------
def test_inflight_write_completes_across_crash_and_recovery():
    # Two replicas: the write quorum is BOTH of them, so a write issued
    # while replica 1 is down can only finish after the recovery -- and
    # the recovering replica must ack it mid-resync (writes are safe to
    # apply on amnesia; only reads are not).
    sim, mem, reg = make_memory(
        replicas=2,
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 200.0, "replica": 1},
        ],
    )
    done, got = [], []
    sim.schedule_at(20.0, lambda: mem.emu_write(0, reg, 7, done.append))
    sim.schedule_at(500.0, lambda: mem.emu_read(1, reg, got.append))
    sim.run(until=10_000.0)
    assert done, "write never completed despite the recovery"
    assert got == [7]
    assert mem.retransmissions > 0  # the op survived on retransmission
    assert mem.recoveries == 1 and mem.resyncs == 1
    assert mem.replicas[1].store["PROG"][1] == 7
    assert not mem._ops and not mem._resyncs  # nothing left in flight


def test_resync_completes_against_the_single_other_replica():
    # At two replicas a "majority of the others" is the one survivor;
    # the resync quorum is capped there, so recovery still terminates
    # (the survivor holds every completed write by quorum intersection).
    sim, mem, reg = make_memory(
        replicas=2,
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 40.0, "replica": 1},
        ],
    )
    sim.schedule_at(5.0, lambda: mem.emu_write(0, reg, 3, lambda _: None))
    sim.run(until=10_000.0)
    assert mem.resyncs == 1
    assert not mem.replicas[1].recovering
    assert mem.replicas[1].store["PROG"][1] == 3


# ----------------------------------------------------------------------
# The no-service window of a recovering replica
# ----------------------------------------------------------------------
def test_recovering_replica_serves_no_reads_but_applies_writes():
    sim, mem, reg = make_memory()
    node = mem.replicas[1]
    mem._crash_replica(node)
    mem._begin_recovery(node)
    assert node.recovering  # resync is pending; no replies ran yet

    net = _RecordingNet()
    node.handle(_msg(0, node.node_id, "abd.read", (1, "PROG")), net, _INITIAL)
    assert net.sent == []  # amnesiac state must not enter a read quorum
    assert node.reads_served == 0

    node.handle(_msg(-1, node.node_id, "abd.sync", (9,)), net, _INITIAL)
    assert net.sent == []  # nor certify another replica's resync

    node.handle(
        _msg(0, node.node_id, "abd.write", (2, "PROG", (1, 0), 5)), net, _INITIAL
    )
    assert node.store["PROG"] == ((1, 0), 5)  # writes apply and ack
    assert [entry[2] for entry in net.sent] == ["abd.write-ack"]


def test_resync_merge_never_regresses_writes_applied_mid_recovery():
    # A write acked during recovery is newer than the snapshots being
    # merged; completing the resync must keep it.
    sim, mem, reg = make_memory(
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 40.0, "replica": 1},
        ],
    )
    # Old value before the crash, new value written exactly while the
    # recovering replica is collecting snapshots (sync RTT is 0.5).
    sim.schedule_at(5.0, lambda: mem.emu_write(0, reg, 1, lambda _: None))
    sim.schedule_at(40.1, lambda: mem.emu_write(0, reg, 2, lambda _: None))
    sim.run(until=10_000.0)
    assert mem.resyncs == 1
    assert mem.replicas[1].store["PROG"][1] == 2


def test_recovery_without_resync_is_amnesiac():
    # The deliberately broken mode the chaos campaign must catch: the
    # replica rejoins service straight out of amnesia.
    sim, mem, reg = make_memory(
        resync=False,
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 40.0, "replica": 1},
        ],
    )
    sim.schedule_at(5.0, lambda: mem.emu_write(0, reg, 9, lambda _: None))
    sim.run(until=10_000.0)
    assert mem.recoveries == 1 and mem.resyncs == 0
    assert not mem.replicas[1].recovering  # never entered the window
    assert "PROG" not in mem.replicas[1].store  # the write is gone


def test_crash_during_resync_abandons_the_round():
    sim, mem, reg = make_memory(
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 40.0, "replica": 1},
            # Re-crash before the first sync reply (RTT 0.5) lands.
            {"kind": "replica-crash", "at": 40.2, "replica": 1},
            {"kind": "replica-recover", "at": 80.0, "replica": 1},
        ],
    )
    sim.run(until=10_000.0)
    assert mem.recoveries == 2
    assert mem.resyncs == 1  # only the second round completed
    assert not mem._resyncs  # the abandoned round left no state behind


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------
def _pending_op(mem, reg, pid=0, attempts=0):
    op = _PendingOp(1, pid, reg, "read", lambda _: None, 0.0)
    op.attempts = attempts
    return op


def test_fixed_retry_delay_is_constant():
    sim, mem, reg = make_memory()
    delays = {mem._retry_delay(_pending_op(mem, reg, attempts=k)) for k in range(6)}
    assert delays == {mem.config.retry_interval}


def test_backoff_retry_delay_doubles_and_caps():
    sim, mem, reg = make_memory(retry_policy="backoff", retry_jitter=0.0)
    base = mem.config.retry_interval
    cap = mem.config.retry_cap
    delays = [mem._retry_delay(_pending_op(mem, reg, attempts=k)) for k in range(8)]
    assert delays[:3] == [base, 2 * base, 4 * base]
    assert delays[-1] == cap
    assert all(d <= cap for d in delays)


def test_backoff_jitter_stays_in_band():
    sim, mem, reg = make_memory(retry_policy="backoff", retry_jitter=0.25)
    base = mem.config.retry_interval
    for _ in range(32):
        delay = mem._retry_delay(_pending_op(mem, reg, attempts=0))
        assert base <= delay <= base * 1.25


def test_unknown_retry_policy_is_rejected():
    with pytest.raises(ValueError, match="retry policy"):
        EmulationConfig(retry_policy="telepathy")


def test_completed_ops_leak_no_retry_timers():
    # On synchronous links every op completes on the first round: no
    # retransmission ever fires, and nothing stays armed afterwards.
    sim, mem, reg = make_memory()
    sim.schedule_at(5.0, lambda: mem.emu_write(0, reg, 4, lambda _: None))
    sim.schedule_at(10.0, lambda: mem.emu_read(1, reg, lambda _: None))
    sim.run(until=10_000.0)
    assert mem.retransmissions == 0
    assert not mem._ops
    assert sim.fired_by_kind.get("abd-retry", 0) == 0


def test_completed_resync_leaks_no_retry_timers():
    # retry_interval 20 and a resync that completes in 0.5: a leaked
    # resync timer would fire ~500 times before the horizon.
    sim, mem, reg = make_memory(
        fault_plan=[
            {"kind": "replica-crash", "at": 10.0, "replica": 1},
            {"kind": "replica-recover", "at": 40.0, "replica": 1},
        ],
    )
    sim.run(until=10_000.0)
    assert mem.resyncs == 1
    assert not mem._resyncs
    assert sim.fired_by_kind.get("abd-resync-retry", 0) == 0


# ----------------------------------------------------------------------
# The fault overlay as a plain link model
# ----------------------------------------------------------------------
def test_partition_schedule_link_model_severs_the_island():
    # The overlay is registered as the 'partition-schedule' link model:
    # replica 1 is islanded for the whole run, yet the {0, 2} majority
    # keeps every quorum op alive.
    sim, mem, reg = make_memory(
        links="partition-schedule",
        link_params={"partitions": [[0.0, 10_000.0, [1]]], "delta": 0.25},
    )
    done, got = [], []
    sim.schedule_at(5.0, lambda: mem.emu_write(0, reg, 6, done.append))
    sim.schedule_at(50.0, lambda: mem.emu_read(2, reg, got.append))
    sim.run(until=10_000.0)
    assert done and got == [6]
    assert mem.network.behavior.partitioned_drops > 0
    assert mem.replicas[1].store["PROG"] == ((0, -1), 0)  # never heard the write
