"""Register arrays and matrices: shapes and per-entry ownership."""

from __future__ import annotations

import pytest

from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.register import OwnershipError


class TestRegisterArray:
    def test_default_identity_ownership(self):
        arr = RegisterArray(None, "PROGRESS", 3)
        arr.write(1, writer=1, value=5)
        with pytest.raises(OwnershipError):
            arr.write(1, writer=0, value=5)

    def test_custom_ownership(self):
        arr = RegisterArray(None, "X", 3, owner_of=lambda i: 0)
        arr.write(2, writer=0, value=1)
        with pytest.raises(OwnershipError):
            arr.write(2, writer=2, value=1)

    def test_initial_values(self):
        arr = RegisterArray(None, "STOP", 4, initial=True)
        assert arr.peek_all() == [True] * 4

    def test_read_write_roundtrip(self):
        arr = RegisterArray(None, "A", 3)
        arr.write(0, writer=0, value="v")
        assert arr.read(0, reader=2) == "v"

    def test_register_names(self):
        arr = RegisterArray(None, "A", 2)
        assert arr.register(0).name == "A[0]"
        assert arr.register(1).name == "A[1]"

    def test_len(self):
        assert len(RegisterArray(None, "A", 5)) == 5

    def test_bad_length(self):
        with pytest.raises(ValueError):
            RegisterArray(None, "A", 0)

    def test_critical_propagates(self):
        arr = RegisterArray(None, "A", 2, critical=True)
        assert arr.register(0).critical


class TestRegisterMatrix:
    def test_default_row_ownership(self):
        mat = RegisterMatrix(None, "SUSPICIONS", 3)
        mat.write(1, 2, writer=1, value=4)
        with pytest.raises(OwnershipError):
            mat.write(1, 2, writer=2, value=4)

    def test_column_ownership_for_last(self):
        """Algorithm 2's LAST matrix: entry (i, k) owned by p_k."""
        mat = RegisterMatrix(None, "LAST", 3, owner_of=lambda row, col: col)
        mat.write(0, 2, writer=2, value=True)
        with pytest.raises(OwnershipError):
            mat.write(0, 2, writer=0, value=True)

    def test_register_names(self):
        mat = RegisterMatrix(None, "M", 2)
        assert mat.register(1, 0).name == "M[1][0]"

    def test_peek_column_and_row(self):
        mat = RegisterMatrix(None, "M", 3, initial=0)
        mat.write(0, 1, writer=0, value=5)
        mat.write(2, 1, writer=2, value=7)
        assert mat.peek_column(1) == [5, 0, 7]
        assert mat.peek_row(0) == [0, 5, 0]

    def test_column_sum_matches_paper_aggregation(self):
        """column_sum(k) is the paper's sum_j SUSPICIONS[j][k]."""
        mat = RegisterMatrix(None, "S", 3, initial=0)
        mat.write(0, 2, writer=0, value=3)
        mat.write(1, 2, writer=1, value=4)
        assert mat.column_sum(2) == 7

    def test_bad_size(self):
        with pytest.raises(ValueError):
            RegisterMatrix(None, "M", 0)
