"""SharedMemory: namespace, access logs, window queries, snapshots."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.memory import SharedMemory


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def memory(clock: FakeClock) -> SharedMemory:
    return SharedMemory(clock=clock)


class TestNamespace:
    def test_create_and_lookup(self, memory):
        memory.create_register("R", owner=0)
        assert memory.register("R").name == "R"

    def test_duplicate_name_rejected(self, memory):
        memory.create_register("R", owner=0)
        with pytest.raises(ValueError):
            memory.create_register("R", owner=1)

    def test_mwmr_shares_namespace(self, memory):
        memory.create_mwmr("M")
        with pytest.raises(ValueError):
            memory.create_register("M", owner=0)

    def test_names_sorted(self, memory):
        memory.create_register("B", owner=0)
        memory.create_register("A", owner=0)
        memory.create_mwmr("C")
        assert memory.names() == ["A", "B", "C"]

    def test_array_and_matrix_registration(self, memory):
        memory.create_array("ARR", 2)
        memory.create_matrix("MAT", 2)
        assert "ARR[0]" in memory.names()
        assert "MAT[1][0]" in memory.names()

    def test_all_registers(self, memory):
        memory.create_register("A", owner=0)
        memory.create_mwmr("B")
        assert [r.name for r in memory.all_registers()] == ["A", "B"]


class TestAccessAccounting:
    def test_write_log_records(self, memory, clock):
        reg = memory.create_register("R", owner=0)
        clock.now = 3.0
        reg.write(0, 7)
        (rec,) = memory.write_log
        assert (rec.time, rec.pid, rec.register, rec.value) == (3.0, 0, "R", 7)

    def test_read_log_records(self, memory, clock):
        reg = memory.create_register("R", owner=0)
        clock.now = 4.0
        reg.read(2)
        (rec,) = memory.read_log
        assert (rec.time, rec.pid, rec.register) == (4.0, 2, "R")

    def test_totals(self, memory):
        reg = memory.create_register("R", owner=0)
        reg.write(0, 1)
        reg.read(1)
        reg.read(2)
        assert memory.total_writes == 1
        assert memory.total_reads == 2

    def test_per_pid_counters(self, memory):
        reg = memory.create_register("R", owner=0)
        reg.write(0, 1)
        reg.read(1)
        assert memory.writes_by_pid == {0: 1}
        assert memory.reads_by_pid == {1: 1}

    def test_last_access_times(self, memory, clock):
        reg = memory.create_register("R", owner=0)
        clock.now = 5.0
        reg.write(0, 1)
        clock.now = 9.0
        reg.read(1)
        assert memory.last_write_time_by_pid[0] == 5.0
        assert memory.last_read_time_by_pid[1] == 9.0

    def test_read_logging_can_be_disabled(self, clock):
        memory = SharedMemory(clock=clock, log_reads=False)
        reg = memory.create_register("R", owner=0)
        reg.read(1)
        assert memory.reads_by_pid == {1: 1}
        with pytest.raises(RuntimeError):
            memory.reads_in(0.0, 1.0)

    def test_critical_flag_in_write_log(self, memory):
        reg = memory.create_register("C", owner=0, critical=True)
        reg.write(0, 1)
        assert memory.write_log[0].critical


class TestWindowQueries:
    def _populate(self, memory, clock):
        reg_a = memory.create_register("A", owner=0)
        reg_b = memory.create_register("B", owner=1)
        for t, reg, pid in [(1.0, reg_a, 0), (5.0, reg_b, 1), (9.0, reg_a, 0)]:
            clock.now = t
            reg.write(pid, t)
        return reg_a, reg_b

    def test_writes_in_half_open(self, memory, clock):
        self._populate(memory, clock)
        assert [r.time for r in memory.writes_in(1.0, 9.0)] == [1.0, 5.0]

    def test_writers_in(self, memory, clock):
        self._populate(memory, clock)
        assert memory.writers_in(0.0, 2.0) == frozenset({0})
        assert memory.writers_in(0.0, 10.0) == frozenset({0, 1})

    def test_registers_written_in(self, memory, clock):
        self._populate(memory, clock)
        assert memory.registers_written_in(4.0, 6.0) == frozenset({"B"})

    def test_readers_in(self, memory, clock):
        reg_a, _ = self._populate(memory, clock)
        clock.now = 7.0
        reg_a.read(3)
        assert memory.readers_in(6.0, 8.0) == frozenset({3})

    def test_value_history(self, memory, clock):
        self._populate(memory, clock)
        assert memory.value_history("A") == [(1.0, 1.0), (9.0, 9.0)]

    def test_distinct_values(self, memory, clock):
        self._populate(memory, clock)
        assert memory.distinct_values_written("A") == {1.0, 9.0}

    def test_max_numeric_value(self, memory, clock):
        self._populate(memory, clock)
        assert memory.max_numeric_value("A") == 9.0
        assert memory.max_numeric_value("never-written") is None

    def test_critical_write_times(self, memory, clock):
        crit = memory.create_register("C", owner=0, critical=True)
        plain = memory.create_register("P", owner=0, critical=False)
        clock.now = 2.0
        crit.write(0, 1)
        clock.now = 3.0
        plain.write(0, 1)
        clock.now = 6.0
        crit.write(0, 2)
        assert memory.critical_write_times(0) == [2.0, 6.0]


class TestSnapshots:
    def test_snapshot_is_hashable_and_complete(self, memory):
        memory.create_register("A", owner=0, initial=1)
        memory.create_mwmr("B", initial=True)
        snap = memory.snapshot()
        assert snap == (("A", 1), ("B", True))
        hash(snap)  # must be hashable (Theorem 5 recurrence counting)

    def test_snapshot_reflects_writes(self, memory):
        reg = memory.create_register("A", owner=0, initial=0)
        before = memory.snapshot()
        reg.write(0, 5)
        after = memory.snapshot()
        assert before != after
        assert dict(after)["A"] == 5


class TestWindowQueryProperty:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=40)
    )
    def test_partition_of_write_log(self, times):
        clock = FakeClock()
        memory = SharedMemory(clock=clock)
        reg = memory.create_register("R", owner=0)
        for t in sorted(times):
            clock.now = t
            reg.write(0, t)
        mid = 50.0
        left = memory.writes_in(0.0, mid)
        right = memory.writes_in(mid, 101.0)
        assert len(left) + len(right) == len(times)
