"""Atomic 1WnR registers: ownership, counting, observer access."""

from __future__ import annotations

import pytest

from repro.memory.register import AtomicRegister, OwnershipError


class TestRegisterOperations:
    def test_initial_value_readable(self):
        reg = AtomicRegister("R", owner=0, initial=42)
        assert reg.read(reader=1) == 42

    def test_write_then_read(self):
        reg = AtomicRegister("R", owner=0)
        reg.write(0, 7)
        assert reg.read(1) == 7

    def test_last_write_wins(self):
        reg = AtomicRegister("R", owner=0)
        for v in (1, 2, 3):
            reg.write(0, v)
        assert reg.read(1) == 3

    def test_owner_enforced(self):
        reg = AtomicRegister("R", owner=0)
        with pytest.raises(OwnershipError):
            reg.write(1, 5)

    def test_ownership_error_names_register(self):
        reg = AtomicRegister("PROGRESS[3]", owner=3)
        with pytest.raises(OwnershipError, match="PROGRESS"):
            reg.write(0, 1)

    def test_unowned_register_writable_by_anyone(self):
        reg = AtomicRegister("R", owner=None)
        reg.write(0, 1)
        reg.write(5, 2)
        assert reg.read(0) == 2

    def test_anyone_may_read(self):
        reg = AtomicRegister("R", owner=0, initial="x")
        for pid in range(5):
            assert reg.read(pid) == "x"


class TestCountingAndObservers:
    def test_counts(self):
        reg = AtomicRegister("R", owner=0)
        reg.write(0, 1)
        reg.write(0, 2)
        reg.read(1)
        assert reg.write_count == 2
        assert reg.read_count == 1

    def test_peek_not_counted(self):
        reg = AtomicRegister("R", owner=0, initial=9)
        assert reg.peek() == 9
        assert reg.read_count == 0

    def test_poke_not_counted_and_ignores_owner(self):
        reg = AtomicRegister("R", owner=0)
        reg.poke(99)
        assert reg.peek() == 99
        assert reg.write_count == 0

    def test_critical_flag(self):
        assert AtomicRegister("R", owner=0, critical=True).critical
        assert not AtomicRegister("R", owner=0).critical
