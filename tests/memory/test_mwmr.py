"""Multi-writer registers and fetch&add (Section 3.5 variant substrate)."""

from __future__ import annotations

from repro.memory.memory import SharedMemory
from repro.memory.mwmr import MultiWriterRegister


class TestMultiWriterRegister:
    def test_any_writer(self):
        reg = MultiWriterRegister("M")
        reg.write(0, 1)
        reg.write(7, 2)
        assert reg.read(3) == 2

    def test_fetch_add_returns_old(self):
        reg = MultiWriterRegister("M", initial=10)
        assert reg.fetch_add(0) == 10
        assert reg.peek() == 11

    def test_fetch_add_amount(self):
        reg = MultiWriterRegister("M", initial=0)
        reg.fetch_add(0, amount=5)
        assert reg.peek() == 5

    def test_fetch_add_is_atomic_increment_sequence(self):
        reg = MultiWriterRegister("M", initial=0)
        for pid in range(10):
            reg.fetch_add(pid)
        assert reg.peek() == 10

    def test_peek_poke(self):
        reg = MultiWriterRegister("M", initial=0)
        reg.poke(42)
        assert reg.peek() == 42


class TestAccountingIntegration:
    def _memory(self):
        clock = {"t": 0.0}
        return SharedMemory(clock=lambda: clock["t"]), clock

    def test_write_counted(self):
        memory, _ = self._memory()
        reg = memory.create_mwmr("M")
        reg.write(3, 1)
        assert memory.writes_by_pid == {3: 1}

    def test_fetch_add_counts_read_and_write(self):
        memory, _ = self._memory()
        reg = memory.create_mwmr("M")
        reg.fetch_add(2)
        assert memory.writes_by_pid == {2: 1}
        assert memory.reads_by_pid == {2: 1}

    def test_snapshot_includes_mwmr(self):
        memory, _ = self._memory()
        memory.create_mwmr("M", initial=7)
        assert ("M", 7) in memory.snapshot()
