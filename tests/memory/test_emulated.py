"""Unit tests of the ABD quorum emulation (no process runtime)."""

from __future__ import annotations

import pytest

from repro.memory.emulated import EmulatedMemory, EmulationConfig, LINK_MODELS
from repro.memory.register import OwnershipError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def make_memory(seed: int = 7, **knobs):
    """A started EmulatedMemory with one register PROG owned by pid 0."""
    sim = Simulator()
    mem = EmulatedMemory(
        clock=lambda: sim.now,
        sim=sim,
        rng=RngRegistry(seed),
        config=EmulationConfig.from_dict(knobs),
    )
    reg = mem.create_register("PROG", owner=0, initial=0, critical=True)
    mem.start(horizon=10_000.0)
    return sim, mem, reg


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_defaults_round_trip():
    config = EmulationConfig()
    assert EmulationConfig.from_dict(config.to_dict()) == config


def test_config_rejects_unknown_options():
    with pytest.raises(ValueError, match="unknown emulation option"):
        EmulationConfig.from_dict({"replica": 3})


def test_config_rejects_unknown_link_model():
    with pytest.raises(ValueError, match="unknown link model"):
        EmulationConfig(links="carrier-pigeon")


def test_config_rejects_majority_crash():
    with pytest.raises(ValueError, match="minority"):
        EmulationConfig(replicas=3, replica_crash_times=((0, 5.0), (1, 6.0)))


def test_config_minority_crash_allowed():
    config = EmulationConfig(replicas=5, replica_crash_times=((0, 5.0), (1, 6.0)))
    assert config.majority == 3


def test_link_model_registry_covers_adversaries():
    assert {"sync", "timely", "lossy", "gst-ramp"} <= set(LINK_MODELS)


def test_link_model_registry_covers_mutating_faults():
    assert {"corruption", "duplication"} <= set(LINK_MODELS)


def test_config_rejects_unknown_consistency():
    with pytest.raises(ValueError, match="unknown consistency level"):
        EmulationConfig(consistency="sequential")


def test_config_consistency_round_trip():
    config = EmulationConfig(consistency="atomic", record_history=True)
    assert EmulationConfig.from_dict(config.to_dict()) == config
    assert config.to_dict()["consistency"] == "atomic"
    assert config.to_dict()["record_history"] is True


def test_recorder_and_regular_reads_are_the_defaults():
    """Perf profiles must not silently pay for write-backs or history."""
    config = EmulationConfig()
    assert config.consistency == "regular"
    assert config.record_history is False


# ----------------------------------------------------------------------
# Quorum operations
# ----------------------------------------------------------------------
def test_write_completes_on_majority_and_mirrors_locally():
    sim, mem, reg = make_memory()
    done = []
    mem.emu_write(0, reg, 42, done.append)
    assert reg.peek() == 0  # not yet: acks in flight
    sim.run(until=5.0)
    assert done == [None]
    assert reg.peek() == 42  # local mirror updated at quorum time
    assert [rec.value for rec in mem.write_log] == [42]
    assert mem.writes_completed == 1
    # All three replicas eventually hold the value.
    assert all(r.store["PROG"][1] == 42 for r in mem.replicas)


def test_read_returns_latest_completed_write():
    sim, mem, reg = make_memory()
    mem.emu_write(0, reg, 7, lambda _: None)
    sim.run(until=5.0)
    got = []
    mem.emu_read(3, reg, got.append)
    sim.run(until=10.0)
    assert got == [7]
    assert mem.reads_by_pid[3] == 1
    assert reg.read_count == 1  # the per-register counter stays exact


def test_read_of_initial_value():
    sim, mem, reg = make_memory()
    got = []
    mem.emu_read(2, reg, got.append)
    sim.run(until=5.0)
    assert got == [0]


def test_ownership_checked_synchronously():
    sim, mem, reg = make_memory()
    with pytest.raises(OwnershipError):
        mem.emu_write(1, reg, 9, lambda _: None)
    assert mem.total_writes == 0


def test_timestamps_monotone_per_register():
    sim, mem, reg = make_memory()
    for value in (1, 2, 3):
        mem.emu_write(0, reg, value, lambda _: None)
        sim.run(until=sim.now + 5.0)
    ts, stored = mem.replicas[0].store["PROG"]
    assert stored == 3 and ts == (3, 0)


def test_minority_replica_crash_tolerated():
    sim, mem, reg = make_memory(replicas=3, replica_crash_times={"0": 1.0})
    sim.run(until=2.0)  # let the replica crash
    assert mem.live_replicas == 2
    done = []
    mem.emu_write(0, reg, 5, done.append)
    got = []
    mem.emu_read(1, reg, got.append)
    sim.run(until=10.0)
    assert done == [None] and got and got[0] in (0, 5)


def test_lossy_links_complete_via_retransmission():
    sim, mem, reg = make_memory(
        links="lossy",
        link_params={"loss": 0.4, "lo": 0.5, "hi": 2.0, "cap": 4.0},
        retry_interval=5.0,
    )
    done = []
    for value in (1, 2):
        mem.emu_write(0, reg, value, done.append)
        sim.run(until=sim.now + 200.0)
    assert done == [None, None]
    assert reg.peek() == 2


def test_mwmr_write_and_fetch_add():
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(3))
    counter = mem.create_mwmr("SUSP", initial=0)
    mem.start(horizon=1000.0)
    old = []
    mem.emu_fetch_add(1, counter, 1, old.append)
    sim.run(until=10.0)
    mem.emu_fetch_add(2, counter, 1, old.append)
    sim.run(until=20.0)
    assert old == [0, 1]
    assert counter.peek() == 2
    # fetch&add counts one read plus one write, like the shared backend.
    assert mem.total_reads == 2 and mem.total_writes == 2
    done = []
    mem.emu_write(3, counter, 10, done.append)
    sim.run(until=30.0)
    assert done == [None] and counter.peek() == 10


def test_start_twice_rejected():
    sim, mem, _ = make_memory()
    with pytest.raises(RuntimeError, match="already started"):
        mem.start(horizon=1.0)


def test_operations_before_start_rejected():
    """Without replicas an op would hang forever; it must raise instead."""
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(1))
    reg = mem.create_register("R", owner=0, initial=0)
    with pytest.raises(RuntimeError, match="not started"):
        mem.emu_read(0, reg, lambda _: None)
    with pytest.raises(RuntimeError, match="not started"):
        mem.emu_write(0, reg, 1, lambda _: None)


# ----------------------------------------------------------------------
# Atomic consistency level (write-back reads) and the history recorder
# ----------------------------------------------------------------------
def test_atomic_read_runs_a_write_back_phase():
    """An atomic read costs a second round trip and counts a write-back."""
    _, mem_r, reg_r = make_memory()
    _, mem_a, reg_a = make_memory(consistency="atomic")
    for mem, reg in ((mem_r, reg_r), (mem_a, reg_a)):
        mem.emu_write(0, reg, 5, lambda _: None)
        mem._sim.run(until=5.0)
        mem.emu_read(1, reg, lambda _: None)
        mem._sim.run(until=10.0)
    assert mem_r.write_backs == 0
    assert mem_a.write_backs == 1
    # sync links, delta 0.25: one round trip vs two.
    assert mem_r.read_op_latency == pytest.approx(0.5)
    assert mem_a.read_op_latency == pytest.approx(1.0)


def test_atomic_write_back_propagates_to_lagging_replicas():
    """The write-back applies the read value at replicas the original
    write has not reached yet (here: simulated by a fresh value poke on
    a majority only -- the anomaly module pins the full scenario)."""
    sim, mem, reg = make_memory(consistency="atomic", replicas=3)
    mem.emu_write(0, reg, 7, lambda _: None)
    sim.run(until=5.0)
    # Regress one replica by hand: a write-back must repair it.
    mem.replicas[2].store["PROG"] = ((0, -1), 0)
    got = []
    mem.emu_read(1, reg, got.append)
    sim.run(until=10.0)
    assert got == [7]
    assert mem.replicas[2].store["PROG"] == ((1, 0), 7)


def test_atomic_mwmr_read_write_back():
    """The (counter, pid)-stamped multi-writer path write-backs too."""
    sim = Simulator()
    mem = EmulatedMemory(
        clock=lambda: sim.now, sim=sim, rng=RngRegistry(3),
        config=EmulationConfig(consistency="atomic"),
    )
    counter = mem.create_mwmr("SUSP", initial=0)
    mem.start(horizon=1000.0)
    mem.emu_fetch_add(1, counter, 1, lambda _: None)
    sim.run(until=10.0)
    got = []
    mem.emu_read(2, counter, got.append)
    sim.run(until=20.0)
    assert got == [1]
    assert mem.write_backs == 1  # the fetch&add's own write is not one


def test_history_recorder_off_by_default():
    sim, mem, reg = make_memory()
    mem.emu_write(0, reg, 1, lambda _: None)
    sim.run(until=5.0)
    assert mem.op_history == []
    assert mem.recorded_history() == []


def test_history_recorder_records_completed_intervals():
    sim, mem, reg = make_memory(record_history=True)
    mem.emu_write(0, reg, 1, lambda _: None)
    sim.run(until=5.0)
    mem.emu_read(1, reg, lambda _: None)
    sim.run(until=10.0)
    kinds = [(rec.kind, rec.ts, rec.value) for rec in mem.recorded_history()]
    assert kinds == [("write", (1, 0), 1), ("read", (1, 0), 1)]
    write, read = mem.recorded_history()
    assert write.inv == 0.0 and write.resp == pytest.approx(0.5)
    assert read.inv == 5.0 and read.resp == pytest.approx(5.5)


def test_history_recorder_reports_pending_write_as_unresponded():
    """A write still in flight at the end carries resp = inf, so a
    concurrent read returning its timestamp is not a phantom."""
    import math

    sim, mem, reg = make_memory(record_history=True)
    mem.emu_write(0, reg, 1, lambda _: None)  # no sim.run: stays pending
    (pending,) = mem.recorded_history()
    assert pending.kind == "write" and pending.resp == math.inf
    assert mem.op_history == []  # nothing completed


def test_duplication_links_are_absorbed():
    """Duplicate deliveries must not disturb the protocol (idempotent
    timestamped application; completed ops drop late acks)."""
    sim, mem, reg = make_memory(links="duplication", link_params={"rate": 1.0})
    done, got = [], []
    mem.emu_write(0, reg, 9, done.append)
    sim.run(until=10.0)
    mem.emu_read(1, reg, got.append)
    sim.run(until=20.0)
    assert done == [None] and got == [9]
    assert mem.network.behavior.duplicated > 0
    assert reg.peek() == 9 and mem.writes_completed == 1


def test_corruption_links_mutate_values_but_not_timestamps():
    sim, mem, reg = make_memory(links="corruption", link_params={"rate": 1.0})
    done = []
    mem.emu_write(0, reg, 100, done.append)
    sim.run(until=10.0)
    assert done == [None]
    assert mem.network.behavior.corrupted > 0
    ts, value = mem.replicas[0].store["PROG"]
    assert ts == (1, 0)  # the stamp survives; only the value mutates
    assert value != 100


def test_scrambled_initial_values_seed_replicas():
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(5))
    reg = mem.create_register("R", owner=0, initial=0)
    reg.poke(99)  # scenario scrambling happens before start()
    mem.start(horizon=1000.0)
    got = []
    mem.emu_read(1, reg, got.append)
    sim.run(until=5.0)
    assert got == [99]
