"""Unit tests of the ABD quorum emulation (no process runtime)."""

from __future__ import annotations

import pytest

from repro.memory.emulated import EmulatedMemory, EmulationConfig, LINK_MODELS
from repro.memory.register import OwnershipError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def make_memory(seed: int = 7, **knobs):
    """A started EmulatedMemory with one register PROG owned by pid 0."""
    sim = Simulator()
    mem = EmulatedMemory(
        clock=lambda: sim.now,
        sim=sim,
        rng=RngRegistry(seed),
        config=EmulationConfig.from_dict(knobs),
    )
    reg = mem.create_register("PROG", owner=0, initial=0, critical=True)
    mem.start(horizon=10_000.0)
    return sim, mem, reg


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_defaults_round_trip():
    config = EmulationConfig()
    assert EmulationConfig.from_dict(config.to_dict()) == config


def test_config_rejects_unknown_options():
    with pytest.raises(ValueError, match="unknown emulation option"):
        EmulationConfig.from_dict({"replica": 3})


def test_config_rejects_unknown_link_model():
    with pytest.raises(ValueError, match="unknown link model"):
        EmulationConfig(links="carrier-pigeon")


def test_config_rejects_majority_crash():
    with pytest.raises(ValueError, match="minority"):
        EmulationConfig(replicas=3, replica_crash_times=((0, 5.0), (1, 6.0)))


def test_config_minority_crash_allowed():
    config = EmulationConfig(replicas=5, replica_crash_times=((0, 5.0), (1, 6.0)))
    assert config.majority == 3


def test_link_model_registry_covers_adversaries():
    assert {"sync", "timely", "lossy", "gst-ramp"} <= set(LINK_MODELS)


# ----------------------------------------------------------------------
# Quorum operations
# ----------------------------------------------------------------------
def test_write_completes_on_majority_and_mirrors_locally():
    sim, mem, reg = make_memory()
    done = []
    mem.emu_write(0, reg, 42, done.append)
    assert reg.peek() == 0  # not yet: acks in flight
    sim.run(until=5.0)
    assert done == [None]
    assert reg.peek() == 42  # local mirror updated at quorum time
    assert [rec.value for rec in mem.write_log] == [42]
    assert mem.writes_completed == 1
    # All three replicas eventually hold the value.
    assert all(r.store["PROG"][1] == 42 for r in mem.replicas)


def test_read_returns_latest_completed_write():
    sim, mem, reg = make_memory()
    mem.emu_write(0, reg, 7, lambda _: None)
    sim.run(until=5.0)
    got = []
    mem.emu_read(3, reg, got.append)
    sim.run(until=10.0)
    assert got == [7]
    assert mem.reads_by_pid[3] == 1
    assert reg.read_count == 1  # the per-register counter stays exact


def test_read_of_initial_value():
    sim, mem, reg = make_memory()
    got = []
    mem.emu_read(2, reg, got.append)
    sim.run(until=5.0)
    assert got == [0]


def test_ownership_checked_synchronously():
    sim, mem, reg = make_memory()
    with pytest.raises(OwnershipError):
        mem.emu_write(1, reg, 9, lambda _: None)
    assert mem.total_writes == 0


def test_timestamps_monotone_per_register():
    sim, mem, reg = make_memory()
    for value in (1, 2, 3):
        mem.emu_write(0, reg, value, lambda _: None)
        sim.run(until=sim.now + 5.0)
    ts, stored = mem.replicas[0].store["PROG"]
    assert stored == 3 and ts == (3, 0)


def test_minority_replica_crash_tolerated():
    sim, mem, reg = make_memory(replicas=3, replica_crash_times={"0": 1.0})
    sim.run(until=2.0)  # let the replica crash
    assert mem.live_replicas == 2
    done = []
    mem.emu_write(0, reg, 5, done.append)
    got = []
    mem.emu_read(1, reg, got.append)
    sim.run(until=10.0)
    assert done == [None] and got and got[0] in (0, 5)


def test_lossy_links_complete_via_retransmission():
    sim, mem, reg = make_memory(
        links="lossy",
        link_params={"loss": 0.4, "lo": 0.5, "hi": 2.0, "cap": 4.0},
        retry_interval=5.0,
    )
    done = []
    for value in (1, 2):
        mem.emu_write(0, reg, value, done.append)
        sim.run(until=sim.now + 200.0)
    assert done == [None, None]
    assert reg.peek() == 2


def test_mwmr_write_and_fetch_add():
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(3))
    counter = mem.create_mwmr("SUSP", initial=0)
    mem.start(horizon=1000.0)
    old = []
    mem.emu_fetch_add(1, counter, 1, old.append)
    sim.run(until=10.0)
    mem.emu_fetch_add(2, counter, 1, old.append)
    sim.run(until=20.0)
    assert old == [0, 1]
    assert counter.peek() == 2
    # fetch&add counts one read plus one write, like the shared backend.
    assert mem.total_reads == 2 and mem.total_writes == 2
    done = []
    mem.emu_write(3, counter, 10, done.append)
    sim.run(until=30.0)
    assert done == [None] and counter.peek() == 10


def test_start_twice_rejected():
    sim, mem, _ = make_memory()
    with pytest.raises(RuntimeError, match="already started"):
        mem.start(horizon=1.0)


def test_operations_before_start_rejected():
    """Without replicas an op would hang forever; it must raise instead."""
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(1))
    reg = mem.create_register("R", owner=0, initial=0)
    with pytest.raises(RuntimeError, match="not started"):
        mem.emu_read(0, reg, lambda _: None)
    with pytest.raises(RuntimeError, match="not started"):
        mem.emu_write(0, reg, 1, lambda _: None)


def test_scrambled_initial_values_seed_replicas():
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=RngRegistry(5))
    reg = mem.create_register("R", owner=0, initial=0)
    reg.poke(99)  # scenario scrambling happens before start()
    mem.start(horizon=1000.0)
    got = []
    mem.emu_read(1, reg, got.append)
    sim.run(until=5.0)
    assert got == [99]
