"""Value-integrity cross-check: quorum certificates carry values.

The ROADMAP's carried-over gap: the history audit compared *timestamps*
only, so a corrupted value travelling under a valid timestamp passed
every audit rule while breaking Theorem 1.  Two mechanisms close it:

* write-acks echo the value the replica received, and the writer counts
  mismatches (``EmulatedMemory.integrity_violations``);
* the interval checkers gain a ``value-corruption`` rule comparing each
  read's returned value against the recorded write of the same
  timestamp.
"""

from __future__ import annotations

from repro.memory.emulated import EmuOpRecord
from repro.memory.linearizability import check_atomic_history, check_regular_history
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import nominal_emulated


def _rec(kind, ts, inv, resp, value, pid=0, reg="R"):
    return EmuOpRecord(
        op_id=0, kind=kind, pid=pid, register=reg, ts=ts, value=value, inv=inv, resp=resp
    )


class TestCheckerValueRule:
    def test_value_mismatch_at_matching_timestamp_is_flagged(self):
        history = [
            _rec("write", (1, 0), 0.0, 1.0, value=7),
            _rec("read", (1, 0), 2.0, 3.0, value=8, pid=1),
        ]
        report = check_regular_history(history)
        assert not report.ok
        assert [v.rule for v in report.violations] == ["value-corruption"]
        assert "returned value 8" in report.violations[0].detail

    def test_matching_value_passes(self):
        history = [
            _rec("write", (1, 0), 0.0, 1.0, value=7),
            _rec("read", (1, 0), 2.0, 3.0, value=7, pid=1),
        ]
        assert check_regular_history(history).ok
        assert check_atomic_history(history).ok

    def test_the_timestamp_only_rules_alone_miss_the_corruption(self):
        """The exact hole being closed: a valid-timestamp read with a
        mutated value trips no other rule."""
        history = [
            _rec("write", (1, 0), 0.0, 1.0, value=7),
            _rec("read", (1, 0), 2.0, 3.0, value=999, pid=1),
        ]
        report = check_atomic_history(history)
        assert {v.rule for v in report.violations} == {"value-corruption"}

    def test_initial_value_reads_are_not_cross_checked(self):
        # Timestamp (0, -1) has no recorded write; the read returns the
        # register's initial value, which the recorder cannot name.
        history = [_rec("read", (0, -1), 0.0, 1.0, value=0)]
        assert check_regular_history(history).ok


class TestEndToEndDetection:
    def test_corrupting_links_trip_the_ack_cross_check(self):
        scen = nominal_emulated(n=4, links="corruption")
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.network.behavior.corrupted > 0
        assert result.memory.integrity_violations > 0

    def test_corrupting_links_fail_the_audit_via_the_value_rule_only(self):
        """Pin the division of labour: corruption never touches the
        timestamps (the trailing payload element is the value), so every
        audit violation comes from the value cross-check."""
        scen = nominal_emulated(n=4, links="corruption")
        scen.emulation = {**scen.emulation, "record_history": True}
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        audit = result.audit_consistency()
        assert audit is not None and not audit.ok
        assert {v.rule for v in audit.violations} == {"value-corruption"}

    def test_clean_fabric_has_zero_integrity_violations(self):
        scen = nominal_emulated(n=4)
        scen.emulation = {**scen.emulation, "record_history": True}
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.integrity_violations == 0
        audit = result.audit_consistency()
        assert audit is not None and audit.ok

    def test_duplication_links_stay_integrity_clean(self):
        """Duplicate deliveries replay identical payloads: the
        cross-check must not misread them as corruption."""
        scen = nominal_emulated(n=4, links="duplication")
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        assert result.memory.network.behavior.duplicated > 0
        assert result.memory.integrity_violations == 0
