"""The memory-backend layer: protocol conformance and the factory."""

from __future__ import annotations

import pytest

from repro.memory.backend import BACKENDS, MemoryBackend, create_memory
from repro.memory.emulated import EmulatedMemory
from repro.memory.memory import SharedMemory
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def test_registry_names():
    assert set(BACKENDS) == {"shared", "emulated"}


def test_shared_memory_implements_protocol():
    mem = SharedMemory(clock=lambda: 0.0)
    assert isinstance(mem, MemoryBackend)


def test_emulated_memory_implements_protocol(rng):
    sim = Simulator()
    mem = EmulatedMemory(clock=lambda: sim.now, sim=sim, rng=rng)
    assert isinstance(mem, MemoryBackend)


def test_factory_builds_shared():
    mem = create_memory("shared", clock=lambda: 0.0, log_reads=False)
    assert type(mem) is SharedMemory
    assert mem.log_reads is False


def test_factory_builds_emulated(rng):
    sim = Simulator()
    mem = create_memory(
        "emulated",
        clock=lambda: sim.now,
        sim=sim,
        rng=rng,
        emulation={"replicas": 5},
    )
    assert isinstance(mem, EmulatedMemory)
    assert mem.config.replicas == 5
    assert mem.config.majority == 3


def test_factory_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown memory backend"):
        create_memory("quantum", clock=lambda: 0.0)


def test_factory_rejects_dead_emulation_options():
    with pytest.raises(ValueError, match="backend is 'shared'"):
        create_memory("shared", clock=lambda: 0.0, emulation={"replicas": 5})


def test_factory_emulated_needs_sim_and_rng():
    with pytest.raises(ValueError, match="simulator and RNG"):
        create_memory("emulated", clock=lambda: 0.0)
