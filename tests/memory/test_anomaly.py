"""The pinned regular-vs-atomic anomaly (the positive/negative pair).

The acceptance pair of the consistency-level subsystem: one
deterministic schedule whose regular-level history is genuinely
non-atomic (flagged by the atomic checker, passed by the regularity
checker) and whose atomic-level twin -- same timing, write-back reads --
is linearizable.  If either side ever flips, either the emulation or a
checker broke.
"""

from __future__ import annotations

from repro.memory.anomaly import FAST, FAST_PAIRS, SLOW, PartitionedLinks, anomaly_history
from repro.memory.linearizability import check_atomic_history, check_regular_history
from repro.netsim.network import Message


class TestPinnedPair:
    def test_regular_history_is_regular_but_not_atomic(self):
        history = anomaly_history("regular")
        assert check_regular_history(history).ok
        report = check_atomic_history(history)
        assert not report.ok
        assert [v.rule for v in report.violations] == ["new-old-inversion"]

    def test_atomic_history_is_linearizable(self):
        history = anomaly_history("atomic")
        assert check_atomic_history(history).ok
        assert check_regular_history(history).ok

    def test_inversion_shape(self):
        """The anomaly is the textbook one: reader 1 sees the in-flight
        write, reader 2 (strictly later) sees the initial value."""
        by_pid = {rec.pid: rec for rec in anomaly_history("regular") if rec.kind == "read"}
        assert by_pid[1].value == 1 and by_pid[2].value == 0
        assert by_pid[1].resp < by_pid[2].inv  # non-overlapping reads

    def test_write_back_carries_the_value_to_the_shared_replica(self):
        """At the atomic level reader 2 must see the new value (the
        write-back's majority intersects its own in replica 2)."""
        by_pid = {rec.pid: rec for rec in anomaly_history("atomic") if rec.kind == "read"}
        assert by_pid[1].value == 1 and by_pid[2].value == 1

    def test_deterministic(self):
        assert anomaly_history("regular") == anomaly_history("regular")
        assert anomaly_history("atomic") == anomaly_history("atomic")


class TestPartitionedLinks:
    def _delay(self, links, sender, receiver):
        return links.delivery_delay(
            Message(sender=sender, receiver=receiver, kind="k", payload=(), sent_at=0.0)
        )

    def test_fast_pairs_are_fast_both_directions(self):
        links = PartitionedLinks()
        for client, replica in FAST_PAIRS:
            node = -(replica + 1)
            assert self._delay(links, client, node) == FAST
            assert self._delay(links, node, client) == FAST

    def test_other_pairs_are_slow(self):
        links = PartitionedLinks()
        assert self._delay(links, 0, -5) == SLOW  # writer to replica 4
        assert self._delay(links, 2, -1) == SLOW  # reader 2 to replica 0
