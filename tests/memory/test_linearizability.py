"""The single-writer linearizability checker.

The checker must accept every history the disk model can actually
produce (validated end-to-end by the SAN tests) and reject each of the
three classical violations; hypothesis generates random *legal*
schedules to probe for false positives.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.disk import DiskOpRecord
from repro.memory.linearizability import check_single_writer_history


def write(version: int, inv: float, resp: float, pid: int = 0, reg: str = "R") -> DiskOpRecord:
    return DiskOpRecord(
        op_id=version, kind="write", pid=pid, register=reg, version=version,
        inv=inv, lin=(inv + resp) / 2, resp=resp,
    )


def read(version: int, inv: float, resp: float, pid: int = 1, reg: str = "R") -> DiskOpRecord:
    return DiskOpRecord(
        op_id=1000 + int(inv * 10), kind="read", pid=pid, register=reg, version=version,
        inv=inv, lin=(inv + resp) / 2, resp=resp,
    )


class TestAccepts:
    def test_empty_history(self):
        assert check_single_writer_history([]).ok

    def test_sequential_history(self):
        history = [
            write(0, 0.0, 1.0),
            read(0, 2.0, 3.0),
            write(1, 4.0, 5.0),
            read(1, 6.0, 7.0),
        ]
        assert check_single_writer_history(history).ok

    def test_read_overlapping_write_may_see_either(self):
        history_old = [write(0, 0.0, 1.0), write(1, 2.0, 4.0), read(0, 2.5, 3.0)]
        history_new = [write(0, 0.0, 1.0), write(1, 2.0, 4.0), read(1, 2.5, 3.0)]
        assert check_single_writer_history(history_old).ok
        assert check_single_writer_history(history_new).ok

    def test_initial_value_read(self):
        assert check_single_writer_history([read(-1, 0.0, 1.0), write(0, 2.0, 3.0)]).ok

    def test_multiple_registers_independent(self):
        history = [
            write(0, 0.0, 1.0, reg="A"),
            write(0, 0.0, 1.0, reg="B"),
            read(0, 2.0, 3.0, reg="A"),
            read(0, 2.0, 3.0, reg="B"),
        ]
        report = check_single_writer_history(history)
        assert report.ok
        assert report.registers_checked == 2

    def test_summary_mentions_counts(self):
        report = check_single_writer_history([write(0, 0.0, 1.0)])
        assert "1 ops" in report.summary()


class TestRejects:
    def test_read_from_future(self):
        history = [write(0, 0.0, 1.0), read(1, 2.0, 3.0), write(1, 5.0, 6.0)]
        report = check_single_writer_history(history)
        assert not report.ok
        assert any(v.rule == "read-from-future" for v in report.violations)

    def test_stale_read(self):
        # Version 1's write responded at 3.0; a read starting at 4.0
        # must not return version 0.
        history = [write(0, 0.0, 1.0), write(1, 2.0, 3.0), read(0, 4.0, 5.0)]
        report = check_single_writer_history(history)
        assert not report.ok
        assert any(v.rule == "stale-read" for v in report.violations)

    def test_new_old_inversion(self):
        history = [
            write(0, 0.0, 1.0),
            write(1, 2.0, 3.0),
            read(1, 3.5, 4.0),
            read(0, 5.0, 6.0, pid=2),
        ]
        report = check_single_writer_history(history)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "new-old-inversion" in rules or "stale-read" in rules

    def test_phantom_version(self):
        report = check_single_writer_history([read(7, 0.0, 1.0)])
        assert not report.ok
        assert any(v.rule == "phantom-read" for v in report.violations)

    def test_version_gap(self):
        history = [write(0, 0.0, 1.0), write(2, 2.0, 3.0)]
        report = check_single_writer_history(history)
        assert not report.ok

    def test_out_of_program_order_writes(self):
        history = [write(0, 5.0, 6.0), write(1, 0.0, 1.0)]
        report = check_single_writer_history(history)
        assert not report.ok


class TestNoFalsePositivesOnLegalSchedules:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 12))
    def test_random_sequential_consistent_histories_accepted(self, seed, ops):
        """Generate a truly sequential schedule (non-overlapping ops in
        execution order) -- always linearizable."""
        import random

        rng = random.Random(seed)
        history = []
        t = 0.0
        version = -1
        for _ in range(ops):
            dur = rng.uniform(0.1, 2.0)
            if rng.random() < 0.5:
                version += 1
                history.append(write(version, t, t + dur))
            else:
                history.append(read(version, t, t + dur, pid=rng.randrange(1, 4)))
            t += dur + rng.uniform(0.01, 1.0)
        assert check_single_writer_history(history).ok
