"""The history checkers: single-writer versions and timestamped intervals.

The single-writer checker must accept every history the disk model can
actually produce (validated end-to-end by the SAN tests) and reject
each of the three classical violations; hypothesis generates random
*legal* schedules to probe for false positives.  The timestamped
interval checkers (the ABD emulation's auditors) must split Lamport's
hierarchy correctly: regularity = conditions 1-2, atomicity adds the
new/old-inversion rule.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.disk import DiskOpRecord
from repro.memory.emulated import EmuOpRecord
from repro.memory.linearizability import (
    check_atomic_history,
    check_regular_history,
    check_single_writer_history,
)


def write(version: int, inv: float, resp: float, pid: int = 0, reg: str = "R") -> DiskOpRecord:
    return DiskOpRecord(
        op_id=version, kind="write", pid=pid, register=reg, version=version,
        inv=inv, lin=(inv + resp) / 2, resp=resp,
    )


def read(version: int, inv: float, resp: float, pid: int = 1, reg: str = "R") -> DiskOpRecord:
    return DiskOpRecord(
        op_id=1000 + int(inv * 10), kind="read", pid=pid, register=reg, version=version,
        inv=inv, lin=(inv + resp) / 2, resp=resp,
    )


class TestAccepts:
    def test_empty_history(self):
        assert check_single_writer_history([]).ok

    def test_sequential_history(self):
        history = [
            write(0, 0.0, 1.0),
            read(0, 2.0, 3.0),
            write(1, 4.0, 5.0),
            read(1, 6.0, 7.0),
        ]
        assert check_single_writer_history(history).ok

    def test_read_overlapping_write_may_see_either(self):
        history_old = [write(0, 0.0, 1.0), write(1, 2.0, 4.0), read(0, 2.5, 3.0)]
        history_new = [write(0, 0.0, 1.0), write(1, 2.0, 4.0), read(1, 2.5, 3.0)]
        assert check_single_writer_history(history_old).ok
        assert check_single_writer_history(history_new).ok

    def test_initial_value_read(self):
        assert check_single_writer_history([read(-1, 0.0, 1.0), write(0, 2.0, 3.0)]).ok

    def test_multiple_registers_independent(self):
        history = [
            write(0, 0.0, 1.0, reg="A"),
            write(0, 0.0, 1.0, reg="B"),
            read(0, 2.0, 3.0, reg="A"),
            read(0, 2.0, 3.0, reg="B"),
        ]
        report = check_single_writer_history(history)
        assert report.ok
        assert report.registers_checked == 2

    def test_summary_mentions_counts(self):
        report = check_single_writer_history([write(0, 0.0, 1.0)])
        assert "1 ops" in report.summary()


class TestRejects:
    def test_read_from_future(self):
        history = [write(0, 0.0, 1.0), read(1, 2.0, 3.0), write(1, 5.0, 6.0)]
        report = check_single_writer_history(history)
        assert not report.ok
        assert any(v.rule == "read-from-future" for v in report.violations)

    def test_stale_read(self):
        # Version 1's write responded at 3.0; a read starting at 4.0
        # must not return version 0.
        history = [write(0, 0.0, 1.0), write(1, 2.0, 3.0), read(0, 4.0, 5.0)]
        report = check_single_writer_history(history)
        assert not report.ok
        assert any(v.rule == "stale-read" for v in report.violations)

    def test_new_old_inversion(self):
        history = [
            write(0, 0.0, 1.0),
            write(1, 2.0, 3.0),
            read(1, 3.5, 4.0),
            read(0, 5.0, 6.0, pid=2),
        ]
        report = check_single_writer_history(history)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "new-old-inversion" in rules or "stale-read" in rules

    def test_phantom_version(self):
        report = check_single_writer_history([read(7, 0.0, 1.0)])
        assert not report.ok
        assert any(v.rule == "phantom-read" for v in report.violations)

    def test_version_gap(self):
        history = [write(0, 0.0, 1.0), write(2, 2.0, 3.0)]
        report = check_single_writer_history(history)
        assert not report.ok

    def test_out_of_program_order_writes(self):
        history = [write(0, 5.0, 6.0), write(1, 0.0, 1.0)]
        report = check_single_writer_history(history)
        assert not report.ok


class TestReportEdgeCases:
    def test_empty_history_summary_is_explicitly_vacuous(self):
        """An empty history must not read like checked evidence."""
        report = check_single_writer_history([])
        assert report.ok
        assert "empty history" in report.summary()
        assert "no operations" in report.summary()

    def test_long_violation_list_states_elision(self):
        history = [write(0, 0.0, 1.0)] + [
            read(7, 2.0 + i, 3.0 + i) for i in range(15)
        ]
        report = check_single_writer_history(history)
        assert not report.ok
        assert "... and 5 more" in report.summary()

    def test_equal_version_writes_report_cleanly(self):
        """Two writes claiming one version: one clean duplicate-version
        violation each extra claimant, no version-gap cascade, no raw
        record reprs in the detail text."""
        history = [write(0, 0.0, 1.0), write(0, 2.0, 3.0), write(1, 4.0, 5.0)]
        report = check_single_writer_history(history)
        assert not report.ok
        rules = [v.rule for v in report.violations]
        assert rules.count("duplicate-version") == 1
        assert "version-gap" not in rules and "program-order" not in rules
        assert all("DiskOpRecord" not in v.detail for v in report.violations)

    def test_version_gap_detail_names_expected_and_found(self):
        report = check_single_writer_history([write(0, 0.0, 1.0), write(2, 2.0, 3.0)])
        gap = next(v for v in report.violations if v.rule == "version-gap")
        assert "expected 1" in gap.detail and "found 2" in gap.detail


# ----------------------------------------------------------------------
# Timestamped interval histories (the emulation's recorder shape)
# ----------------------------------------------------------------------
def ewrite(ts, inv, resp, pid=0, reg="R", value=1):
    return EmuOpRecord(
        op_id=int(inv * 10), kind="write", pid=pid, register=reg,
        ts=ts, value=value, inv=inv, resp=resp,
    )


def eread(ts, inv, resp, pid=1, reg="R", value=1):
    return EmuOpRecord(
        op_id=1000 + int(inv * 10), kind="read", pid=pid, register=reg,
        ts=ts, value=value, inv=inv, resp=resp,
    )


INITIAL = (0, -1)


class TestIntervalCheckersAccept:
    def test_empty_history(self):
        assert check_atomic_history([]).ok
        assert check_regular_history([]).ok

    def test_sequential_history(self):
        history = [
            ewrite((1, 0), 0.0, 1.0),
            eread((1, 0), 2.0, 3.0),
            ewrite((2, 0), 4.0, 5.0),
            eread((2, 0), 6.0, 7.0),
        ]
        assert check_atomic_history(history).ok

    def test_initial_value_read(self):
        assert check_atomic_history([eread(INITIAL, 0.0, 1.0), ewrite((1, 0), 2.0, 3.0)]).ok

    def test_read_overlapping_write_may_see_either(self):
        base = [ewrite((1, 0), 0.0, 1.0), ewrite((2, 0), 2.0, 6.0)]
        assert check_atomic_history(base + [eread((1, 0), 3.0, 4.0)]).ok
        assert check_atomic_history(base + [eread((2, 0), 3.0, 4.0)]).ok

    def test_pending_write_never_counts_as_completed(self):
        """A write with resp = inf (in flight at the horizon) can be
        read concurrently but never triggers the stale-read rule."""
        history = [ewrite((1, 0), 0.0, math.inf), eread((1, 0), 2.0, 3.0),
                   eread(INITIAL, 4.0, 5.0)]
        assert check_regular_history(history).ok

    def test_multi_writer_timestamps(self):
        """(counter, pid) stamps from different writers are ordered
        lexicographically, like the mwmr emulation produces them."""
        history = [
            ewrite((1, 1), 0.0, 1.0, pid=1),
            ewrite((1, 2), 0.5, 1.5, pid=2),
            eread((1, 2), 2.0, 3.0),
        ]
        assert check_atomic_history(history).ok


class TestIntervalCheckersReject:
    def test_read_from_future_fails_both_levels(self):
        history = [eread((1, 0), 0.0, 1.0), ewrite((1, 0), 2.0, 3.0)]
        for checker in (check_atomic_history, check_regular_history):
            report = checker(history)
            assert any(v.rule == "read-from-future" for v in report.violations)

    def test_stale_read_fails_both_levels(self):
        history = [ewrite((1, 0), 0.0, 1.0), ewrite((2, 0), 2.0, 3.0),
                   eread((1, 0), 4.0, 5.0)]
        for checker in (check_atomic_history, check_regular_history):
            assert not checker(history).ok

    def test_new_old_inversion_splits_the_levels(self):
        """The defining difference: regular permits it, atomic forbids it."""
        history = [
            ewrite((2, 0), 0.0, 10.0),  # slow write, concurrent with both reads
            ewrite((1, 0), -2.0, -1.0),
            eread((2, 0), 1.0, 2.0),
            eread((1, 0), 3.0, 4.0, pid=2),
        ]
        assert check_regular_history(history).ok
        report = check_atomic_history(history)
        assert not report.ok
        assert any(v.rule == "new-old-inversion" for v in report.violations)

    def test_phantom_timestamp(self):
        report = check_atomic_history([eread((9, 9), 0.0, 1.0)])
        assert any(v.rule == "phantom-read" for v in report.violations)

    def test_duplicate_timestamp_reported_cleanly(self):
        history = [ewrite((1, 0), 0.0, 1.0), ewrite((1, 0), 2.0, 3.0)]
        report = check_atomic_history(history)
        assert [v.rule for v in report.violations] == ["duplicate-timestamp"]
        assert "EmuOpRecord" not in report.violations[0].detail


class TestNoFalsePositivesOnLegalSchedules:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 12))
    def test_random_sequential_consistent_histories_accepted(self, seed, ops):
        """Generate a truly sequential schedule (non-overlapping ops in
        execution order) -- always linearizable."""
        import random

        rng = random.Random(seed)
        history = []
        t = 0.0
        version = -1
        for _ in range(ops):
            dur = rng.uniform(0.1, 2.0)
            if rng.random() < 0.5:
                version += 1
                history.append(write(version, t, t + dur))
            else:
                history.append(read(version, t, t + dur, pid=rng.randrange(1, 4)))
            t += dur + rng.uniform(0.01, 1.0)
        assert check_single_writer_history(history).ok
