"""Scenario library: construction, determinism, knobs."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.workloads.scenarios import (
    all_but_one,
    awb_only,
    capped_timers,
    cascade,
    chaotic_timers,
    ev_sync,
    leader_crash,
    nominal,
    san,
    scrambled,
    slow_leader_awb,
)

ALL_SCENARIO_FACTORIES = [
    nominal,
    chaotic_timers,
    leader_crash,
    cascade,
    all_but_one,
    awb_only,
    ev_sync,
    scrambled,
    san,
    capped_timers,
    slow_leader_awb,
]


class TestConstruction:
    @pytest.mark.parametrize("factory", ALL_SCENARIO_FACTORIES, ids=lambda f: f.__name__)
    def test_builds_a_run(self, factory):
        scen = factory()
        run = scen.build(WriteEfficientOmega, seed=0)
        assert run.n == scen.n
        assert run.horizon == scen.horizon

    @pytest.mark.parametrize("factory", ALL_SCENARIO_FACTORIES, ids=lambda f: f.__name__)
    def test_names_unique_and_descriptive(self, factory):
        scen = factory()
        assert scen.name
        assert scen.description

    def test_leader_crash_has_crash_plan(self):
        run = leader_crash(n=4).build(WriteEfficientOmega, seed=0)
        assert run.crash_plan.faulty == frozenset({0})

    def test_all_but_one_leaves_survivor(self):
        run = all_but_one(n=5, survivor=3).build(WriteEfficientOmega, seed=0)
        assert run.crash_plan.correct == frozenset({3})

    def test_san_attaches_disk(self):
        run = san(n=3).build(WriteEfficientOmega, seed=0)
        assert run.disk is not None

    def test_nominal_has_no_disk(self):
        run = nominal(n=3).build(WriteEfficientOmega, seed=0)
        assert run.disk is None

    def test_overrides_win(self):
        run = nominal(n=3).build(WriteEfficientOmega, seed=0, horizon=123.0)
        assert run.horizon == 123.0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        scen = nominal(n=3, horizon=1500.0)
        a = scen.run(WriteEfficientOmega, seed=5)
        b = scen.run(WriteEfficientOmega, seed=5)
        assert a.trace.leader_samples() == b.trace.leader_samples()

    def test_scramble_applies_before_start(self):
        scen = scrambled(n=3)
        run = scen.build(WriteEfficientOmega, seed=1)
        # The algorithm's local copies must match the scrambled values.
        for alg in run.algorithms:
            assert alg._my_suspicions == [
                run.memory.register(f"SUSPICIONS[{alg.pid}][{k}]").peek() for k in range(3)
            ]
