"""Scenario library: construction, determinism, knobs."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.workloads.scenarios import (
    ablation,
    all_but_one,
    async_bursts,
    awb_only,
    capped_timers,
    cascade,
    chaotic_timers,
    ev_sync,
    gst_ramp,
    leader_crash,
    leader_storm,
    near_all_cascade,
    nominal,
    san,
    scrambled,
    slow_leader_awb,
    timely_churn,
)

ALL_SCENARIO_FACTORIES = [
    nominal,
    chaotic_timers,
    leader_crash,
    cascade,
    all_but_one,
    awb_only,
    ev_sync,
    scrambled,
    san,
    capped_timers,
    slow_leader_awb,
    leader_storm,
    gst_ramp,
    async_bursts,
    near_all_cascade,
    timely_churn,
]


class TestConstruction:
    @pytest.mark.parametrize("factory", ALL_SCENARIO_FACTORIES, ids=lambda f: f.__name__)
    def test_builds_a_run(self, factory):
        scen = factory()
        run = scen.build(WriteEfficientOmega, seed=0)
        assert run.n == scen.n
        assert run.horizon == scen.horizon

    @pytest.mark.parametrize("factory", ALL_SCENARIO_FACTORIES, ids=lambda f: f.__name__)
    def test_names_unique_and_descriptive(self, factory):
        scen = factory()
        assert scen.name
        assert scen.description

    def test_leader_crash_has_crash_plan(self):
        run = leader_crash(n=4).build(WriteEfficientOmega, seed=0)
        assert run.crash_plan.faulty == frozenset({0})

    def test_all_but_one_leaves_survivor(self):
        run = all_but_one(n=5, survivor=3).build(WriteEfficientOmega, seed=0)
        assert run.crash_plan.correct == frozenset({3})

    def test_san_attaches_disk(self):
        run = san(n=3).build(WriteEfficientOmega, seed=0)
        assert run.disk is not None

    def test_nominal_has_no_disk(self):
        run = nominal(n=3).build(WriteEfficientOmega, seed=0)
        assert run.disk is None

    def test_overrides_win(self):
        run = nominal(n=3).build(WriteEfficientOmega, seed=0, horizon=123.0)
        assert run.horizon == 123.0


class TestAdversarialSuite:
    def test_leader_storm_targets_lexmin_favourites(self):
        run = leader_storm(n=5, crashes=3).build(WriteEfficientOmega, seed=0)
        # The storm kills the next-in-line lexmin candidates, in order.
        assert run.crash_plan.faulty == frozenset({0, 1, 2})
        times = [run.crash_plan.crash_time(pid) for pid in (0, 1, 2)]
        assert times == sorted(times)
        # Bursts of 2: pids 0 and 1 die in the same storm, pid 2 later.
        assert times[1] - times[0] < times[2] - times[1]

    def test_near_all_cascade_leaves_requested_survivors(self):
        run = near_all_cascade(n=6, survivors=2).build(WriteEfficientOmega, seed=0)
        assert run.crash_plan.correct == frozenset({4, 5})

    def test_near_all_cascade_validates_survivors(self):
        with pytest.raises(ValueError):
            near_all_cascade(n=4, survivors=0)

    def test_assumption_declarations(self):
        # The property checkers trust these: AWB-satisfying adversaries
        # declare "awb", the AWB2-violating scenario declares "none",
        # and only ev_sync promises full eventual synchrony.
        for factory in (leader_storm, gst_ramp, async_bursts, near_all_cascade,
                        timely_churn, awb_only, nominal):
            assert factory().assumption == "awb", factory.__name__
        assert ev_sync().assumption == "ev-sync"
        assert capped_timers().assumption == "none"

    def test_ablation_assumption_follows_timeout_policy(self):
        assert ablation().assumption == "awb"
        assert ablation(timeout_policy="max").assumption == "awb"
        assert ablation(timeout_policy="sum").assumption == "none"
        assert ablation(timeout_policy="const", const_timeout=4.0).assumption == "none"
        assert ablation(f_kind="log", assumption="none").assumption == "none"

    def test_factories_are_engine_rebuildable(self):
        # Every adversarial factory must attach a picklable ref so the
        # parallel engine can rebuild it inside worker processes.
        from repro.workloads.registry import build_scenario

        for factory in (leader_storm, gst_ramp, async_bursts,
                        near_all_cascade, timely_churn):
            scen = factory()
            name, kwargs = scen.ref
            rebuilt = build_scenario(name, kwargs)
            for field in ("name", "n", "horizon", "margin", "assumption"):
                assert getattr(rebuilt, field) == getattr(scen, field), factory.__name__


class TestConsistencyFamily:
    def test_recorder_off_in_the_factories_perf_profiles_consume(self):
        """The perf profiles run `nominal-emulated`; its factory must
        keep both the write-back phase and the history recorder off so
        the benchmarked protocol stays the regular single-phase one."""
        from repro.memory.emulated import EmulationConfig
        from repro.workloads.registry import build_scenario

        scen = build_scenario("nominal-emulated", {"n": 8})
        config = EmulationConfig.from_dict(scen.emulation)
        assert scen.consistency is None  # defer to the emulation dict
        assert config.record_history is False and config.consistency == "regular"

    def test_emulation_dict_consistency_key_is_honoured(self):
        """A hand-built scenario may set the level through the emulation
        dict alone; the field default must defer, not clobber it."""
        from repro.core.algorithm1 import WriteEfficientOmega
        from repro.workloads.scenarios import Scenario

        scen = Scenario(
            name="hand",
            n=3,
            horizon=100.0,
            memory="emulated",
            emulation={"consistency": "atomic"},
        )
        run = scen.build(WriteEfficientOmega, seed=0)
        assert run.memory.config.consistency == "atomic"

    def test_recorder_on_in_the_atomic_check_scenarios(self):
        """`repro check`'s atomic cells must actually record, or the
        audit would be vacuous."""
        from repro.cli import CHECK_SCENARIOS
        from repro.memory.emulated import EmulationConfig
        from repro.workloads.registry import build_scenario

        for name in ("nominal-emulated-atomic", "replica-crash-atomic"):
            assert name in CHECK_SCENARIOS
            scen = build_scenario(name, {})
            assert scen.consistency == "atomic"
            assert EmulationConfig.from_dict(scen.emulation).record_history is True

    def test_atomic_factories_are_engine_rebuildable(self):
        from repro.workloads.registry import build_scenario
        from repro.workloads.scenarios import (
            nominal_emulated_atomic,
            replica_crash_atomic,
        )

        for factory in (nominal_emulated_atomic, replica_crash_atomic):
            scen = factory()
            name, kwargs = scen.ref
            rebuilt = build_scenario(name, kwargs)
            for field in ("name", "n", "horizon", "consistency", "emulation", "memory"):
                assert getattr(rebuilt, field) == getattr(scen, field), factory.__name__


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        scen = nominal(n=3, horizon=1500.0)
        a = scen.run(WriteEfficientOmega, seed=5)
        b = scen.run(WriteEfficientOmega, seed=5)
        assert a.trace.leader_samples() == b.trace.leader_samples()

    def test_scramble_applies_before_start(self):
        scen = scrambled(n=3)
        run = scen.build(WriteEfficientOmega, seed=1)
        # The algorithm's local copies must match the scrambled values.
        for alg in run.algorithms:
            assert alg._my_suspicions == [
                run.memory.register(f"SUSPICIONS[{alg.pid}][{k}]").peek() for k in range(3)
            ]
