"""The sweep driver."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.workloads.scenarios import nominal
from repro.workloads.sweep import SweepRow, run_matrix, stabilization_rate, summarize_result


@pytest.fixture(scope="module")
def rows():
    return run_matrix(
        {"alg1": WriteEfficientOmega, "step": StepCounterOmega},
        [nominal(n=3, horizon=1500.0)],
        seeds=[0, 1],
        window=100.0,
    )


class TestRunMatrix:
    def test_row_count(self, rows):
        assert len(rows) == 4  # 2 algorithms x 1 scenario x 2 seeds

    def test_labels_preferred(self, rows):
        assert {r.algorithm for r in rows} == {"alg1", "step"}

    def test_all_stabilize_nominal(self, rows):
        stab, total = stabilization_rate(rows)
        assert (stab, total) == (4, 4)

    def test_rows_carry_census(self, rows):
        for row in rows:
            assert row.forever_writer_count == 1
            assert row.single_writer
            assert row.growing_register_count == 1
            assert row.valid and row.termination_ok

    def test_cells_match_headers(self, rows):
        for row in rows:
            assert len(row.cells()) == len(SweepRow.headers())


class TestSummarizeResult:
    def test_summary_fields(self):
        scen = nominal(n=3, horizon=1500.0)
        result = scen.run(WriteEfficientOmega, seed=3)
        row = summarize_result(result, scen)
        assert row.n == 3
        assert row.seed == 3
        assert row.scenario == scen.name
        assert row.total_writes == result.memory.total_writes
