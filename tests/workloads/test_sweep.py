"""The sweep driver."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.workloads.scenarios import nominal
from repro.workloads.sweep import SweepRow, run_matrix, stabilization_rate, summarize_result


@pytest.fixture(scope="module")
def rows():
    return run_matrix(
        {"alg1": WriteEfficientOmega, "step": StepCounterOmega},
        [nominal(n=3, horizon=1500.0)],
        seeds=[0, 1],
        window=100.0,
    )


class TestRunMatrix:
    def test_row_count(self, rows):
        assert len(rows) == 4  # 2 algorithms x 1 scenario x 2 seeds

    def test_labels_preferred(self, rows):
        assert {r.algorithm for r in rows} == {"alg1", "step"}

    def test_all_stabilize_nominal(self, rows):
        stab, total = stabilization_rate(rows)
        assert (stab, total) == (4, 4)

    def test_rows_carry_census(self, rows):
        for row in rows:
            assert row.forever_writer_count == 1
            assert row.single_writer
            assert row.growing_register_count == 1
            assert row.valid and row.termination_ok

    def test_cells_match_headers(self, rows):
        for row in rows:
            assert len(row.cells()) == len(SweepRow.headers())


class TestMutatedScenario:
    def test_post_construction_mutation_is_honored(self):
        # A mutated factory scenario no longer matches its ref; the
        # matrix must run the *live* object, not a stale rebuild.
        scen = nominal(n=4, horizon=1500.0)
        scen.n = 3
        rows = run_matrix({"alg1": WriteEfficientOmega}, [scen], seeds=[0])
        assert [row.n for row in rows] == [3]

    def test_handbuilt_scenario_runs_in_process(self):
        from repro.workloads.scenarios import Scenario

        bare = Scenario(name="bare", n=3, horizon=1000.0)
        rows = run_matrix({"alg1": WriteEfficientOmega}, [bare], seeds=[0])
        assert len(rows) == 1 and rows[0].scenario == "bare"

    def test_mixed_matrix_keeps_engine_for_faithful_scenarios(self, tmp_path):
        # One hand-built scenario must not disable caching/parallelism
        # for the factory scenarios around it.
        from repro.workloads.scenarios import Scenario

        factory_scen = nominal(n=3, horizon=1500.0)
        bare = Scenario(name="bare", n=3, horizon=1000.0)
        mixed = [factory_scen, bare, nominal(n=3, horizon=1500.0)]
        rows = run_matrix(
            {"alg1": WriteEfficientOmega}, mixed, seeds=[0], cache=True,
            results_dir=tmp_path,
        )
        assert [r.scenario for r in rows] == ["nominal-n3", "bare", "nominal-n3"]
        # The factory cells were cached (one spec file exists)...
        assert list(tmp_path.glob("*.jsonl"))
        # ...and a re-run reproduces the same rows in the same order.
        again = run_matrix(
            {"alg1": WriteEfficientOmega}, mixed, seeds=[0], cache=True,
            results_dir=tmp_path,
        )
        assert [r.canonical_json() for r in again] == [r.canonical_json() for r in rows]


class TestSummarizeResult:
    def test_summary_fields(self):
        scen = nominal(n=3, horizon=1500.0)
        result = scen.run(WriteEfficientOmega, seed=3)
        row = summarize_result(result, scen)
        assert row.n == 3
        assert row.seed == 3
        assert row.scenario == scen.name
        assert row.total_writes == result.memory.total_writes
