"""The random-fault fuzz scenario: sampling the fault space by seed."""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.variants import StepCounterOmega
from repro.workloads.scenarios import random_faults

SEEDS = list(range(8))


class TestRandomFaults:
    def test_patterns_vary_across_seeds(self):
        scen = random_faults(n=5)
        plans = {
            tuple(sorted(scen.build(WriteEfficientOmega, seed=s).crash_plan.faulty))
            for s in SEEDS
        }
        assert len(plans) > 1

    def test_same_seed_same_pattern(self):
        scen = random_faults(n=5)
        a = scen.build(WriteEfficientOmega, seed=3).crash_plan
        b = scen.build(WriteEfficientOmega, seed=3).crash_plan
        assert a.crash_times == b.crash_times

    def test_never_kills_everyone(self):
        scen = random_faults(n=4)
        for s in range(30):
            plan = scen.build(WriteEfficientOmega, seed=s).crash_plan
            assert len(plan.correct) >= 1

    def test_max_failures_respected(self):
        scen = random_faults(n=6, max_failures=2)
        for s in range(20):
            plan = scen.build(WriteEfficientOmega, seed=s).crash_plan
            assert len(plan.faulty) <= 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_alg1_survives_fuzzed_faults(self, seed):
        scen = random_faults(n=5)
        result = scen.run(WriteEfficientOmega, seed=seed)
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized, f"seed {seed}: {report.final_by_pid}"
        assert report.leader_correct

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_step_counter_survives_fuzzed_faults(self, seed):
        scen = random_faults(n=5)
        result = scen.run(StepCounterOmega, seed=seed)
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct
