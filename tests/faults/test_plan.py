"""The fault-plan language: events, timelines, shrink units, windows."""

from __future__ import annotations

import pytest

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan


# ----------------------------------------------------------------------
# FaultEvent validation and serialization
# ----------------------------------------------------------------------
def test_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("meteor-strike", 1.0)


def test_event_rejects_negative_time():
    with pytest.raises(ValueError, match="negative fault time"):
        FaultEvent("replica-crash", -1.0, replica=0)


def test_crash_needs_replica_index():
    with pytest.raises(ValueError, match="replica index"):
        FaultEvent("replica-crash", 1.0)


def test_partition_needs_island():
    with pytest.raises(ValueError, match="island"):
        FaultEvent("partition", 1.0)


def test_partition_rejects_duplicate_island_members():
    with pytest.raises(ValueError, match="repeats"):
        FaultEvent("partition", 1.0, replicas=(1, 1))


def test_storm_needs_positive_window_and_factor():
    with pytest.raises(ValueError, match="until > at"):
        FaultEvent("message-storm", 5.0, until=5.0, factor=2.0)
    with pytest.raises(ValueError, match="factor"):
        FaultEvent("message-storm", 5.0, until=6.0, factor=0.5)


def test_island_is_canonicalized_sorted():
    assert FaultEvent("partition", 1.0, replicas=(2, 0)).replicas == (0, 2)


@pytest.mark.parametrize(
    "event",
    [
        FaultEvent("replica-crash", 3.0, replica=1),
        FaultEvent("replica-recover", 9.0, replica=1),
        FaultEvent("partition", 4.0, replicas=(0, 2)),
        FaultEvent("heal", 8.0, replicas=(0, 2)),
        FaultEvent("message-storm", 2.0, until=6.0, factor=3.5),
    ],
)
def test_event_json_round_trip(event):
    assert FaultEvent.from_jsonable(event.to_jsonable()) == event


def test_event_jsonable_carries_only_meaningful_keys():
    crash = FaultEvent("replica-crash", 3.0, replica=1).to_jsonable()
    assert set(crash) == {"kind", "at", "replica"}
    storm = FaultEvent("message-storm", 2.0, until=6.0, factor=3.5).to_jsonable()
    assert set(storm) == {"kind", "at", "until", "factor"}


def test_event_from_jsonable_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault-event key"):
        FaultEvent.from_jsonable({"kind": "replica-crash", "at": 1.0, "pid": 3})


# ----------------------------------------------------------------------
# FaultPlan: ordering, validation, shrink units
# ----------------------------------------------------------------------
def test_plan_sorts_events_and_repairs_win_ties():
    crash = FaultEvent("replica-crash", 5.0, replica=0)
    recover = FaultEvent("replica-recover", 5.0, replica=0)
    plan = FaultPlan((crash, recover))
    # Repairs sort before injections at equal times, so a back-to-back
    # recover/crash of the same replica stays a legal state machine.
    assert plan.events == (recover, crash)
    assert FAULT_KINDS.index("replica-recover") < FAULT_KINDS.index("replica-crash")


def test_validate_accepts_a_legal_timeline():
    FaultPlan(
        (
            FaultEvent("replica-crash", 1.0, replica=0),
            FaultEvent("replica-recover", 2.0, replica=0),
            FaultEvent("partition", 3.0, replicas=(1,)),
            FaultEvent("heal", 4.0, replicas=(1,)),
            FaultEvent("message-storm", 5.0, until=6.0, factor=2.0),
        )
    ).validate(3)


def test_validate_rejects_out_of_range_replica():
    with pytest.raises(ValueError, match="out of range"):
        FaultPlan((FaultEvent("replica-crash", 1.0, replica=7),)).validate(3)


def test_validate_rejects_double_crash():
    with pytest.raises(ValueError, match="crashed twice"):
        FaultPlan(
            (
                FaultEvent("replica-crash", 1.0, replica=0),
                FaultEvent("replica-crash", 2.0, replica=0),
            )
        ).validate(3)


def test_validate_rejects_recover_without_crash():
    with pytest.raises(ValueError, match="without a crash"):
        FaultPlan((FaultEvent("replica-recover", 1.0, replica=0),)).validate(3)


def test_validate_rejects_heal_without_partition():
    with pytest.raises(ValueError, match="without an open partition"):
        FaultPlan((FaultEvent("heal", 1.0, replicas=(0,)),)).validate(3)


def test_validate_rejects_whole_world_island():
    with pytest.raises(ValueError, match="exclude some replica"):
        FaultPlan((FaultEvent("partition", 1.0, replicas=(0, 1, 2)),)).validate(3)


def test_validate_allows_transient_majority_crash():
    # Liveness is deliberately not validate()'s business: campaigns may
    # probe plans that transiently stall quorums.
    FaultPlan(
        (
            FaultEvent("replica-crash", 1.0, replica=0),
            FaultEvent("replica-crash", 1.5, replica=1),
            FaultEvent("replica-recover", 5.0, replica=0),
            FaultEvent("replica-recover", 6.0, replica=1),
        )
    ).validate(3)


def test_groups_pair_injection_with_repair():
    crash = FaultEvent("replica-crash", 1.0, replica=0)
    recover = FaultEvent("replica-recover", 2.0, replica=0)
    part = FaultEvent("partition", 3.0, replicas=(1,))
    heal = FaultEvent("heal", 4.0, replicas=(1,))
    storm = FaultEvent("message-storm", 5.0, until=6.0, factor=2.0)
    plan = FaultPlan((crash, recover, part, heal, storm))
    assert plan.groups() == [(crash, recover), (part, heal), (storm,)]


def test_groups_keep_unrepaired_injection_as_singleton():
    crash = FaultEvent("replica-crash", 1.0, replica=0)
    assert FaultPlan((crash,)).groups() == [(crash,)]


def test_from_groups_round_trips():
    plan = FaultPlan(
        (
            FaultEvent("replica-crash", 1.0, replica=0),
            FaultEvent("replica-recover", 2.0, replica=0),
            FaultEvent("message-storm", 5.0, until=6.0, factor=2.0),
        )
    )
    assert FaultPlan.from_groups(plan.groups()) == plan


# ----------------------------------------------------------------------
# Windows and serialization
# ----------------------------------------------------------------------
def test_partition_windows_close_at_heal_or_horizon():
    plan = FaultPlan(
        (
            FaultEvent("partition", 2.0, replicas=(0,)),
            FaultEvent("heal", 5.0, replicas=(0,)),
            FaultEvent("partition", 7.0, replicas=(1,)),
        )
    )
    assert plan.partition_windows(10.0) == ((2.0, 5.0, (0,)), (7.0, 10.0, (1,)))


def test_storm_windows_are_horizon_clamped():
    plan = FaultPlan((FaultEvent("message-storm", 2.0, until=60.0, factor=3.0),))
    assert plan.storm_windows(10.0) == ((2.0, 10.0, 3.0),)


def test_last_event_time_counts_lifetimes():
    plan = FaultPlan((FaultEvent("message-storm", 2.0, until=60.0, factor=3.0),))
    assert plan.last_event_time() == 60.0
    unhealed = FaultPlan((FaultEvent("partition", 2.0, replicas=(0,)),))
    assert unhealed.last_event_time() == float("inf")


def test_plan_json_round_trip():
    plan = FaultPlan(
        (
            FaultEvent("replica-crash", 1.0, replica=0),
            FaultEvent("replica-recover", 2.0, replica=0),
            FaultEvent("partition", 3.0, replicas=(1,)),
            FaultEvent("heal", 4.0, replicas=(1,)),
        )
    )
    assert FaultPlan.from_jsonable(plan.to_jsonable()) == plan
    assert FaultPlan.from_jsonable(None) == FaultPlan()
