"""ddmin over fault-plan groups: convergence, minimality, legality."""

from __future__ import annotations

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.shrink import shrink_plan


def _crash_recover(replica, at):
    return (
        FaultEvent("replica-crash", at, replica=replica),
        FaultEvent("replica-recover", at + 10.0, replica=replica),
    )


def _big_plan(groups=8):
    events = []
    for i in range(groups):
        events.extend(_crash_recover(i % 3, 100.0 * (i + 1)))
    return FaultPlan(tuple(events))


def test_shrinks_to_the_single_culprit_group():
    plan = _big_plan(8)
    culprit = plan.groups()[5]

    def oracle(candidate):
        return culprit in candidate.groups()

    result = shrink_plan(plan, oracle)
    assert result.plan.groups() == [culprit]
    assert result.oracle_runs <= 30
    assert result.trajectory[0] == 8 and result.trajectory[-1] == 1


def test_shrunk_plan_is_one_minimal_over_groups():
    # Violation needs groups 1 AND 6 together; the result must keep
    # exactly that pair -- dropping either member kills the violation.
    plan = _big_plan(8)
    needed = {plan.groups()[1], plan.groups()[6]}

    def oracle(candidate):
        return needed <= set(candidate.groups())

    result = shrink_plan(plan, oracle)
    final = result.plan.groups()
    assert set(final) == needed
    for i in range(len(final)):
        dropped = FaultPlan.from_groups(final[:i] + final[i + 1 :])
        assert not oracle(dropped)


def test_every_candidate_the_oracle_sees_is_legal():
    plan = _big_plan(6)
    seen = []

    def oracle(candidate):
        candidate.validate(3)  # raises if a repair lost its injection
        seen.append(candidate)
        return True  # always-violating: maximal reduction pressure

    result = shrink_plan(plan, oracle)
    assert seen, "oracle was never consulted"
    assert len(result.plan.groups()) == 1


def test_irreducible_plan_survives_unchanged():
    plan = _big_plan(4)

    def oracle(candidate):
        return len(candidate.groups()) == 4  # any removal kills it

    result = shrink_plan(plan, oracle)
    assert result.plan == plan


def test_oracle_budget_is_respected():
    plan = _big_plan(8)
    calls = []

    def oracle(candidate):
        calls.append(candidate)
        return False  # never reduces: worst case for the budget

    result = shrink_plan(plan, oracle, max_oracle_runs=5)
    assert len(calls) <= 5
    assert result.oracle_runs == len(calls)
    assert result.plan == plan  # no lying: un-reduced plan comes back
