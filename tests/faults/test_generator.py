"""The seeded fault-schedule generator: determinism and conservatism."""

from __future__ import annotations

import pytest

from repro.faults.generator import FaultScheduleGenerator
from repro.faults.plan import FaultPlan


def test_generation_is_deterministic_in_seed_and_index():
    a = FaultScheduleGenerator(7, replicas=3, horizon=4000.0)
    b = FaultScheduleGenerator(7, replicas=3, horizon=4000.0)
    for index in range(10):
        assert a.generate(index) == b.generate(index)


def test_generation_is_order_independent():
    # generate(i) draws from a Random seeded by (seed, i), never from
    # shared generator state, so any plan regenerates without replaying
    # the ones before it.
    gen = FaultScheduleGenerator(3, replicas=3, horizon=4000.0)
    fifth = gen.generate(5)
    fresh = FaultScheduleGenerator(3, replicas=3, horizon=4000.0)
    assert fresh.generate(5) == fifth


def test_different_seeds_diverge():
    plans_a = [FaultScheduleGenerator(1, horizon=4000.0).generate(i) for i in range(5)]
    plans_b = [FaultScheduleGenerator(2, horizon=4000.0).generate(i) for i in range(5)]
    assert plans_a != plans_b


def test_generated_plans_are_well_formed():
    gen = FaultScheduleGenerator(11, replicas=4, horizon=6000.0, max_faults=3)
    for index in range(25):
        plan = gen.generate(index)
        assert isinstance(plan, FaultPlan)
        assert 1 <= len(plan) <= 2 * gen.max_faults
        plan.validate(4)  # legal state machine, targets in range


def test_quiet_tail_is_fault_free():
    gen = FaultScheduleGenerator(5, replicas=3, horizon=5000.0, quiet_tail=0.4)
    cutoff = 5000.0 * (1 - 0.4)
    for index in range(25):
        plan = gen.generate(index)
        last = plan.last_event_time()
        assert last != float("inf"), "generated partitions must heal"
        assert last <= cutoff


def test_disturbances_are_serialized():
    # At most one replica is disturbed at any instant: every injection's
    # repair lands before the next injection opens.
    gen = FaultScheduleGenerator(9, replicas=3, horizon=5000.0, max_faults=3)
    for index in range(25):
        groups = gen.generate(index).groups()
        for earlier, later in zip(groups, groups[1:]):
            # groups are in timeline order; the repair (or storm end)
            # of the earlier group precedes the later group's start.
            end = earlier[-1].at if len(earlier) > 1 else earlier[0].until or earlier[0].at
            assert end <= later[0].at


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"replicas": 1}, "at least two replicas"),
        ({"horizon": 0.0}, "horizon"),
        ({"max_faults": 0}, "max_faults"),
        ({"quiet_tail": 0.0}, "quiet_tail"),
        ({"quiet_tail": 1.0}, "quiet_tail"),
    ],
)
def test_knob_validation(kwargs, match):
    defaults = {"replicas": 3, "horizon": 4000.0, "max_faults": 3, "quiet_tail": 0.4}
    defaults.update(kwargs)
    with pytest.raises(ValueError, match=match):
        FaultScheduleGenerator(0, **defaults)
