"""Chaos campaigns end to end: the PR's two acceptance bars live here.

Bar 1: a 200-plan seeded campaign against the default (resync-on)
emulation runs with **zero** violations.  Bar 2: the deliberately
broken emulation (recovery without state-resync) is *caught* by the
same oracles and delta-debugged down to a pinned repro of at most five
fault events.
"""

from __future__ import annotations

import json

from repro.engine.spec import ExperimentSpec
from repro.engine.worker import run_cell
from repro.faults.campaign import (
    CampaignConfig,
    pinned_repro,
    replay_plan,
    run_campaign,
    violation_count,
)
from repro.workloads.registry import ALGORITHMS, build_scenario
from repro.workloads.scenarios import DEFAULT_CHAOS_PLAN, chaos


def test_acceptance_200_plan_campaign_is_clean():
    # The headline robustness bar: 200 generated fault plans (crashes,
    # recoveries, partitions, storms) against the default emulation,
    # judged by the Theorem 1-4 monitors + history audit + write-ack
    # integrity -- all clean.
    config = CampaignConfig(plans=200, seed=7, horizon=2000.0)
    result = run_campaign(config)
    assert result.plans_run == 200
    assert result.ok, [v.plan.to_jsonable() for v in result.violations]
    assert result.recoveries > 0, "campaign never exercised recovery"
    assert result.resyncs == result.recoveries  # every recovery resynced
    assert result.integrity_violations == 0


def test_acceptance_broken_resync_is_caught_and_shrunk():
    # Negative control: recovery WITHOUT state-resync serves amnesiac
    # replicas, which the consistency oracles must catch -- and the
    # delta debugger must pin to a minimal (<= 5 events) repro.
    config = CampaignConfig(plans=4, seed=0, horizon=2000.0, resync=False)
    result = run_campaign(config)
    assert not result.ok, "broken emulation escaped the oracles"
    violation = result.violations[0]
    assert violation.violations > 0
    assert violation.shrunk is not None
    assert len(violation.shrunk) <= 5
    assert violation.oracle_runs > 0
    # The shrunk plan still violates under the exact pinned knobs.
    summary = replay_plan(violation.shrunk, config, violation.seed)
    assert violation_count(summary) > 0
    # ... and the identical campaign with resync ON is clean.
    fixed = run_campaign(CampaignConfig(plans=4, seed=0, horizon=2000.0))
    assert fixed.ok


def test_pinned_repro_replays_through_the_registry():
    config = CampaignConfig(plans=4, seed=0, horizon=2000.0, resync=False)
    result = run_campaign(config)
    repro = result.violations[0].repro
    assert repro["factory"] == "chaos"
    assert repro["kwargs"]["resync"] is False
    # Engine-ready: the registry rebuilds the scenario from the payload
    # and the rerun reproduces the violation from the pinned seed.
    scenario = build_scenario(repro["factory"], repro["kwargs"])
    run = scenario.run(
        ALGORITHMS[repro["algorithm"]],
        seed=repro["seed"],
        log_reads=False,
        trace_events=False,
    )
    audit = run.audit_consistency()
    assert audit is not None and len(audit.violations) > 0


def test_campaign_report_is_json_serializable():
    config = CampaignConfig(plans=2, seed=1, horizon=2000.0)
    result = run_campaign(config)
    payload = json.loads(json.dumps(result.to_jsonable()))
    assert payload["plans_run"] == 2
    assert payload["violations"] == []


def test_pinned_repro_round_trips_the_plan():
    from repro.faults.plan import FaultEvent, FaultPlan

    plan = FaultPlan(
        (
            FaultEvent("replica-crash", 100.0, replica=1),
            FaultEvent("replica-recover", 300.0, replica=1),
        )
    )
    config = CampaignConfig()
    payload = pinned_repro(plan, config, seed=9)
    assert FaultPlan.from_jsonable(payload["kwargs"]["plan"]) == plan
    assert payload["seed"] == 9


def test_chaos_scenario_runs_through_the_engine():
    # The fault axis threads through ExperimentSpec/run_cell like any
    # other scenario: the default chaos plan (crash+recover, partition+
    # heal, storm) surfaces in the cell's resilience counters.
    spec = ExperimentSpec.from_objects(
        "chaos-engine-test",
        {"alg1": ALGORITHMS["alg1"]},
        [chaos(n=3, horizon=8000.0)],
        [0],
    )
    summary = run_cell(spec.cells()[0])
    assert summary.scenario.startswith("chaos")
    assert summary.recoveries == 1  # DEFAULT_CHAOS_PLAN's single crash
    assert summary.resyncs == 1
    assert summary.property_violations == 0
    assert summary.audit_violations == 0
    assert summary.integrity_violations == 0


def test_default_chaos_plan_is_a_legal_timeline():
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.from_jsonable(list(DEFAULT_CHAOS_PLAN))
    plan.validate(3)
    kinds = [event.kind for event in plan]
    assert "replica-crash" in kinds and "partition" in kinds
    assert "message-storm" in kinds
