"""The related-work message-passing Omegas (Section 1's two families)."""

from __future__ import annotations

import pytest

from repro.analysis.omega_props import check_validity
from repro.netsim.network import EventuallyTimelyLinks, FairLossyLinks
from repro.netsim.runtime import MpRun
from repro.related.omega_pattern import PatternOmega, pattern_friendly_links
from repro.related.omega_tsource import TSourceOmega
from repro.sim.crash import CrashPlan
from repro.sim.rng import RngRegistry


def tsource_behavior(seed, sources, gst=300.0, loss=0.2):
    rng = RngRegistry(seed)
    return EventuallyTimelyLinks(
        FairLossyLinks(rng, loss=loss), sources=sources, gst=gst, rng=rng
    )


class TestTSourceOmega:
    @pytest.fixture(scope="class")
    def result(self):
        return MpRun(
            TSourceOmega, n=4, seed=1, horizon=4000.0, behavior=tsource_behavior(1, {0})
        ).execute()

    def test_stabilizes_on_the_source(self, result):
        report = result.stabilization(margin=200.0)
        assert report.stabilized
        assert report.leader == 0

    def test_validity(self, result):
        assert check_validity(result.trace, result.n)

    def test_source_accusations_bounded(self, result):
        """The t-source analogue of Lemma 2: accusations of the timely
        source stop growing."""
        counts = [proc.accusations[0] for proc in result.processes]
        assert max(counts) < 50

    def test_timeout_backoff_occurred(self, result):
        """Fair-lossy links force false accusations; the doubling must
        have kicked in somewhere."""
        initial = 8.0
        assert any(
            proc.timeout[j] > initial
            for proc in result.processes
            for j in range(result.n)
            if j != proc.pid
        )

    def test_messages_flow_forever(self, result):
        """Heartbeats never stop -- the message-passing cost the paper's
        write-efficient algorithm avoids in shared memory."""
        assert set(result.network.sent_by_pid) == set(range(result.n))

    def test_survives_source_crash_with_second_source(self):
        result = MpRun(
            TSourceOmega,
            n=4,
            seed=3,
            horizon=9000.0,
            behavior=tsource_behavior(3, {0, 1}),
            crash_plan=CrashPlan.single(4, 0, 2000.0),
        ).execute()
        report = result.stabilization(margin=200.0)
        assert report.stabilized
        assert report.leader == 1

    def test_without_source_still_valid_and_often_lucky(self):
        """Pure fair-lossy links (no t-source): the *guarantee* is
        gone, but the exponential timeout back-off tames probabilistic
        loss in practice (each false accusation doubles the window, so
        the per-link accusation probability vanishes).  The run must
        stay valid; whoever it settles on must be correct.  The
        assumption buys the worst-case guarantee, not the typical run
        -- the same relationship the AWB scenarios show in shared
        memory."""
        rng = RngRegistry(9)
        result = MpRun(
            TSourceOmega,
            n=4,
            seed=9,
            horizon=4000.0,
            behavior=FairLossyLinks(rng, loss=0.3),
        ).execute()
        assert check_validity(result.trace, result.n)
        report = result.stabilization(margin=200.0)
        if report.stabilized:
            assert report.leader_correct
        # False accusations did happen (the channel is lossy)...
        assert any(max(p.accusations) > 0 for p in result.processes)
        # ...and the back-off kicked in.
        assert any(
            proc.timeout[j] > 8.0
            for proc in result.processes
            for j in range(result.n)
            if j != proc.pid
        )


class TestPatternOmega:
    @pytest.fixture(scope="class")
    def result(self):
        rng = RngRegistry(2)
        return MpRun(
            PatternOmega,
            n=4,
            seed=2,
            horizon=4000.0,
            behavior=pattern_friendly_links(rng, winner=0),
        ).execute()

    def test_stabilizes_on_the_winner(self, result):
        report = result.stabilization(margin=200.0)
        assert report.stabilized
        assert report.leader == 0

    def test_time_free_no_timers_used(self, result):
        """The pattern approach sets no timers at all."""
        assert "mp-timer" not in result.sim.fired_by_kind

    def test_winner_misses_bounded(self, result):
        counts = [proc.misses[0] for proc in result.processes]
        assert max(counts) == 0  # strictly fastest responder never misses

    def test_slow_processes_accumulate_misses(self, result):
        assert any(max(proc.misses[1:]) > 0 for proc in result.processes)

    def test_rounds_progress(self, result):
        assert all(proc.seq > 50 for proc in result.processes)

    def test_t_validation(self):
        with pytest.raises(ValueError):
            MpRun(PatternOmega, n=3, seed=1, horizon=10.0, config={"t": 3}).execute()


class TestCrossModelComparison:
    """The three models elect leaders under *incomparable* assumptions --
    the observation the paper's related-work section makes."""

    def test_all_three_families_elect(self):
        from repro.core.algorithm1 import WriteEfficientOmega
        from repro.workloads.scenarios import awb_only

        shm = awb_only(n=4).run(WriteEfficientOmega, seed=5)
        assert shm.stabilization(margin=100.0).stabilized

        ts = MpRun(
            TSourceOmega, n=4, seed=1, horizon=4000.0, behavior=tsource_behavior(1, {0})
        ).execute()
        assert ts.stabilization(margin=200.0).stabilized

        rng = RngRegistry(2)
        pat = MpRun(
            PatternOmega, n=4, seed=2, horizon=4000.0,
            behavior=pattern_friendly_links(rng, winner=0),
        ).execute()
        assert pat.stabilization(margin=200.0).stabilized
