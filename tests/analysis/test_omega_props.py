"""The Omega property checks on synthetic traces."""

from __future__ import annotations

from repro.analysis.omega_props import (
    check_eventual_leadership,
    check_validity,
)
from repro.sim.crash import CrashPlan
from repro.sim.tracing import RunTrace


def trace_from(samples):
    """Build a trace from (time, pid, leader) triples."""
    trace = RunTrace()
    for t, pid, leader in samples:
        trace.record(t, "leader_sample", pid=pid, leader=leader)
    return trace


class TestValidity:
    def test_in_range_ok(self):
        trace = trace_from([(0.0, 0, 1), (0.0, 1, 0)])
        assert check_validity(trace, n=2)

    def test_out_of_range_fails(self):
        trace = trace_from([(0.0, 0, 5)])
        assert not check_validity(trace, n=2)


class TestEventualLeadership:
    def test_stable_agreement(self):
        samples = [(t, pid, 1) for t in (0.0, 10.0, 20.0, 30.0) for pid in (0, 1)]
        report = check_eventual_leadership(trace_from(samples), CrashPlan.none(2), horizon=30.0)
        assert report.stabilized
        assert report.leader == 1
        assert report.time == 0.0

    def test_late_agreement_records_settle_time(self):
        samples = [
            (0.0, 0, 0), (0.0, 1, 1),
            (10.0, 0, 1), (10.0, 1, 1),
            (20.0, 0, 1), (20.0, 1, 1),
            (30.0, 0, 1), (30.0, 1, 1),
        ]
        report = check_eventual_leadership(trace_from(samples), CrashPlan.none(2), horizon=30.0)
        assert report.stabilized
        assert report.time == 10.0  # first sample where pid 0 holds the final value

    def test_disagreement_not_stabilized(self):
        samples = [(t, 0, 0) for t in (0.0, 10.0)] + [(t, 1, 1) for t in (0.0, 10.0)]
        report = check_eventual_leadership(trace_from(samples), CrashPlan.none(2), horizon=10.0)
        assert not report.stabilized
        assert report.leader is None

    def test_faulty_final_leader_rejected(self):
        plan = CrashPlan.single(3, 2, 5.0)
        samples = [(t, pid, 2) for t in (0.0, 10.0, 20.0) for pid in (0, 1)]
        report = check_eventual_leadership(trace_from(samples), plan, horizon=20.0)
        assert not report.stabilized
        assert not report.leader_correct

    def test_crashed_process_samples_ignored(self):
        plan = CrashPlan.single(3, 2, 5.0)
        samples = [(t, pid, 0) for t in (0.0, 10.0, 20.0) for pid in (0, 1)]
        samples.append((0.0, 2, 1))  # the faulty process disagreed early on
        report = check_eventual_leadership(trace_from(samples), plan, horizon=20.0)
        assert report.stabilized
        assert report.leader == 0

    def test_agreement_only_at_last_sample_rejected(self):
        samples = [
            (0.0, 0, 0), (0.0, 1, 1),
            (10.0, 0, 0), (10.0, 1, 1),
            (20.0, 0, 1), (20.0, 1, 1),
        ]
        report = check_eventual_leadership(trace_from(samples), CrashPlan.none(2), horizon=20.0)
        assert not report.stabilized

    def test_margin_tightens_verdict(self):
        samples = [
            (0.0, 0, 0), (0.0, 1, 1),
            (10.0, 0, 1), (10.0, 1, 1),
            (20.0, 0, 1), (20.0, 1, 1),
            (30.0, 0, 1), (30.0, 1, 1),
        ]
        trace = trace_from(samples)
        plan = CrashPlan.none(2)
        assert check_eventual_leadership(trace, plan, horizon=30.0, margin=15.0).stabilized
        assert not check_eventual_leadership(trace, plan, horizon=30.0, margin=25.0).stabilized

    def test_empty_trace_not_stabilized(self):
        report = check_eventual_leadership(RunTrace(), CrashPlan.none(2), horizon=10.0)
        assert not report.stabilized

    def test_report_truthiness(self):
        samples = [(t, pid, 0) for t in (0.0, 10.0) for pid in (0, 1)]
        report = check_eventual_leadership(trace_from(samples), CrashPlan.none(2), horizon=10.0)
        assert bool(report)
