"""Theorem 5 ingredients: state recurrence and the writer census."""

from __future__ import annotations

import pytest

from repro.analysis.lowerbound import state_recurrence, theorem5_census
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run


class TestStateRecurrence:
    def test_empty(self):
        report = state_recurrence([])
        assert report.snapshots == 0
        assert not report.recurrent

    def test_recurrent_states_detected(self):
        snap_a = (("R", 1),)
        snap_b = (("R", 2),)
        snapshots = [(float(t), snap_a if t % 2 == 0 else snap_b) for t in range(100)]
        report = state_recurrence(snapshots, horizon=100.0)
        assert report.recurrent
        assert report.distinct_states == 2

    def test_all_distinct_not_recurrent(self):
        snapshots = [(float(t), (("R", t),)) for t in range(100)]
        report = state_recurrence(snapshots, horizon=100.0)
        assert not report.recurrent
        assert report.max_recurrence == 1

    def test_settle_fraction_skips_prefix(self):
        # Recurrence only in the prefix; the tail is all-distinct.
        snapshots = [(float(t), (("R", 0),)) for t in range(10)]
        snapshots += [(float(t), (("R", t),)) for t in range(50, 100)]
        report = state_recurrence(snapshots, settle_fraction=0.25, horizon=100.0)
        assert not report.recurrent


class TestTheorem5OnRealRuns:
    """The paper's dichotomy, measured on both algorithms."""

    @pytest.fixture(scope="class")
    def alg1_row(self):
        result = Run(
            WriteEfficientOmega, n=3, seed=90, horizon=3000.0, snapshot_interval=25.0
        ).execute()
        return theorem5_census(result, bounded_memory=False, window=200.0)

    @pytest.fixture(scope="class")
    def alg2_row(self):
        result = Run(
            BoundedOmega, n=3, seed=91, horizon=6000.0, snapshot_interval=25.0
        ).execute()
        return theorem5_census(result, bounded_memory=True, window=200.0)

    def test_alg1_single_forever_writer(self, alg1_row):
        assert len(alg1_row.forever_writers) == 1
        assert not alg1_row.all_correct_write_forever

    def test_alg1_states_never_recur(self, alg1_row):
        """PROGRESS[ell] grows, so every steady-state snapshot is new."""
        assert not alg1_row.recurrence.recurrent

    def test_alg2_all_correct_write_forever(self, alg2_row):
        assert alg2_row.all_correct_write_forever
        assert alg2_row.forever_writers == alg2_row.correct

    def test_alg2_states_recur(self, alg2_row):
        """Bounded shared memory: pigeonhole forces recurrence, the
        Theorem 5 adversary's raw material."""
        assert alg2_row.recurrence.recurrent
        assert alg2_row.recurrence.max_recurrence >= 2
