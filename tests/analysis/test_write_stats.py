"""Access-pattern analysis on synthetic memory logs."""

from __future__ import annotations

import pytest

from repro.analysis.write_stats import (
    boundedness,
    forever_readers,
    forever_writers,
    growing_registers,
    single_writer_point,
    tail_written_registers,
)
from repro.memory.memory import SharedMemory


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def memory_with(writes, reads=()):
    """Build a SharedMemory from (time, pid, reg, value) and (time, pid,
    reg) records."""
    clock = FakeClock()
    memory = SharedMemory(clock=clock)
    regs = {}
    events = [(t, "w", pid, reg, value) for t, pid, reg, value in writes]
    events += [(t, "r", pid, reg, None) for t, pid, reg in reads]
    events.sort(key=lambda e: e[0])
    for t, kind, pid, reg, value in events:
        if reg not in regs:
            regs[reg] = memory.create_register(reg, owner=None, initial=0)
        clock.now = t
        if kind == "w":
            regs[reg].write(pid, value)
        else:
            regs[reg].read(pid)
    return memory


class TestForeverWriters:
    def test_continuous_writer_detected(self):
        writes = [(float(t), 0, "R", t) for t in range(0, 400, 10)]
        writes += [(5.0, 1, "Q", 1)]  # early one-off writer
        memory = memory_with(writes)
        assert forever_writers(memory, horizon=400.0, window=100.0, count=4) == frozenset({0})

    def test_window_validation(self):
        memory = memory_with([(0.0, 0, "R", 1)])
        with pytest.raises(ValueError):
            forever_writers(memory, horizon=10.0, window=100.0, count=4)
        with pytest.raises(ValueError):
            forever_writers(memory, horizon=400.0, window=-1.0)

    def test_gap_in_one_window_excludes(self):
        # pid 0 writes everywhere except [200, 300).
        writes = [(float(t), 0, "R", t) for t in list(range(0, 200, 10)) + list(range(300, 400, 10))]
        memory = memory_with(writes)
        assert forever_writers(memory, horizon=400.0, window=100.0, count=4) == frozenset()


class TestForeverReaders:
    def test_continuous_reader_detected(self):
        reads = [(float(t), 2, "R") for t in range(0, 400, 10)]
        memory = memory_with([(0.0, 0, "R", 1)], reads)
        assert forever_readers(memory, horizon=400.0, window=100.0, count=4) == frozenset({2})


class TestSingleWriterPoint:
    def test_reached(self):
        writes = [(float(t), 1, "R", t) for t in range(0, 500, 10)]
        writes += [(50.0, 0, "Q", 1), (120.0, 2, "Q2", 1)]
        memory = memory_with(writes)
        point = single_writer_point(memory, horizon=500.0, tail=100.0)
        assert point.reached
        assert point.writer == 1
        assert point.time == 120.0

    def test_not_reached_with_two_tail_writers(self):
        writes = [(float(t), 0, "R", t) for t in range(0, 500, 10)]
        writes += [(float(t), 1, "Q", t) for t in range(0, 500, 10)]
        memory = memory_with(writes)
        assert not single_writer_point(memory, horizon=500.0, tail=100.0).reached


class TestTailWrittenRegisters:
    def test_filters_by_time(self):
        writes = [(10.0, 0, "EARLY", 1)] + [(float(t), 0, "LATE", t) for t in range(400, 500, 10)]
        memory = memory_with(writes)
        assert tail_written_registers(memory, horizon=500.0, tail=150.0) == frozenset({"LATE"})


class TestBoundedness:
    def test_growing_register_flagged(self):
        writes = [(float(t), 0, "G", t) for t in range(0, 1000, 10)]
        memory = memory_with(writes)
        verdicts = boundedness(memory, horizon=1000.0)
        assert verdicts["G"].still_growing

    def test_plateaued_register_not_flagged(self):
        writes = [(float(t), 0, "P", min(t, 100)) for t in range(0, 1000, 10)]
        memory = memory_with(writes)
        assert not boundedness(memory, horizon=1000.0)["P"].still_growing

    def test_boolean_register_never_growing(self):
        writes = [(float(t), 0, "B", (t // 10) % 2 == 0) for t in range(0, 1000, 10)]
        memory = memory_with(writes)
        verdict = boundedness(memory, horizon=1000.0)["B"]
        assert not verdict.still_growing
        assert verdict.distinct_values == 2

    def test_max_value_and_counts(self):
        writes = [(0.0, 0, "R", 5), (10.0, 0, "R", 3)]
        memory = memory_with(writes)
        verdict = boundedness(memory, horizon=1000.0)["R"]
        assert verdict.max_value == 5.0
        assert verdict.writes == 2
        assert verdict.last_write_time == 10.0

    def test_tail_fraction_validation(self):
        memory = memory_with([(0.0, 0, "R", 1)])
        with pytest.raises(ValueError):
            boundedness(memory, horizon=10.0, tail_fraction=1.5)

    def test_growing_registers_helper(self):
        writes = [(float(t), 0, "G", t) for t in range(0, 1000, 10)]
        writes += [(float(t), 1, "P", 7) for t in range(0, 1000, 10)]
        memory = memory_with(writes)
        assert growing_registers(memory, horizon=1000.0) == frozenset({"G"})
