"""Plain-text report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_series, format_table, sparkline


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_bool_and_float_formatting(self):
        out = format_table(["x"], [[True], [False], [1.234]])
        assert "yes" in out and "no" in out and "1.23" in out

    def test_set_formatting_sorted(self):
        out = format_table(["s"], [[frozenset({3, 1})]])
        assert "{1,3}" in out

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_inf_rendering(self):
        assert "inf" in format_table(["x"], [[float("inf")]])


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_marked(self):
        assert "?" in sparkline([1.0, float("nan"), 2.0])


class TestFormatSeries:
    def test_label_and_ranges(self):
        out = format_series("T_R", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert out.startswith("T_R:")
        assert "x: 0..2" in out
        assert "y: 1.00..3.00" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1.0], [1.0, 2.0])

    def test_empty(self):
        assert "(empty)" in format_series("x", [], [])
