"""Leadership timeline and anarchy metrics."""

from __future__ import annotations

from repro.analysis.timeline import build_timeline, render_timeline
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan
from repro.sim.tracing import RunTrace


def trace_from(samples):
    trace = RunTrace()
    for t, pid, leader in samples:
        trace.record(t, "leader_sample", pid=pid, leader=leader)
    return trace


class TestIntervals:
    def test_single_stable_interval(self):
        samples = [(float(t), 0, 2) for t in range(0, 50, 10)]
        report = build_timeline(trace_from(samples))
        (iv,) = report.intervals_by_pid[0]
        assert (iv.leader, iv.start, iv.end) == (2, 0.0, 40.0)
        assert iv.duration == 40.0
        assert report.changes_by_pid[0] == 0

    def test_change_splits_intervals(self):
        samples = [(0.0, 0, 1), (10.0, 0, 1), (20.0, 0, 2), (30.0, 0, 2)]
        report = build_timeline(trace_from(samples))
        ivs = report.intervals_by_pid[0]
        assert [(iv.leader, iv.start, iv.end) for iv in ivs] == [(1, 0.0, 20.0), (2, 20.0, 30.0)]
        assert report.changes_by_pid[0] == 1

    def test_total_changes(self):
        samples = [(0.0, 0, 1), (10.0, 0, 2), (0.0, 1, 1), (10.0, 1, 1)]
        report = build_timeline(trace_from(samples))
        assert report.total_changes == 1


class TestAnarchy:
    def test_agreement_has_no_anarchy(self):
        samples = [(t, pid, 0) for t in (0.0, 10.0) for pid in (0, 1)]
        report = build_timeline(trace_from(samples))
        assert report.anarchy_times == []
        assert report.total_anarchy == 0.0

    def test_disagreement_detected(self):
        samples = [(0.0, 0, 0), (0.0, 1, 1), (10.0, 0, 0), (10.0, 1, 0)]
        report = build_timeline(trace_from(samples))
        assert report.anarchy_times == [0.0]
        assert report.anarchy_intervals == [(0.0, 0.0)]

    def test_anarchy_interval_spans_consecutive_samples(self):
        samples = []
        for t in (0.0, 10.0, 20.0):
            samples += [(t, 0, 0), (t, 1, 1)]
        samples += [(30.0, 0, 0), (30.0, 1, 0)]
        report = build_timeline(trace_from(samples))
        assert report.anarchy_intervals == [(0.0, 20.0)]
        assert report.total_anarchy == 20.0
        assert report.last_anarchy_end == 20.0

    def test_faulty_opinions_excluded(self):
        plan = CrashPlan.single(3, 2, 5.0)
        samples = [(0.0, 0, 0), (0.0, 1, 0), (0.0, 2, 2)]
        report = build_timeline(trace_from(samples), crash_plan=plan)
        assert report.anarchy_times == []

    def test_no_anarchy_reports_neg_inf(self):
        report = build_timeline(trace_from([(0.0, 0, 0)]))
        assert report.last_anarchy_end == float("-inf")


class TestRender:
    def test_render_contains_lanes(self):
        samples = [(float(t), pid, pid % 2) for t in range(0, 30, 10) for pid in (0, 1)]
        out = render_timeline(build_timeline(trace_from(samples)), width=20)
        assert "p0 |" in out and "p1 |" in out

    def test_render_empty(self):
        assert "(no samples)" in render_timeline(build_timeline(RunTrace()))


class TestOnRealRun:
    def test_anarchy_ends_before_stabilization_margin(self):
        result = Run(WriteEfficientOmega, n=4, seed=42, horizon=2000.0).execute()
        report = build_timeline(result.trace, crash_plan=result.crash_plan)
        stab = result.stabilization(margin=200.0)
        assert stab.stabilized
        assert report.last_anarchy_end <= stab.time

    def test_crash_shortens_lane(self):
        plan = CrashPlan.single(3, 1, 100.0)
        result = Run(WriteEfficientOmega, n=3, seed=1, horizon=400.0, crash_plan=plan).execute()
        report = build_timeline(result.trace, crash_plan=plan)
        lane_end = report.intervals_by_pid[1][-1].end
        assert lane_end <= 100.0
