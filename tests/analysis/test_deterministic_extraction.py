"""Regression pins for the determinism-lint bring-up fixes.

``repro lint`` flagged three set-representative extractions
(``finals.pop()``, ``common.pop()``, ``next(iter(tail_writers))``).
Each sat behind a ``len(...) == 1`` guard, so they were *latently*
order-dependent: correct today, a refactor away from nondeterminism.
They now use ``min()``; these tests pin the rewritten call sites'
behavior and the linter's verdict on the tree.
"""

from __future__ import annotations

from repro.lint import run_lint
from repro.workloads.registry import ALGORITHMS
from repro.workloads.scenarios import leader_crash, nominal


class TestRewrittenExtractionSites:
    def test_omega_props_reports_the_agreed_leader(self):
        """repro.analysis.omega_props: ``min(common)`` on agreement."""
        result = nominal(n=4).run(ALGORITHMS["alg1"], seed=0)
        report = result.stabilization(margin=nominal(n=4).margin)
        assert report.stabilized and report.leader is not None
        # Every correct process converged on the same leader: the
        # singleton extraction must return exactly that value.
        finals = {
            samples[-1][1]
            for samples in result.trace.leader_samples_by_pid().values()
            if samples
        }
        assert finals == {report.leader}

    def test_leadership_checker_agrees_with_the_trace(self):
        """repro.props.checkers: ``min(finals)`` on agreement."""
        scen = leader_crash(n=4)
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        props = result.check_properties(margin=scen.margin)
        assert props.violations() == []
        report = result.stabilization(margin=scen.margin)
        assert report.stabilized and report.leader_correct

    def test_single_writer_point_names_the_sole_writer(self):
        """repro.analysis.write_stats: ``min(tail_writers)``."""
        from repro.analysis.write_stats import single_writer_point

        scen = nominal(n=4)
        result = scen.run(ALGORITHMS["alg1"], seed=0)
        point = single_writer_point(result.memory, result.horizon)
        report = result.stabilization(margin=scen.margin)
        assert point.reached
        assert point.writer == report.leader

    def test_the_tree_has_no_determinism_findings(self):
        """The bring-up contract: fixes, not baseline entries."""
        report = run_lint(families=["determinism"])
        assert report.new == []
        assert report.baseline.total == 0
