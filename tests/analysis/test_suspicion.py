"""Suspicion-dynamics extraction."""

from __future__ import annotations

import pytest

from repro.analysis.suspicion import (
    cumulative_suspicions,
    suspicion_quiescence,
    suspicion_writes,
)
from repro.core.algorithm1 import WriteEfficientOmega
from repro.workloads.scenarios import capped_timers, slow_leader_awb
from repro.memory.memory import SharedMemory


def memory_with_suspicions(times):
    clock = {"t": 0.0}
    memory = SharedMemory(clock=lambda: clock["t"])
    reg = memory.create_register("SUSPICIONS[0][1]", owner=0)
    other = memory.create_register("PROGRESS[0]", owner=0)
    for t in times:
        clock["t"] = t
        reg.write(0, t)
    clock["t"] = 999.0
    other.write(0, 1)  # non-suspicion writes must be ignored
    return memory


class TestExtraction:
    def test_suspicion_writes_filtered(self):
        memory = memory_with_suspicions([1.0, 2.0])
        assert [(t, pid) for t, pid, _ in suspicion_writes(memory)] == [(1.0, 0), (2.0, 0)]

    def test_cumulative_series(self):
        memory = memory_with_suspicions([10.0, 20.0, 30.0])
        xs, ys = cumulative_suspicions(memory, horizon=100.0, bucket=25.0)
        assert xs == [0.0, 25.0, 50.0, 75.0, 100.0]
        assert ys == [0.0, 2.0, 3.0, 3.0, 3.0]

    def test_bucket_validation(self):
        memory = memory_with_suspicions([])
        with pytest.raises(ValueError):
            cumulative_suspicions(memory, horizon=10.0, bucket=0.0)


class TestQuiescence:
    def test_quiet_tail(self):
        memory = memory_with_suspicions([10.0, 20.0])
        verdict = suspicion_quiescence(memory, horizon=1000.0)
        assert verdict.quiesced
        assert verdict.total == 2
        assert verdict.last_write == 20.0

    def test_noisy_tail(self):
        memory = memory_with_suspicions([10.0, 950.0])
        assert not suspicion_quiescence(memory, horizon=1000.0).quiesced

    def test_empty_is_quiescent(self):
        memory = memory_with_suspicions([])
        verdict = suspicion_quiescence(memory, horizon=1000.0)
        assert verdict.quiesced and verdict.last_write is None

    def test_tail_validation(self):
        memory = memory_with_suspicions([])
        with pytest.raises(ValueError):
            suspicion_quiescence(memory, horizon=10.0, tail=1.5)


class TestLemma2Signature:
    """The quiescence dichotomy on real runs: AWB quiet, capped noisy."""

    def test_awb_run_quiesces(self):
        scen = slow_leader_awb(n=4)
        result = scen.run(WriteEfficientOmega, seed=7)
        assert suspicion_quiescence(result.memory, result.horizon, tail=0.02).quiesced

    def test_capped_run_never_quiesces(self):
        scen = capped_timers(n=4)
        result = scen.run(WriteEfficientOmega, seed=7)
        assert not suspicion_quiescence(result.memory, result.horizon, tail=0.2).quiesced
