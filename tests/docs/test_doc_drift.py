"""Doc-drift guard: README/EXPERIMENTS CLI snippets must match the CLI.

Every ``repro <subcommand> ...`` invocation quoted in a fenced code
block of README.md or EXPERIMENTS.md is checked against the real
argument parser: the subcommand must exist and every ``--flag`` must be
one of that subcommand's options.  The README's CLI-overview table must
list exactly the live subcommands, and the scenario/backend names the
docs mention must be registered.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

import pytest

from repro.cli import build_parser
from repro.memory.backend import BACKENDS
from repro.workloads.registry import SCENARIO_FACTORIES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOCS = [REPO_ROOT / "README.md", REPO_ROOT / "EXPERIMENTS.md"]


def _subparsers() -> Dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return dict(action.choices)


def _fenced_lines(text: str) -> Iterator[str]:
    """Logical lines inside ``` fences, backslash continuations joined."""
    in_fence = False
    pending = ""
    for raw in text.splitlines():
        if raw.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            continue
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        if line:
            yield line


def _repro_invocations() -> List[Tuple[str, str, List[str]]]:
    """``(doc, subcommand, flags)`` for every quoted repro invocation."""
    found = []
    for doc in DOCS:
        for line in _fenced_lines(doc.read_text(encoding="utf-8")):
            tokens = line.split()
            # Strip leading env assignments (PYTHONPATH=src python -m repro ...).
            while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
                tokens = tokens[1:]
            if tokens[:3] == ["python", "-m", "repro"]:
                rest = tokens[3:]
            elif tokens[:1] == ["repro"] and len(tokens) > 1:
                rest = tokens[1:]
            else:
                continue
            if not rest or rest[0].startswith("-"):
                continue
            flags = [t for t in rest[1:] if t.startswith("--")]
            found.append((doc.name, rest[0], flags))
    return found


INVOCATIONS = _repro_invocations()


def test_docs_quote_cli_invocations():
    """The drift guard must be guarding something."""
    assert len(INVOCATIONS) >= 8


@pytest.mark.parametrize(
    "doc,subcommand,flags",
    INVOCATIONS,
    ids=[f"{d}:{s}:{'-'.join(f[2:] for f in fl) or 'plain'}" for d, s, fl in INVOCATIONS],
)
def test_quoted_invocation_matches_parser(doc, subcommand, flags):
    subs = _subparsers()
    assert subcommand in subs, f"{doc} quotes unknown subcommand 'repro {subcommand}'"
    options = set(subs[subcommand]._option_string_actions)
    for flag in flags:
        assert flag in options, (
            f"{doc} quotes 'repro {subcommand} {flag}' but the parser has no "
            f"{flag}; README/EXPERIMENTS drifted from the CLI"
        )


def test_readme_cli_table_lists_every_subcommand():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    table_cmds = set(re.findall(r"\|\s*`repro (\w+)", readme))
    assert table_cmds == set(_subparsers()), (
        "README's CLI-overview table and the parser disagree: "
        f"table={sorted(table_cmds)} parser={sorted(_subparsers())}"
    )


def test_readme_scenario_names_are_registered():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    mentioned = set(re.findall(r"`([a-z0-9-]+)`", readme)) & {
        name for name in SCENARIO_FACTORIES
    }
    # The adversarial-suite and emulated-family tables must name real factories.
    assert {"leader-storm", "timely-churn", "nominal-emulated", "replica-crash"} <= mentioned


def test_readme_documents_every_backend():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for backend in BACKENDS:
        assert f"`{backend}`" in readme or f"--memory {backend}" in readme, (
            f"README does not document the {backend!r} memory backend"
        )


def test_architecture_doc_exists_and_maps_packages():
    """ARCHITECTURE.md must exist, be linked from README, and name every
    top-level package under src/repro."""
    arch_path = REPO_ROOT / "ARCHITECTURE.md"
    assert arch_path.is_file(), "ARCHITECTURE.md is missing"
    arch = arch_path.read_text(encoding="utf-8")
    packages = sorted(
        p.name for p in (REPO_ROOT / "src" / "repro").iterdir() if p.is_dir()
    )
    for package in packages:
        assert f"repro/{package}" in arch or f"repro.{package}" in arch, (
            f"ARCHITECTURE.md does not mention package {package}"
        )
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "ARCHITECTURE.md" in readme, "README does not link ARCHITECTURE.md"
