"""Docstring-coverage gate (the repo's ``interrogate`` equivalent).

``tools/docstring_coverage.py`` walks the AST and counts docstrings on
public modules, classes and functions.  The three packages this PR's
documentation pass covered -- ``repro.memory``, ``repro.netsim`` and
``repro.engine`` -- are pinned at 100%; the whole ``src/`` tree must
stay above a floor so new code cannot land silently undocumented.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_tool():
    """Import tools/docstring_coverage.py by file path (not a package)."""
    spec = importlib.util.spec_from_file_location(
        "docstring_coverage", REPO_ROOT / "tools" / "docstring_coverage.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Dataclass processing resolves the defining module through
    # sys.modules, so register before executing.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


tool = _load_tool()


def test_documented_packages_at_full_coverage():
    report = tool.scan_paths(
        [
            REPO_ROOT / "src" / "repro" / "memory",
            REPO_ROOT / "src" / "repro" / "netsim",
            REPO_ROOT / "src" / "repro" / "engine",
        ]
    )
    assert report.percent == 100.0, "undocumented:\n" + "\n".join(report.missing)


def test_whole_tree_above_floor():
    """Floor for the whole tree, ratcheted 80% -> 95% once the
    interface-method overrides (``repro.apps``, ``repro.related``, the
    algorithm/timer/scheduler families) got their own one-liners; the
    remaining slack is headroom for work-in-progress code, not a
    license to land undocumented surface."""
    report = tool.scan_paths([REPO_ROOT / "src" / "repro"])
    assert report.percent >= 95.0, (
        f"src/repro docstring coverage fell to {report.percent:.1f}%:\n"
        + "\n".join(report.missing)
    )


def test_cli_entry_point_works():
    assert (
        tool.main(
            [str(REPO_ROOT / "src" / "repro" / "memory"), "--fail-under", "100", "--quiet"]
        )
        == 0
    )
    assert tool.main([str(REPO_ROOT / "src"), "--fail-under", "100.1", "--quiet"]) == 1


def test_tool_counts_misses(tmp_path):
    sample = tmp_path / "sample.py"
    sample.write_text(
        '"""Module doc."""\n\n\ndef documented():\n    """Doc."""\n\n\ndef bare():\n    pass\n\n\ndef _private():\n    pass\n'
    )
    report = tool.scan_paths([sample])
    assert (report.total, report.documented) == (3, 2)
    assert len(report.missing) == 1 and "bare" in report.missing[0]
