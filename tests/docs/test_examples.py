"""Doc-drift guard: every ``examples/*.py`` must actually run.

Examples are executable documentation; an API change that breaks one
must break the build, not the next reader.  Each example runs in a
subprocess (its own interpreter, like a reader would run it) with the
checkout's ``src/`` on the path.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    """The examples directory must not silently empty out."""
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_example_runs_clean(example: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
