"""Multi-disk Disk Paxos: majority-of-disks consensus on the SAN."""

from __future__ import annotations

import pytest

from repro.apps.disk_paxos import DiskFleet, DiskPaxosProcess
from repro.core.runner import Run
from repro.sim.crash import CrashPlan


def decisions(result):
    return {alg.pid: alg.decision for alg in result.algorithms}


class TestFleet:
    def test_majority(self):
        assert DiskFleet(arrays=[None] * 3).majority == 2
        assert DiskFleet(arrays=[None] * 5).majority == 3
        assert DiskFleet(arrays=[None] * 1).majority == 1

    def test_availability_schedule(self):
        fleet = DiskFleet(arrays=[None] * 3, crash_times={1: 100.0})
        assert fleet.available(1, 50.0)
        assert not fleet.available(1, 100.0)
        assert fleet.available(0, 1e9)

    def test_zero_disks_rejected(self):
        with pytest.raises(ValueError):
            Run(DiskPaxosProcess, n=3, seed=1, horizon=10.0, algo_config={"num_disks": 0})


class TestAllDisksHealthy:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(
            DiskPaxosProcess, n=3, seed=130, horizon=2000.0, algo_config={"num_disks": 3}
        ).execute()

    def test_everyone_decides(self, result):
        assert all(d is not None for d in decisions(result).values())

    def test_agreement(self, result):
        assert len(set(decisions(result).values())) == 1

    def test_validity(self, result):
        assert set(decisions(result).values()) <= {f"v{p}" for p in range(3)}

    def test_blocks_live_on_every_disk(self, result):
        names = result.memory.names()
        for d in range(3):
            assert f"DISK{d}.BLOCK[0]" in names


class TestMinorityDiskFailure:
    def test_decides_despite_one_of_three_disks_crashing(self):
        result = Run(
            DiskPaxosProcess,
            n=3,
            seed=131,
            horizon=3000.0,
            algo_config={"num_disks": 3, "disk_crash_times": {0: 50.0}},
        ).execute()
        decided = decisions(result)
        assert all(d is not None for d in decided.values())
        assert len(set(decided.values())) == 1

    def test_dead_disk_not_written_after_crash(self):
        result = Run(
            DiskPaxosProcess,
            n=3,
            seed=131,
            horizon=3000.0,
            algo_config={"num_disks": 3, "disk_crash_times": {0: 50.0}},
        ).execute()
        late = [
            rec
            for rec in result.memory.writes_in(50.0, 3000.0)
            if rec.register.startswith("DISK0.")
        ]
        assert late == []

    def test_decides_with_two_of_five_disks_down(self):
        result = Run(
            DiskPaxosProcess,
            n=3,
            seed=132,
            horizon=3000.0,
            algo_config={"num_disks": 5, "disk_crash_times": {1: 10.0, 4: 40.0}},
        ).execute()
        decided = decisions(result)
        assert all(d is not None for d in decided.values())
        assert len(set(decided.values())) == 1


class TestMajorityDiskFailure:
    def test_majority_loss_blocks_progress_but_stays_safe(self):
        """Two of three disks down from t=0: nobody can complete a
        phase, so nobody decides -- liveness lost, safety kept."""
        result = Run(
            DiskPaxosProcess,
            n=3,
            seed=133,
            horizon=1500.0,
            algo_config={"num_disks": 3, "disk_crash_times": {0: 0.0, 1: 0.0}},
        ).execute()
        assert all(d is None for d in decisions(result).values())


class TestProcessAndDiskFailuresTogether:
    def test_survives_leader_crash_plus_disk_crash(self):
        result = Run(
            DiskPaxosProcess,
            n=4,
            seed=134,
            horizon=6000.0,
            crash_plan=CrashPlan.single(4, 0, 300.0),
            algo_config={"num_disks": 3, "disk_crash_times": {2: 400.0}},
        ).execute()
        decided = {
            pid: d for pid, d in decisions(result).items() if result.crash_plan.is_correct(pid)
        }
        assert all(d is not None for d in decided.values())
        assert len(set(decided.values())) == 1


class TestAnarchySafetyOverDisks:
    """Without Omega, dueling proposers may livelock (that is the whole
    point of the oracle); safety must hold regardless, and at least some
    seeds should get lucky and decide."""

    @pytest.fixture(scope="class")
    def anarchy_results(self):
        return [
            Run(
                DiskPaxosProcess,
                n=3,
                seed=400 + seed,
                horizon=8000.0,
                algo_config={"num_disks": 3, "anarchy": True},
            ).execute()
            for seed in range(5)
        ]

    def test_agreement_among_deciders(self, anarchy_results):
        for result in anarchy_results:
            decided = [d for d in decisions(result).values() if d is not None]
            assert len(set(decided)) <= 1

    def test_some_runs_decide(self, anarchy_results):
        decided_runs = [
            r for r in anarchy_results if any(d is not None for d in decisions(r).values())
        ]
        assert decided_runs, "every anarchy run livelocked -- suspicious"

    def test_some_runs_livelock(self, anarchy_results):
        """Documented expectation: symmetric proposers preempt each
        other indefinitely on some schedules -- Omega is what removes
        this failure mode (contrast with TestAllDisksHealthy)."""
        stuck = [
            r for r in anarchy_results if all(d is None for d in decisions(r).values())
        ]
        assert stuck, "expected at least one dueling-proposers livelock at this horizon"
