"""Replicated state machine: identical logs, progress across failures."""

from __future__ import annotations

import pytest

from repro.apps.smr import ReplicatedStateMachine
from repro.core.runner import Run
from repro.sim.crash import CrashPlan

COMMANDS = [f"cmd{i}" for i in range(6)]


class TestReplication:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(
            ReplicatedStateMachine,
            n=3,
            seed=110,
            horizon=4000.0,
            algo_config={"commands": COMMANDS},
        ).execute()

    def test_all_logs_complete(self, result):
        for alg in result.algorithms:
            assert len(alg.log) == len(COMMANDS)

    def test_logs_identical(self, result):
        logs = [alg.log for alg in result.algorithms]
        assert logs[0] == logs[1] == logs[2]

    def test_commands_in_order(self, result):
        for slot, (command, _proposer) in enumerate(result.algorithms[0].log):
            assert command == COMMANDS[slot]

    def test_decide_times_monotone(self, result):
        for alg in result.algorithms:
            times = [t for _, t in alg.decide_times]
            assert times == sorted(times)


class TestLeaderCrashMidStream:
    @pytest.fixture(scope="class")
    def result(self):
        plan = CrashPlan.single(3, 0, 500.0)
        return Run(
            ReplicatedStateMachine,
            n=3,
            seed=111,
            horizon=12000.0,
            crash_plan=plan,
            algo_config={"commands": COMMANDS},
        ).execute()

    def test_survivors_complete_the_log(self, result):
        for alg in result.algorithms:
            if alg.pid == 0:
                continue
            assert len(alg.log) == len(COMMANDS)

    def test_survivor_logs_agree(self, result):
        assert result.algorithms[1].log == result.algorithms[2].log

    def test_proposer_changes_after_crash(self, result):
        """Early slots were proposed by pid 0, later slots by a
        survivor -- the leadership handover is visible in the log."""
        proposers = [proposer for _, proposer in result.algorithms[1].log]
        assert 0 in proposers
        assert any(p != 0 for p in proposers)

    def test_crashed_process_prefix_consistent(self, result):
        """Whatever prefix the crashed process applied agrees with the
        survivors' log."""
        dead_log = result.algorithms[0].log
        survivor_log = result.algorithms[1].log
        assert dead_log == survivor_log[: len(dead_log)]
