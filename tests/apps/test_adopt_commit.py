"""Adopt-commit: validity, agreement, commitment -- under arbitrary
interleavings driven by a deterministic toy scheduler."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.adopt_commit import AdoptCommit, AdoptCommitOutcome
from repro.core.interfaces import ReadReg, WriteReg
from repro.memory.memory import SharedMemory


def run_interleaved(n, values, schedule_seed):
    """Drive n propose() generators with a random but seeded
    interleaving; returns the outcomes."""
    memory = SharedMemory(clock=lambda: 0.0)
    ac = AdoptCommit(memory, n)
    gens = {pid: ac.propose(pid, values[pid]) for pid in range(n)}
    inbox = {pid: None for pid in range(n)}
    outcomes = {}
    rng = random.Random(schedule_seed)
    started = set()
    while gens:
        pid = rng.choice(sorted(gens))
        gen = gens[pid]
        try:
            if pid in started:
                op = gen.send(inbox[pid])
            else:
                started.add(pid)
                op = next(gen)
        except StopIteration as stop:
            outcomes[pid] = stop.value
            del gens[pid]
            continue
        if isinstance(op, ReadReg):
            inbox[pid] = op.register.read(pid)
        elif isinstance(op, WriteReg):
            op.register.write(pid, op.value)
            inbox[pid] = None
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op {op}")
    return outcomes


class TestSequential:
    def test_solo_commits(self):
        outcomes = run_interleaved(1, {0: "v"}, 0)
        assert outcomes[0] == AdoptCommitOutcome(True, "v")

    def test_unanimous_commit(self):
        outcomes = run_interleaved(3, {0: "x", 1: "x", 2: "x"}, 1)
        assert all(o.committed and o.value == "x" for o in outcomes.values())

    def test_conflicting_values_all_decide(self):
        outcomes = run_interleaved(2, {0: "a", 1: "b"}, 2)
        assert len(outcomes) == 2


class TestSafetyProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_two_values(self, seed):
        """If anyone commits v, everyone adopts or commits v."""
        outcomes = run_interleaved(3, {0: "a", 1: "b", 2: "a"}, seed)
        committed = {o.value for o in outcomes.values() if o.committed}
        assert len(committed) <= 1
        if committed:
            v = committed.pop()
            assert all(o.value == v for o in outcomes.values())

    @pytest.mark.parametrize("seed", range(12))
    def test_validity(self, seed):
        values = {0: "a", 1: "b", 2: "c"}
        outcomes = run_interleaved(3, values, seed)
        for o in outcomes.values():
            assert o.value in values.values()

    @pytest.mark.parametrize("seed", range(12))
    def test_commitment_on_unanimity(self, seed):
        outcomes = run_interleaved(4, {p: "same" for p in range(4)}, seed)
        assert all(o.committed for o in outcomes.values())


class TestSafetyPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 5),
        st.integers(0, 2**31 - 1),
        st.data(),
    )
    def test_agreement_random_inputs_random_schedules(self, n, seed, data):
        values = {pid: data.draw(st.sampled_from(["a", "b", "c"])) for pid in range(n)}
        outcomes = run_interleaved(n, values, seed)
        committed = {o.value for o in outcomes.values() if o.committed}
        assert len(committed) <= 1
        if committed:
            v = committed.pop()
            assert all(o.value == v for o in outcomes.values())
        for o in outcomes.values():
            assert o.value in values.values()
