"""Leader-lease analysis."""

from __future__ import annotations

import pytest

from repro.apps.lease import lease_intervals
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.runner import Run
from repro.sim.tracing import RunTrace


def trace_from(samples):
    trace = RunTrace()
    for t, pid, leader in samples:
        trace.record(t, "leader_sample", pid=pid, leader=leader)
    return trace


class TestSyntheticTraces:
    def test_long_self_run_yields_interval(self):
        samples = [(float(t), 0, 0) for t in range(0, 101, 10)]
        report = lease_intervals(trace_from(samples), length=30.0)
        assert report.intervals_by_pid[0] == [(30.0, 100.0)]

    def test_short_self_run_yields_nothing(self):
        samples = [(0.0, 0, 0), (10.0, 0, 0), (20.0, 0, 1)]
        report = lease_intervals(trace_from(samples), length=30.0)
        assert 0 not in report.intervals_by_pid

    def test_overlap_detected(self):
        samples = []
        for t in range(0, 101, 10):
            samples.append((float(t), 0, 0))
            samples.append((float(t), 1, 1))
        report = lease_intervals(trace_from(samples), length=20.0)
        assert report.overlap_times  # both held the lease simultaneously

    def test_interrupted_run_splits_intervals(self):
        samples = [(float(t), 0, 0) for t in range(0, 50, 10)]
        samples.append((50.0, 0, 1))
        samples += [(float(t), 0, 0) for t in range(60, 121, 10)]
        report = lease_intervals(trace_from(samples), length=20.0)
        assert len(report.intervals_by_pid[0]) == 2

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            lease_intervals(RunTrace(), length=0.0)

    def test_holders_at(self):
        samples = [(float(t), 2, 2) for t in range(0, 101, 10)]
        report = lease_intervals(trace_from(samples), length=10.0)
        assert report.holders_at(50.0) == [2]
        assert report.holders_at(5.0) == []


class TestOnRealElection:
    def test_unique_lease_holder_after_stabilization(self):
        result = Run(WriteEfficientOmega, n=4, seed=120, horizon=2000.0).execute()
        report = lease_intervals(result.trace, length=100.0)
        stab = result.stabilization(margin=100.0)
        assert stab.stabilized
        # After stabilization + one lease length, exactly one holder.
        probe = stab.time + 150.0
        holders = report.holders_at(probe) or report.holders_at(probe + 50.0)
        assert report.last_overlap() <= stab.time + 100.0
        assert holders == [stab.leader]
