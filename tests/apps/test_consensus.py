"""Omega-based consensus: validity, agreement, liveness, anarchy safety."""

from __future__ import annotations

import pytest

from repro.apps.consensus import ConsensusProcess
from repro.core.algorithm2 import BoundedOmega
from repro.core.runner import Run
from repro.sim.crash import CrashPlan


def decisions(result):
    return {alg.pid: alg.decision for alg in result.algorithms}


class TestLiveness:
    @pytest.fixture(scope="class")
    def result(self):
        return Run(ConsensusProcess, n=4, seed=100, horizon=1500.0).execute()

    def test_every_correct_process_decides(self, result):
        assert all(d is not None for d in decisions(result).values())

    def test_agreement(self, result):
        assert len(set(decisions(result).values())) == 1

    def test_validity(self, result):
        inputs = {f"v{pid}" for pid in range(4)}
        assert set(decisions(result).values()) <= inputs

    def test_decision_times_recorded(self, result):
        assert all(alg.decided_at is not None for alg in result.algorithms)


class TestAgainstCrashes:
    def test_decides_despite_leader_crash(self):
        plan = CrashPlan.single(4, 0, 120.0)
        result = Run(
            ConsensusProcess, n=4, seed=101, horizon=4000.0, crash_plan=plan
        ).execute()
        decided = {pid: d for pid, d in decisions(result).items() if plan.is_correct(pid)}
        assert all(d is not None for d in decided.values())
        assert len(set(decided.values())) == 1

    def test_decides_with_all_but_one_crashing(self):
        plan = CrashPlan.all_but(3, survivor=1, at=400.0, spacing=50.0)
        result = Run(
            ConsensusProcess, n=3, seed=102, horizon=5000.0, crash_plan=plan
        ).execute()
        assert result.algorithms[1].decision is not None


class TestAnarchySafety:
    """Everyone proposes concurrently: liveness is luck, safety is law."""

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_under_concurrent_proposers(self, seed):
        result = Run(
            ConsensusProcess,
            n=4,
            seed=200 + seed,
            horizon=1200.0,
            algo_config={"anarchy": True},
        ).execute()
        decided = [d for d in decisions(result).values() if d is not None]
        assert decided, "anarchy runs at this horizon are expected to decide"
        assert len(set(decided)) == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_validity_under_concurrent_proposers(self, seed):
        result = Run(
            ConsensusProcess,
            n=3,
            seed=300 + seed,
            horizon=1200.0,
            algo_config={"anarchy": True, "inputs": {0: "a", 1: "b", 2: "c"}},
        ).execute()
        decided = {d for d in decisions(result).values() if d is not None}
        assert decided <= {"a", "b", "c"}


class TestWithBoundedOmega:
    def test_consensus_over_algorithm2(self):
        result = Run(
            ConsensusProcess,
            n=3,
            seed=103,
            horizon=3000.0,
            algo_config={"omega_cls": BoundedOmega},
        ).execute()
        decided = decisions(result)
        assert all(d is not None for d in decided.values())
        assert len(set(decided.values())) == 1


class TestCustomInputs:
    def test_decided_value_is_some_input(self):
        result = Run(
            ConsensusProcess,
            n=3,
            seed=104,
            horizon=1500.0,
            algo_config={"inputs": {0: 111, 1: 222, 2: 333}},
        ).execute()
        decided = set(decisions(result).values())
        assert len(decided) == 1
        assert decided.pop() in {111, 222, 333}
