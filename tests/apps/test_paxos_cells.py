"""Protocol-level safety of the Paxos cells, independent of the runner.

These tests drive the ``attempt`` generators directly under seeded
random interleavings -- a different (and more hostile) scheduler than
the simulator -- so consensus safety is witnessed twice over
independent execution engines.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.consensus import EMPTY_BLOCK, PaxosCell
from repro.apps.disk_paxos import DiskFleet, DiskPaxosCell
from repro.core.interfaces import LocalStep, ReadReg, WriteReg
from repro.memory.memory import SharedMemory


def proposer(cell, value):
    """Propose until decided; returns the decided value."""
    ballot = cell.next_ballot(0)
    while True:
        outcome = yield from cell.attempt(ballot, value)
        if outcome.decided:
            return outcome.value
        ballot = cell.next_ballot(outcome.max_mbal_seen)


def interleave(gens, schedule_seed, max_steps=20000):
    """Run generators under a seeded random interleaving; returns
    pid -> decided value (None when the step cap hit first)."""
    rng = random.Random(schedule_seed)
    inbox = {pid: None for pid in gens}
    started = set()
    results = {pid: None for pid in gens}
    live = dict(gens)
    steps = 0
    while live and steps < max_steps:
        steps += 1
        pid = rng.choice(sorted(live))
        gen = live[pid]
        try:
            if pid in started:
                op = gen.send(inbox[pid])
            else:
                started.add(pid)
                op = next(gen)
        except StopIteration as stop:
            results[pid] = stop.value
            del live[pid]
            continue
        if isinstance(op, ReadReg):
            inbox[pid] = op.register.read(pid)
        elif isinstance(op, WriteReg):
            op.register.write(pid, op.value)
            inbox[pid] = None
        elif isinstance(op, LocalStep):
            inbox[pid] = None
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op {op}")
    return results


def single_memory_cells(n):
    memory = SharedMemory(clock=lambda: 0.0, log_reads=False)
    blocks = memory.create_array("BLOCK", n, initial=EMPTY_BLOCK)
    return [PaxosCell(blocks, pid, n) for pid in range(n)]


def disk_cells(n, m, crash_times=None):
    memory = SharedMemory(clock=lambda: 0.0, log_reads=False)
    fleet = DiskFleet(
        arrays=[memory.create_array(f"D{d}", n, initial=EMPTY_BLOCK) for d in range(m)],
        crash_times=crash_times or {},
    )
    # Clock pinned at 0: crash_times={d: 0.0} means "down from the start".
    return [DiskPaxosCell(fleet, pid, n, lambda: 0.0) for pid in range(n)]


class TestSingleMemoryPaxosSafety:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_under_random_interleaving(self, seed):
        cells = single_memory_cells(3)
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(3)}
        results = interleave(gens, seed)
        decided = [v for v in results.values() if v is not None]
        assert len(set(decided)) <= 1
        assert decided, "random asymmetric schedules should decide"

    @pytest.mark.parametrize("seed", range(15))
    def test_validity(self, seed):
        cells = single_memory_cells(4)
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(4)}
        results = interleave(gens, seed)
        for v in results.values():
            if v is not None:
                assert v in {f"v{p}" for p in range(4)}

    def test_solo_proposer_decides_own_value(self):
        cells = single_memory_cells(3)
        results = interleave({0: proposer(cells[0], "mine")}, 0)
        assert results[0] == "mine"

    def test_late_proposer_adopts_decided_value(self):
        cells = single_memory_cells(2)
        first = interleave({0: proposer(cells[0], "early")}, 0)
        assert first[0] == "early"
        second = interleave({1: proposer(cells[1], "late")}, 1)
        assert second[1] == "early"

    def test_ballot_uniqueness(self):
        cells = single_memory_cells(3)
        ballots = {cells[pid].next_ballot(100) for pid in range(3)}
        assert len(ballots) == 3


class TestDiskPaxosCellSafety:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_three_disks(self, seed):
        cells = disk_cells(3, 3)
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(3)}
        results = interleave(gens, seed)
        decided = [v for v in results.values() if v is not None]
        assert len(set(decided)) <= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_with_one_dead_disk(self, seed):
        cells = disk_cells(3, 3, crash_times={0: 0.0})
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(3)}
        results = interleave(gens, seed)
        decided = [v for v in results.values() if v is not None]
        assert len(set(decided)) <= 1

    def test_no_majority_never_decides(self):
        cells = disk_cells(2, 3, crash_times={0: 0.0, 1: 0.0})
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(2)}
        results = interleave(gens, 0, max_steps=3000)
        assert all(v is None for v in results.values())


class TestPaxosSafetyPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_single_memory_agreement(self, n, seed):
        cells = single_memory_cells(n)
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(n)}
        results = interleave(gens, seed, max_steps=30000)
        decided = [v for v in results.values() if v is not None]
        assert len(set(decided)) <= 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(0, 2))
    def test_disk_paxos_agreement_any_single_disk_down(self, seed, dead_disk):
        cells = disk_cells(3, 3, crash_times={dead_disk: 0.0})
        gens = {pid: proposer(cells[pid], f"v{pid}") for pid in range(3)}
        results = interleave(gens, seed, max_steps=30000)
        decided = [v for v in results.values() if v is not None]
        assert len(set(decided)) <= 1
