"""Canonical scenarios: the workloads every experiment draws from.

Each scenario fixes the environment knobs -- asynchrony profile, timer
behaviour, crash plan, initial-value scrambling, SAN latency -- and can
instantiate a :class:`~repro.core.runner.Run` for any algorithm and
seed.  Horizons are chosen generously above the stabilization knobs so
"did not stabilize by the horizon" is meaningful evidence, not noise
(Algorithm 2's hand-shake needs roughly 10x Algorithm 1's horizon under
identical timers; see EXPERIMENTS.md).
"""

from __future__ import annotations

import functools
import inspect
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.core.interfaces import OmegaAlgorithm
from repro.core.runner import Run, RunResult
from repro.memory.disk import Disk, LatencyModel
from repro.memory.memory import SharedMemory
from repro.sim.crash import CrashPlan
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import (
    AlternatingBurstDelay,
    ChurningTimelyDelay,
    GstRampDelay,
    HeavyTailDelay,
    PartiallySynchronousDelay,
    StepDelayModel,
    UniformDelay,
)
from repro.timers.awb import (
    AccurateTimer,
    AsymptoticallyWellBehavedTimer,
    CappedTimer,
    TimerBehavior,
)
from repro.timers.functions import LinearF, LogF, SqrtF


def scenario_factory(factory: Callable[..., "Scenario"]) -> Callable[..., "Scenario"]:
    """Attach a picklable ``(factory_name, kwargs)`` ref to every instance.

    The parallel engine rebuilds scenarios inside worker processes from
    this ref (lambdas in the ``make_*`` fields cannot be pickled).  The
    bound arguments include the factory's defaults, so the engine's
    content hashes change when a factory's defaults do -- stale cache
    entries never alias fresh ones.
    """
    sig = inspect.signature(factory)

    @functools.wraps(factory)
    def wrapper(*args: Any, **kwargs: Any) -> "Scenario":
        scen = factory(*args, **kwargs)
        bound = sig.bind(*args, **kwargs)
        bound.apply_defaults()
        scen.ref = (factory.__name__, dict(bound.arguments))
        return scen

    return wrapper


def scramble_registers(memory: SharedMemory, rng: Any) -> None:
    """Set *arbitrary* initial register values (footnote 7).

    Booleans get random booleans, integers random small naturals; the
    algorithms must converge regardless (self-stabilization of the
    shared variables).
    """
    for reg in memory.all_registers():
        current = reg.peek()
        if isinstance(current, bool):
            reg.poke(rng.random() < 0.5)
        elif isinstance(current, int):
            reg.poke(rng.randrange(0, 8))


@dataclass
class Scenario:
    """A named, reproducible run configuration."""

    name: str
    n: int
    horizon: float
    description: str = ""
    sample_interval: float = 5.0
    snapshot_interval: Optional[float] = None
    #: Factories receive the run's RNG registry so each seed re-derives
    #: fresh, independent randomness.
    make_delay: Optional[Callable[[RngRegistry], StepDelayModel]] = None
    make_timers: Optional[Callable[[RngRegistry, int], Dict[int, TimerBehavior]]] = None
    make_crash_plan: Optional[Callable[[RngRegistry], CrashPlan]] = None
    make_disk: Optional[Callable[[RngRegistry], Disk]] = None
    scramble: Optional[Callable[[SharedMemory, Any], None]] = None
    algo_config: Dict[str, Any] = field(default_factory=dict)
    log_reads: bool = True
    trace_events: bool = True
    #: Stability margin expected of this scenario (passed to the
    #: eventual-leadership verdict by tests/benches).
    margin: float = 0.0
    #: Assumption class this environment satisfies *by construction*:
    #: ``"awb"`` (AWB1+AWB2 hold within the horizon -- the default),
    #: ``"ev-sync"`` (every process eventually timely) or ``"none"``
    #: (adversarial beyond the paper's assumptions).  The property
    #: checkers (:mod:`repro.props`) expect an algorithm's claimed
    #: theorems only when this class covers the algorithm's requirement.
    assumption: str = "awb"
    #: Memory backend the runs use (:data:`repro.memory.backend.BACKENDS`):
    #: ``"shared"`` or ``"emulated"``.
    memory: str = "shared"
    #: Plain-dict :class:`~repro.memory.emulated.EmulationConfig` knobs
    #: (replica count, link model, replica crashes); empty means the
    #: emulation defaults, and it is ignored by the shared backend.
    emulation: Dict[str, Any] = field(default_factory=dict)
    #: Consistency level of the emulated registers
    #: (:data:`repro.memory.emulated.CONSISTENCY_LEVELS`): ``"regular"``
    #: single-phase reads (all the paper needs) or ``"atomic"``
    #: write-back reads.  ``None`` -- the default -- defers to the
    #: ``consistency`` key of :attr:`emulation` (itself defaulting to
    #: regular); a set value overrides that key.  Ignored by the shared
    #: backend, whose instantaneous registers are atomic by
    #: construction.
    consistency: Optional[str] = None
    #: ``(factory_name, kwargs)`` attached by :func:`scenario_factory`;
    #: lets the parallel engine rebuild this scenario in a worker
    #: process.  ``None`` for hand-built instances (in-process only).
    ref: Optional[Tuple[str, Dict[str, Any]]] = field(
        default=None, compare=False, repr=False
    )

    def build(self, algorithm_cls: Type[OmegaAlgorithm], seed: int = 0, **overrides: Any) -> Run:
        """Instantiate a :class:`Run` for ``algorithm_cls`` at ``seed``."""
        rng = RngRegistry(seed)
        kwargs: Dict[str, Any] = dict(
            seed=seed,
            horizon=self.horizon,
            sample_interval=self.sample_interval,
            snapshot_interval=self.snapshot_interval,
            delay_model=self.make_delay(rng) if self.make_delay else None,
            timer_behaviors=self.make_timers(rng, self.n) if self.make_timers else None,
            crash_plan=self.make_crash_plan(rng) if self.make_crash_plan else None,
            disk=self.make_disk(rng) if self.make_disk else None,
            scramble=self.scramble,
            algo_config=dict(self.algo_config),
            log_reads=self.log_reads,
            trace_events=self.trace_events,
            memory=self.memory,
            emulation=dict(self.emulation) or None,
            consistency=self.consistency if self.memory == "emulated" else None,
        )
        kwargs.update(overrides)
        if kwargs.get("memory") == "shared":
            # Forcing an emulated scenario back onto the shared backend
            # (e.g. ``repro run --memory shared``) drops the emulation
            # knobs (consistency and membership included) instead of
            # tripping the dead-configuration guards.
            kwargs["emulation"] = None
            kwargs["consistency"] = None
            kwargs["membership"] = None
        return Run(algorithm_cls, self.n, **kwargs)

    def run(self, algorithm_cls: Type[OmegaAlgorithm], seed: int = 0, **overrides: Any) -> RunResult:
        """Build and execute in one step."""
        return self.build(algorithm_cls, seed, **overrides).execute()


# ----------------------------------------------------------------------
# Timer factory helpers
# ----------------------------------------------------------------------
def _awb_timers(
    alpha: float = 2.0,
    chaos_until: float = 0.0,
    jitter: float = 0.25,
) -> Callable[[RngRegistry, int], Dict[int, TimerBehavior]]:
    def make(rng: RngRegistry, n: int) -> Dict[int, TimerBehavior]:
        return {
            pid: AsymptoticallyWellBehavedTimer(
                LinearF(alpha), rng, chaos_until=chaos_until, jitter=jitter
            )
            for pid in range(n)
        }

    return make


def _accurate_timers() -> Callable[[RngRegistry, int], Dict[int, TimerBehavior]]:
    def make(rng: RngRegistry, n: int) -> Dict[int, TimerBehavior]:
        return {pid: AccurateTimer() for pid in range(n)}

    return make


# ----------------------------------------------------------------------
# Canonical scenarios
# ----------------------------------------------------------------------
@scenario_factory
def nominal(n: int = 4, horizon: float = 4000.0) -> Scenario:
    """Mild uniform asynchrony, well-behaved timers, no crashes.

    The baseline sanity workload: every algorithm must elect the
    lexmin-favoured process and stay stable.
    """
    return Scenario(
        name=f"nominal-n{n}",
        n=n,
        horizon=horizon,
        description="uniform delays, AWB timers without chaos, fault-free",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.1,
    )


@scenario_factory
def chaotic_timers(n: int = 4, horizon: float = 6000.0, chaos_fraction: float = 0.2) -> Scenario:
    """Figure 1 conditions: timers fire arbitrarily during a long prefix.

    False suspicions pile up during the chaos era; once timers dominate
    ``f`` the timeouts built from accumulated suspicions out-wait the
    leader's write period and the election stabilizes.
    """
    chaos_until = horizon * chaos_fraction
    return Scenario(
        name=f"chaotic-timers-n{n}",
        n=n,
        horizon=horizon,
        description=f"AWB timers misbehave until t={chaos_until:.0f}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0, chaos_until=chaos_until, jitter=0.5),
        margin=horizon * 0.05,
    )


@scenario_factory
def leader_crash(n: int = 4, horizon: float = 6000.0, crash_at_fraction: float = 0.35) -> Scenario:
    """The stable leader (lexmin favourite, pid 0) crashes mid-run.

    Followers must notice the silence, suspect, and re-elect a correct
    process -- the core liveness scenario.
    """
    crash_at = horizon * crash_at_fraction
    return Scenario(
        name=f"leader-crash-n{n}",
        n=n,
        horizon=horizon,
        description=f"pid 0 crashes at t={crash_at:.0f}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.single(n, 0, crash_at),
        margin=horizon * 0.05,
    )


@scenario_factory
def cascade(
    n: int = 6,
    horizon: float = 8000.0,
    crashes: Optional[int] = None,
    start: Optional[float] = None,
    spacing: Optional[float] = None,
) -> Scenario:
    """``crashes`` processes crash one by one (t-independence stress).

    Defaults to half the processes starting at 20% of the horizon; the
    scalability bench sweeps ``crashes`` from 0 up to ``n - 1`` with
    explicit timings.
    """
    victims = list(range(n // 2 if crashes is None else crashes))
    start_t = horizon * 0.2 if start is None else start
    spacing_t = horizon * 0.08 if spacing is None else spacing
    name = f"cascade-n{n}" if crashes is None else f"cascade-n{n}-t{len(victims)}"
    return Scenario(
        name=name,
        n=n,
        horizon=horizon,
        description=f"pids {victims} crash in sequence",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=(
            (lambda rng: CrashPlan.cascade(n, victims, start=start_t, spacing=spacing_t))
            if victims
            else (lambda rng: CrashPlan.none(n))
        ),
        margin=horizon * 0.05,
    )


@scenario_factory
def all_but_one(n: int = 5, horizon: float = 6000.0, survivor: int = 2) -> Scenario:
    """Extreme fault load: every process but one crashes (t = n-1).

    Both algorithms are independent of ``t``; the survivor must elect
    itself.
    """
    return Scenario(
        name=f"all-but-one-n{n}",
        n=n,
        horizon=horizon,
        description=f"all crash except pid {survivor}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.all_but(
            n, survivor, at=horizon * 0.2, spacing=horizon * 0.05
        ),
        margin=horizon * 0.05,
    )


@scenario_factory
def awb_only(n: int = 4, horizon: float = 8000.0, timely_pid: int = 0) -> Scenario:
    """The paper's *exact* assumption and nothing more.

    Only ``timely_pid`` becomes timely (AWB1) after a stabilization
    time; every other process keeps heavy-tailed, unbounded-looking
    delays forever.  AWB-based algorithms must stabilize; the
    eventually-synchronous baseline has no such guarantee here.
    """
    gst = horizon * 0.15
    return Scenario(
        name=f"awb-only-n{n}",
        n=n,
        horizon=horizon,
        description=f"only pid {timely_pid} timely after t={gst:.0f}; others heavy-tailed",
        make_delay=lambda rng: PartiallySynchronousDelay(
            base=HeavyTailDelay(rng, scale=0.6, shape=1.4, cap=60.0),
            timely_pids={timely_pid},
            gst=gst,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        ),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


@scenario_factory
def ev_sync(n: int = 4, horizon: float = 4000.0) -> Scenario:
    """Eventually synchronous system: everyone timely after gst.

    The assumption the baseline [13]-style algorithm needs; strictly
    stronger than AWB.
    """
    gst = horizon * 0.15
    return Scenario(
        name=f"ev-sync-n{n}",
        n=n,
        horizon=horizon,
        description=f"all processes timely after t={gst:.0f}",
        make_delay=lambda rng: PartiallySynchronousDelay(
            base=HeavyTailDelay(rng, scale=0.6, shape=1.4, cap=30.0),
            timely_pids=set(range(n)),
            gst=gst,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        ),
        make_timers=_accurate_timers(),
        margin=horizon * 0.02,
        assumption="ev-sync",
    )


@scenario_factory
def scrambled(n: int = 4, horizon: float = 6000.0) -> Scenario:
    """Arbitrary initial register values (footnote 7 self-stabilization)."""
    base = nominal(n, horizon)
    base.name = f"scrambled-n{n}"
    base.description = "registers start with arbitrary values"
    base.scramble = scramble_registers
    return base


@scenario_factory
def random_faults(n: int = 5, horizon: float = 8000.0, max_failures: int | None = None) -> Scenario:
    """Fuzz workload: random crash pattern drawn from the run seed.

    Each seed yields a different legal fault pattern (up to ``n - 1``
    crashes at random times in the first half of the run) -- the sweep
    over seeds samples the fault space instead of hand-picking it.
    """
    return Scenario(
        name=f"random-faults-n{n}",
        n=n,
        horizon=horizon,
        description="seed-derived random crash pattern (up to n-1 crashes)",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.random(
            n, rng, max_failures=max_failures, horizon=horizon * 0.5, probability=0.5
        ),
        margin=horizon * 0.05,
    )


@scenario_factory
def san(n: int = 3, horizon: float = 20000.0) -> Scenario:
    """Network-attached-disk deployment (Section 1 motivation).

    Every register access becomes an interval operation with uniform
    latency; the linearizability of the resulting history is checked by
    the SAN tests.  Horizon scales with latency (each algorithm step
    now costs several time units).
    """
    return Scenario(
        name=f"san-n{n}",
        n=n,
        horizon=horizon,
        description="registers behind a disk with latency 1..4",
        sample_interval=20.0,
        make_delay=lambda rng: UniformDelay(rng, 0.3, 0.8),
        make_timers=_awb_timers(alpha=10.0),
        make_disk=lambda rng: Disk(LatencyModel(rng, lo=1.0, hi=4.0)),
        margin=horizon * 0.02,
    )


def _slow_leader_delay(n: int, timely_pid: int, rng: RngRegistry) -> StepDelayModel:
    """AWB1 with a *large* beta: the timely process is slow but bounded
    (per-step delay in [4.5, 5.0] from the start), everyone else is fast
    on average with heavy-tailed spikes.  Under this profile a follower's
    monitoring cadence is much faster than the timely process's write
    cadence, so only timeouts that grow without bound (AWB2) can learn
    to wait it out -- the exact role condition (f2) plays in Lemma 2."""
    return PartiallySynchronousDelay(
        base=HeavyTailDelay(rng, scale=0.5, shape=1.3, cap=60.0),
        timely_pids={timely_pid},
        gst=0.0,
        rng=rng,
        timely_lo=4.5,
        timely_hi=5.0,
    )


@scenario_factory
def capped_timers(n: int = 4, horizon: float = 4000.0, cap: float = 3.0, timely_pid: int = 0) -> Scenario:
    """NEGATIVE scenario: follower timers violate AWB2 (bounded cap).

    The timely process honours AWB1 but with a large beta (slow,
    bounded steps); follower timers can never wait longer than ``cap``,
    so they falsely suspect it forever, and the spiky followers keep
    suspecting each other too -- the election churns without end.  The
    positive twin :func:`slow_leader_awb` differs *only* in the timer
    behaviour and stabilizes, demonstrating that AWB2 is load-bearing.
    """

    def make(rng: RngRegistry, count: int) -> Dict[int, TimerBehavior]:
        return {pid: CappedTimer(rng, cap=cap) for pid in range(count)}

    return Scenario(
        name=f"capped-timers-n{n}",
        n=n,
        horizon=horizon,
        description=f"AWB2 violated: timer durations capped at {cap}, slow timely leader",
        make_delay=lambda rng: _slow_leader_delay(n, timely_pid, rng),
        make_timers=make,
        margin=horizon * 0.3,
        assumption="none",
    )


@scenario_factory
def slow_leader_awb(n: int = 4, horizon: float = 12000.0, timely_pid: int = 0) -> Scenario:
    """POSITIVE twin of :func:`capped_timers`: identical asynchrony
    profile, but asymptotically well-behaved timers.  Timeouts grow with
    the accumulated suspicions until they dominate the slow leader's
    write period, after which the election stabilizes (Lemma 2's
    mechanism, observable in the trace)."""
    return Scenario(
        name=f"slow-leader-awb-n{n}",
        n=n,
        horizon=horizon,
        description="slow timely leader, AWB timers (positive twin of capped-timers)",
        make_delay=lambda rng: _slow_leader_delay(n, timely_pid, rng),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


# ----------------------------------------------------------------------
# Adversarial suite: environments that stress the assumptions while
# still (by construction) satisfying AWB -- the workloads `repro check`
# audits the theorems against.
# ----------------------------------------------------------------------
@scenario_factory
def leader_storm(
    n: int = 5,
    horizon: float = 12000.0,
    crashes: int = 3,
    burst: int = 2,
    start_fraction: float = 0.15,
    gap_fraction: float = 0.15,
) -> Scenario:
    """Targeted-leader crash storms: the adversary kills whoever is
    about to win.

    Both algorithms favour the lexmin candidate (lowest live pid), so
    crashing pids in ascending bursts repeatedly decapitates the
    election just as it settles.  AWB still holds -- the eventual
    survivor set contains a timely process -- so eventual leadership
    must survive every storm.
    """
    start = horizon * start_fraction
    gap = horizon * gap_fraction
    return Scenario(
        name=f"leader-storm-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{crashes} crashes in bursts of {burst} target the next lexmin "
            f"favourite, storms {gap:.0f} apart"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.leader_storms(
            n, crashes, start=start, gap=gap, burst=burst, spacing=2.0
        ),
        margin=horizon * 0.05,
    )


@scenario_factory
def gst_ramp(
    n: int = 4,
    horizon: float = 8000.0,
    gst_fraction: float = 0.35,
    start_scale: float = 8.0,
) -> Scenario:
    """GST ramp: asynchrony decays *gradually* instead of switching off.

    The slowly improving prefix feeds the timers a moving target of
    false-suspicion intervals; AWB1 holds from the ramp's end, so the
    election must still settle.
    """
    gst = horizon * gst_fraction
    return Scenario(
        name=f"gst-ramp-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"per-step delays shrink linearly from {start_scale:g}x until "
            f"t={gst:.0f}, timely after"
        ),
        make_delay=lambda rng: GstRampDelay(
            rng, gst=gst, start_scale=start_scale, lo=0.5, hi=1.5
        ),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.05,
    )


@scenario_factory
def async_bursts(
    n: int = 4,
    horizon: float = 10000.0,
    period: float = 500.0,
    burst_fraction: float = 0.4,
    timely_pid: int = 0,
    gst_fraction: float = 0.2,
) -> Scenario:
    """Alternating asynchrony bursts that never end for the followers.

    Every process cycles between calm and slow phases; after the gst
    only ``timely_pid`` drops out of the cycle (AWB1), while the other
    processes keep bursting for the whole run, so follower speeds never
    settle and timeouts chase a permanently oscillating environment.
    """
    gst = horizon * gst_fraction
    return Scenario(
        name=f"async-bursts-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"calm/burst cycle of period {period:g}; only pid {timely_pid} "
            f"calm after t={gst:.0f}"
        ),
        make_delay=lambda rng: AlternatingBurstDelay(
            rng,
            period=period,
            burst_fraction=burst_fraction,
            timely_pids={timely_pid},
            gst=gst,
        ),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


@scenario_factory
def near_all_cascade(
    n: int = 6,
    horizon: float = 12000.0,
    survivors: int = 2,
    start_fraction: float = 0.2,
    spacing: float = 4.0,
) -> Scenario:
    """Near-``n-1`` crash cascade: all but ``survivors`` processes die
    in rapid succession (``spacing`` apart, not the leisurely pace of
    :func:`cascade`).  Exercises t-independence at the edge: the
    election must re-settle on the lowest surviving pid with almost the
    whole membership gone.
    """
    if not 1 <= survivors < n:
        raise ValueError(f"need 1 <= survivors < n, got {survivors}")
    victims = list(range(n - survivors))
    start = horizon * start_fraction
    return Scenario(
        name=f"near-all-cascade-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"pids {victims} crash {spacing:g} apart from t={start:.0f}; "
            f"{survivors} survivor(s)"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.cascade(
            n, victims, start=start, spacing=spacing
        ),
        margin=horizon * 0.05,
    )


@scenario_factory
def timely_churn(
    n: int = 4,
    horizon: float = 12000.0,
    epoch_fraction: float = 0.05,
    settle_fraction: float = 0.3,
    final_pid: int = 0,
) -> Scenario:
    """AWB1 source churn: the timely identity rotates before settling.

    The shared-memory analogue of eventual-t-source source-set churn
    (cf. :class:`repro.netsim.network.SourceChurnLinks`): during the
    prefix a different process is timely each epoch while the rest stay
    heavy-tailed; only after the settle point does ``final_pid`` hold
    the role forever.  Algorithms must not commit to an early witness.
    """
    settle = horizon * settle_fraction
    epoch = horizon * epoch_fraction
    return Scenario(
        name=f"timely-churn-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"timely pid rotates every {epoch:.0f} until t={settle:.0f}, "
            f"then pid {final_pid} forever; others heavy-tailed"
        ),
        make_delay=lambda rng: ChurningTimelyDelay(
            base=HeavyTailDelay(rng, scale=0.6, shape=1.4, cap=40.0),
            candidates=list(range(n)),
            epoch=epoch,
            settle_at=settle,
            final_pid=final_pid,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        ),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


# ----------------------------------------------------------------------
# Emulated-backend family: the same environments with the registers
# realized by the ABD quorum emulation over message passing
# (:mod:`repro.memory.emulated`).  Horizons are scaled up because every
# register access now costs a quorum round trip on top of the step
# delay; margins scale with them.
# ----------------------------------------------------------------------
def _emulation_knobs(
    replicas: int, links: str, delta: float, **extra: Any
) -> Dict[str, Any]:
    """Assemble the plain-dict emulation config the factories share."""
    knobs: Dict[str, Any] = {"replicas": replicas, "links": links}
    if links == "sync":
        knobs["link_params"] = {"delta": delta}
    knobs.update(extra)
    return knobs


@scenario_factory
def nominal_emulated(
    n: int = 4,
    horizon: float = 6000.0,
    replicas: int = 3,
    links: str = "sync",
    delta: float = 0.25,
) -> Scenario:
    """:func:`nominal` with ABD-emulated registers.

    The baseline emulated workload and one half of the
    backend-equivalence pair: under the deterministic ``sync`` link
    model the run consumes exactly the same random streams as the
    shared-memory run of the same seed, so Algorithm 1 must elect the
    same leader.
    """
    return Scenario(
        name=f"nominal-emulated-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"nominal over {replicas}-replica ABD emulation, {links} links"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.1,
        memory="emulated",
        emulation=_emulation_knobs(replicas, links, delta),
    )


@scenario_factory
def leader_crash_emulated(
    n: int = 4,
    horizon: float = 9000.0,
    crash_at_fraction: float = 0.35,
    replicas: int = 3,
    links: str = "sync",
    delta: float = 0.25,
) -> Scenario:
    """:func:`leader_crash` with ABD-emulated registers.

    The core liveness scenario on the message-passing substrate: the
    stable leader crashes mid-run and the re-election must complete
    through quorum rounds.
    """
    crash_at = horizon * crash_at_fraction
    return Scenario(
        name=f"leader-crash-emulated-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"pid 0 crashes at t={crash_at:.0f}; {replicas}-replica ABD "
            f"emulation, {links} links"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.single(n, 0, crash_at),
        margin=horizon * 0.05,
        memory="emulated",
        emulation=_emulation_knobs(replicas, links, delta),
    )


@scenario_factory
def replica_crash(
    n: int = 4,
    horizon: float = 9000.0,
    replicas: int = 5,
    crash_replicas: int = 2,
    crash_at_fraction: float = 0.25,
    crash_spacing: float = 50.0,
    delta: float = 0.25,
) -> Scenario:
    """A minority of *replica nodes* crash-stops mid-run.

    The fault axis no shared-memory scenario can express: the processes
    all stay correct, but the substrate under them degrades.  ABD
    quorums tolerate any minority of replica crashes, so the election
    must neither stall nor churn while acks thin out.
    """
    if crash_replicas > (replicas - 1) // 2:
        raise ValueError(
            f"crashing {crash_replicas} of {replicas} replicas would kill the majority"
        )
    start = horizon * crash_at_fraction
    crash_times = {
        str(i): start + i * crash_spacing for i in range(crash_replicas)
    }
    return Scenario(
        name=f"replica-crash-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{crash_replicas} of {replicas} ABD replicas crash from "
            f"t={start:.0f}; all processes correct"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.05,
        memory="emulated",
        emulation=_emulation_knobs(
            replicas, "sync", delta, replica_crash_times=crash_times
        ),
    )


@scenario_factory
def nominal_emulated_atomic(
    n: int = 4,
    horizon: float = 9000.0,
    replicas: int = 3,
    delta: float = 0.25,
) -> Scenario:
    """:func:`nominal_emulated` at the atomic consistency level.

    Every read runs the ABD write-back phase, and the per-operation
    history recorder is on: the run's interval history is audited by
    :func:`repro.memory.linearizability.check_atomic_history` and must
    be linearizable -- turning "the emulation is correct" from an
    assumption into a checked property (``repro check`` includes this
    cell).  The horizon scales up again over :func:`nominal_emulated`
    because the write-back doubles every read's quorum cost
    (Algorithm 2's hand-shake feels it most).
    """
    base = nominal_emulated(n, horizon, replicas, "sync", delta)
    base.name = f"nominal-emulated-atomic-n{n}"
    base.description += ", atomic (write-back) reads, history audited"
    base.consistency = "atomic"
    base.emulation = {**base.emulation, "record_history": True}
    return base


@scenario_factory
def replica_crash_atomic(
    n: int = 4,
    horizon: float = 14000.0,
    replicas: int = 5,
    crash_replicas: int = 2,
    crash_at_fraction: float = 0.25,
    crash_spacing: float = 50.0,
    delta: float = 0.25,
) -> Scenario:
    """:func:`replica_crash` at the atomic consistency level.

    The harder audit cell: write-back phases must keep assembling
    majorities while a minority of replicas crash-stops under them, and
    the recorded history must *still* be linearizable -- quorum
    intersection among the survivors is exactly what ABD promises.
    """
    base = replica_crash(
        n, horizon, replicas, crash_replicas, crash_at_fraction, crash_spacing, delta
    )
    base.name = f"replica-crash-atomic-n{n}"
    base.description += "; atomic (write-back) reads, history audited"
    base.consistency = "atomic"
    base.emulation = {**base.emulation, "record_history": True}
    return base


@scenario_factory
def emulated_lossy(
    n: int = 3,
    horizon: float = 9000.0,
    replicas: int = 3,
    loss: float = 0.1,
    retry_interval: float = 10.0,
) -> Scenario:
    """ABD emulation over fair-lossy links (retransmission stress).

    Quorum phases must survive dropped messages via periodic
    retransmission to unacked replicas; delays are arbitrary but
    finite, so AWB still holds and the election must stabilize.
    """
    return Scenario(
        name=f"emulated-lossy-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{replicas}-replica ABD emulation over fair-lossy links "
            f"(loss {loss:g}, retry every {retry_interval:g})"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.05,
        memory="emulated",
        emulation={
            "replicas": replicas,
            "links": "lossy",
            "link_params": {"loss": loss, "lo": 0.5, "hi": 4.0, "cap": 8.0},
            "retry_interval": retry_interval,
        },
    )


@scenario_factory
def emulated_lossy_audit(
    n: int = 3,
    horizon: float = 9000.0,
    replicas: int = 3,
    loss: float = 0.1,
    retry_interval: float = 10.0,
) -> Scenario:
    """:func:`emulated_lossy` with the operation recorder armed.

    The retransmission-stress audit cell: dropped quorum messages force
    duplicate REQ/ACK traffic, and the audit asserts that no replay or
    re-ack ever manufactures a stale read -- every recorded read must
    still satisfy the regular-register condition.
    """
    base = emulated_lossy(n, horizon, replicas, loss, retry_interval)
    base.name = f"emulated-lossy-audit-n{n}"
    base.description += "; operation history recorded and audited (regular)"
    base.emulation = {**base.emulation, "record_history": True}
    return base


@scenario_factory
def emulated_gst_ramp(
    n: int = 4,
    horizon: float = 10000.0,
    replicas: int = 3,
    gst_fraction: float = 0.3,
    start_scale: float = 6.0,
) -> Scenario:
    """ABD emulation over links that only *gradually* become timely.

    The PR 2 GST-ramp adversary ported to the substrate: quorum round
    trips shrink linearly until the GST, so early elections are built
    on slow, moving evidence.  AWB holds from the ramp's end and the
    election must settle.
    """
    gst = horizon * gst_fraction
    return Scenario(
        name=f"emulated-gst-ramp-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{replicas}-replica ABD emulation; link delays shrink from "
            f"{start_scale:g}x until t={gst:.0f}"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.05,
        memory="emulated",
        emulation={
            "replicas": replicas,
            "links": "gst-ramp",
            "link_params": {
                "gst": gst,
                "start_scale": start_scale,
                "lo": 0.25,
                "hi": 1.0,
            },
        },
    )


@scenario_factory
def emulated_gst_ramp_audit(
    n: int = 4,
    horizon: float = 10000.0,
    replicas: int = 3,
    gst_fraction: float = 0.3,
    start_scale: float = 6.0,
    retry_interval: float = 4.0,
) -> Scenario:
    """:func:`emulated_gst_ramp` with the operation recorder armed.

    The ramp-stress audit cell: before the GST the stretched quorum
    round trips outlast the (deliberately tight) retransmission timer,
    so phases re-broadcast into links that deliver *everything* --
    duplicate replies and acks flood back, and the audit asserts the
    reply dedup never double-counts a replica into a fake quorum (every
    recorded read still satisfies the regular-register condition).
    """
    base = emulated_gst_ramp(n, horizon, replicas, gst_fraction, start_scale)
    base.name = f"emulated-gst-ramp-audit-n{n}"
    base.description += (
        f"; retry every {retry_interval:g}, history recorded and audited (regular)"
    )
    base.emulation = {
        **base.emulation,
        "record_history": True,
        "retry_interval": retry_interval,
    }
    return base


@scenario_factory
def membership_churn(
    n: int = 3,
    horizon: float = 8000.0,
    replicas: int = 3,
    delta: float = 0.25,
    plan: Optional[List[Dict[str, Any]]] = None,
    transition: str = "dual-quorum",
    crash_times: Optional[Dict[str, float]] = None,
    transfer_delay: float = 150.0,
) -> Scenario:
    """ABD emulation reconfiguring mid-run: dynamic replica membership.

    ``plan`` is the membership timeline in its JSON list-of-dicts form
    (:meth:`~repro.memory.membership.MembershipPlan.to_jsonable`);
    ``None`` runs the canonical
    :func:`~repro.memory.membership.churn_plan` -- join a fresh replica
    at 0.3x horizon, retire replica 0 at 0.55x -- so the default cell
    exercises two back-to-back transitions, each with a dual-quorum
    window and a state-transfer round.  The recorder is always on: a
    churn run without the history audit would miss exactly the
    stale-read bugs a broken reconfiguration manufactures.
    ``transition="single-config"`` switches to the deliberately broken
    old-quorums-only mode (the membership negative-control oracle), and
    ``crash_times`` forwards replica-crash times (stringified index ->
    time) so negative controls can force reads onto under-synced
    joiners.
    """
    from repro.memory.membership import churn_plan

    events = churn_plan(replicas, horizon).to_jsonable() if plan is None else list(plan)
    membership_plan = [dict(ev) for ev in events]
    knobs: Dict[str, Any] = _emulation_knobs(
        replicas,
        "sync",
        delta,
        membership_plan=membership_plan,
        transition=transition,
        transfer_delay=transfer_delay,
        record_history=True,
    )
    if crash_times:
        knobs["replica_crash_times"] = {str(k): float(v) for k, v in crash_times.items()}
    return Scenario(
        name=f"membership-churn-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{replicas}-replica ABD emulation reconfiguring through a "
            f"{len(membership_plan)}-event membership plan "
            f"({transition} windows), history audited"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.05,
        memory="emulated",
        emulation=knobs,
    )


@scenario_factory
def membership_churn_atomic(
    n: int = 3,
    horizon: float = 10000.0,
    replicas: int = 3,
    delta: float = 0.25,
    plan: Optional[List[Dict[str, Any]]] = None,
    transition: str = "dual-quorum",
    crash_times: Optional[Dict[str, float]] = None,
    transfer_delay: float = 150.0,
) -> Scenario:
    """:func:`membership_churn` at the atomic consistency level.

    The hardest audit cell of the membership family: write-back phases
    must assemble dual majorities across the transition window and the
    recorded history must still be linearizable -- old/new quorum
    intersection is exactly what the two-config window promises.  The
    horizon scales up because the write-back doubles every read's
    quorum cost.
    """
    base = membership_churn(
        n, horizon, replicas, delta, plan, transition, crash_times, transfer_delay
    )
    base.name = f"membership-churn-atomic-n{n}"
    base.description += "; atomic (write-back) reads"
    base.consistency = "atomic"
    return base


#: The pinned membership negative-control construction (the membership
#: analogue of the ``--no-resync`` canary): replace the entire initial
#: config -- join 3, join 4, leave 0, leave 1 -- then crash replica 2,
#: the last original member, so every read quorum must be served by
#: joiners alone.  Under ``dual-quorum`` windows the state transfer has
#: synced the joiners and the audit stays clean; under the broken
#: ``single-config`` mode the joiners serve whatever they overheard and
#: the history audit catches the stale reads deterministically.
MEMBERSHIP_CANARY_PLAN: Tuple[Dict[str, Any], ...] = (
    {"kind": "join", "at": 600.0, "replica": 3},
    {"kind": "join", "at": 900.0, "replica": 4},
    {"kind": "leave", "at": 1200.0, "replica": 0},
    {"kind": "leave", "at": 1500.0, "replica": 1},
)

#: Crash times accompanying :data:`MEMBERSHIP_CANARY_PLAN`.
MEMBERSHIP_CANARY_CRASHES: Dict[str, float] = {"2": 2500.0}


@scenario_factory
def membership_canary(
    n: int = 3,
    horizon: float = 5000.0,
    transition: str = "single-config",
) -> Scenario:
    """The membership negative control: full config turnover, then the
    last original replica crashes.

    With ``transition="single-config"`` (the default) this is the
    deliberately broken mode the atomic/regular history audits must
    flag red; flipping to ``"dual-quorum"`` is the matched positive
    control that must stay clean.  Kept as its own factory so the fuzz
    registry and CI can replay the pinned construction by name.
    """
    base = membership_churn(
        n,
        horizon,
        replicas=3,
        plan=list(MEMBERSHIP_CANARY_PLAN),
        transition=transition,
        crash_times=dict(MEMBERSHIP_CANARY_CRASHES),
    )
    base.name = f"membership-canary-n{n}"
    base.description = (
        "membership negative control: initial config fully replaced, last "
        f"original replica crashes at t=2500 ({transition} windows), audited"
    )
    return base


#: The default ``chaos`` fault timeline: one disturbance of each kind,
#: serialized with slack between them and a long quiet tail -- harsh
#: enough to force a recovery-resync, a partition detour and a storm
#: into one run, mild enough that a *correct* emulation must pass the
#: theorem monitors and the history audit on every seed.
DEFAULT_CHAOS_PLAN: Tuple[Dict[str, Any], ...] = (
    {"kind": "replica-crash", "at": 1200.0, "replica": 1},
    {"kind": "replica-recover", "at": 2000.0, "replica": 1},
    {"kind": "partition", "at": 2800.0, "replicas": [2]},
    {"kind": "heal", "at": 3600.0, "replicas": [2]},
    {"kind": "message-storm", "at": 4200.0, "until": 4800.0, "factor": 3.0},
)


@scenario_factory
def chaos(
    n: int = 3,
    horizon: float = 8000.0,
    replicas: int = 3,
    delta: float = 0.25,
    plan: Optional[List[Dict[str, Any]]] = None,
    resync: bool = True,
    retry_policy: str = "fixed",
) -> Scenario:
    """Fault-injection campaign cell: a :mod:`repro.faults` timeline.

    ``plan`` is the fault plan in its JSON list-of-dicts form (the
    shape :class:`~repro.faults.plan.FaultPlan.to_jsonable` emits and
    the parallel engine can hash); ``None`` runs
    :data:`DEFAULT_CHAOS_PLAN`.  The recorder is always on -- a chaos
    run without the history audit would miss exactly the stale-read
    bugs fault injection exists to surface.  ``resync=False`` switches
    the emulation to the deliberately broken recover-without-resync
    mode (the ``repro chaos`` negative oracle), and ``retry_policy``
    exposes the backoff knob to campaigns.
    """
    events = DEFAULT_CHAOS_PLAN if plan is None else tuple(plan)
    fault_plan = [dict(ev) for ev in events]
    return Scenario(
        name=f"chaos-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"{replicas}-replica ABD emulation under a {len(fault_plan)}-event "
            f"fault plan ({'resync' if resync else 'NO resync'}, "
            f"{retry_policy} retries), history audited"
        ),
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.05,
        memory="emulated",
        emulation=_emulation_knobs(
            replicas,
            "sync",
            delta,
            fault_plan=fault_plan,
            resync=resync,
            retry_policy=retry_policy,
            record_history=True,
        ),
    )


#: Delay families the fuzzer composes (names -> builders are inlined in
#: :func:`fuzz_cell`; the genome vocabulary in :mod:`repro.fuzz.genome`
#: mirrors these keys).
FUZZ_DELAYS: Tuple[str, ...] = ("uniform", "gst-ramp", "bursts")

#: Crash-plan families the fuzzer composes.
FUZZ_CRASHES: Tuple[str, ...] = ("none", "leader", "minority-cascade")


@scenario_factory
def fuzz_cell(
    n: int = 3,
    horizon: float = 3000.0,
    delay: str = "uniform",
    crash: str = "none",
    backend: str = "shared",
    replicas: int = 3,
    links: str = "sync",
    delta: float = 0.25,
    consistency: str = "regular",
    plan: Optional[List[Dict[str, Any]]] = None,
    resync: bool = True,
    membership: Optional[List[Dict[str, Any]]] = None,
    transition: str = "dual-quorum",
) -> Scenario:
    """The scenario a :class:`~repro.fuzz.genome.ScenarioGenome` pins.

    Flat JSON-serializable kwargs (the genome's
    ``scenario_kwargs()``) composing the delay family, the crash plan,
    the memory backend and -- on the emulated backend -- the replica
    fabric, the consistency level, a :mod:`repro.faults` timeline and a
    :mod:`repro.memory.membership` timeline.  Emulated cells always arm
    the history recorder: a fuzz run without the consistency audit
    would be blind to exactly the stale-read bugs the fuzzer hunts.
    ``resync=False`` is the deliberately broken recover-without-resync
    mode and ``transition="single-config"`` the deliberately broken
    old-quorums-only reconfiguration mode (the negative-control
    oracles).  Knob timings (GST, crash instants, burst periods) scale
    with the horizon, so the derived-horizon scaling in the genome
    keeps every cell proportionally shaped.
    """
    if delay not in FUZZ_DELAYS:
        raise ValueError(f"unknown fuzz delay {delay!r}; choose from {list(FUZZ_DELAYS)}")
    if crash not in FUZZ_CRASHES:
        raise ValueError(f"unknown fuzz crash {crash!r}; choose from {list(FUZZ_CRASHES)}")

    def make_delay(rng: RngRegistry) -> StepDelayModel:
        if delay == "gst-ramp":
            return GstRampDelay(
                rng, gst=horizon * 0.35, start_scale=6.0, lo=0.5, hi=1.5
            )
        if delay == "bursts":
            # The timely process is the HIGHEST pid: both fuzz crash
            # plans kill low pids, and AWB must keep holding after the
            # crashes (a dead timely process would void the assumption
            # the theorem monitors audit under).
            return AlternatingBurstDelay(
                rng,
                period=horizon / 20.0,
                burst_fraction=0.4,
                timely_pids={n - 1},
                gst=horizon * 0.2,
            )
        return UniformDelay(rng, 0.5, 1.5)

    make_crash_plan: Optional[Callable[[RngRegistry], CrashPlan]] = None
    if crash == "leader":
        make_crash_plan = lambda rng: CrashPlan.single(n, 0, horizon * 0.35)  # noqa: E731
    elif crash == "minority-cascade":
        victims = list(range(max(1, (n - 1) // 2)))
        make_crash_plan = lambda rng: CrashPlan.cascade(  # noqa: E731
            n, victims, start=horizon * 0.2, spacing=horizon * 0.08
        )

    emulation: Dict[str, Any] = {}
    level: Optional[str] = None
    if backend == "emulated":
        if links == "lossy":
            emulation = {
                "replicas": replicas,
                "links": "lossy",
                "link_params": {"loss": 0.1, "lo": 0.5, "hi": 4.0, "cap": 8.0},
                "retry_interval": 10.0,
            }
        elif links == "gst-ramp":
            emulation = {
                "replicas": replicas,
                "links": "gst-ramp",
                "link_params": {
                    "gst": horizon * 0.3,
                    "start_scale": 6.0,
                    "lo": 0.25,
                    "hi": 1.0,
                },
                "retry_interval": 4.0,
            }
        else:  # sync / duplication share the deterministic delta timing
            emulation = _emulation_knobs(replicas, links, delta)
        emulation["record_history"] = True
        emulation["resync"] = resync
        if plan:
            emulation["fault_plan"] = [dict(ev) for ev in plan]
        if membership:
            emulation["membership_plan"] = [dict(ev) for ev in membership]
            emulation["transition"] = transition
        level = consistency
    fault_note = f", {len(plan)}-event fault plan" if plan else ""
    churn_note = (
        f", {len(membership)}-event membership plan"
        + (" (single-config)" if transition != "dual-quorum" else "")
        if membership
        else ""
    )
    return Scenario(
        name=f"fuzz-{backend}-{delay}-{crash}-n{n}",
        n=n,
        horizon=horizon,
        description=(
            f"fuzz cell: {delay} delays, crash={crash}, {backend} memory"
            + (
                f" ({replicas} replicas, {links} links, {consistency} reads"
                f"{', NO resync' if not resync else ''}{fault_note}{churn_note}, audited)"
                if backend == "emulated"
                else ""
            )
        ),
        make_delay=make_delay,
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=make_crash_plan,
        margin=horizon * 0.02,
        memory=backend,
        emulation=emulation,
        consistency=level,
    )


#: Backend-equivalence cells: ``(algorithm registry name, shared
#: factory, emulated factory, seed)``.  On the deterministic ``sync``
#: link model an emulated run consumes exactly the same random streams
#: as the shared run of the same seed, but the elected leader still
#: depends on suspicion *dynamics*, which shift with operation latency
#: -- so exact leader equivalence is a per-cell deterministic fact
#: rather than a universal law.  These cells are verified to elect
#: identical leaders on both backends, and the simulator is
#: deterministic, so they match forever.  Pinned here once; the
#: equivalence test (``tests/core/test_emulated_run.py``) and the
#: ``EMU_equivalence`` bench both import this list.
BACKEND_EQUIVALENCE_CELLS: Tuple[Tuple[str, Any, Any, int], ...] = (
    ("alg1", nominal, nominal_emulated, 0),
    ("alg1", nominal, nominal_emulated, 2),
    ("alg1", leader_crash, leader_crash_emulated, 2),
    ("alg1-nwnr", nominal, nominal_emulated, 1),
    ("alg1-nwnr", leader_crash, leader_crash_emulated, 0),
    ("alg1-no-timer", leader_crash, leader_crash_emulated, 1),
    # Algorithm 2 cells: the bounded-counter protocol stresses a
    # different register schedule (epoch counters instead of suspicion
    # vectors), so equivalence there pins the emulation against a second
    # protocol family, not just the Algorithm 1 variants.
    ("alg2", nominal, nominal_emulated, 2),
    ("alg2", nominal, nominal_emulated, 3),
    ("alg2", leader_crash, leader_crash_emulated, 9),
)


_F_KINDS: Dict[str, Callable[[float], Any]] = {
    "linear": LinearF,
    "sqrt": SqrtF,
    "log": LogF,
}


@scenario_factory
def ablation(
    n: int = 4,
    horizon: float = 8000.0,
    f_kind: str = "linear",
    f_scale: float = 2.0,
    profile: str = "mild",
    chaos_until: float = 0.0,
    jitter: float = 0.4,
    timeout_policy: Optional[str] = None,
    const_timeout: Optional[float] = None,
    timely_pid: int = 0,
    assumption: Optional[str] = None,
) -> Scenario:
    """Parameterized workload for the design-choice ablations (bench ABL).

    Knobs: the AWB2 lower-bound function shape (``f_kind`` in
    ``linear``/``sqrt``/``log`` with ``f_scale``), the asynchrony
    ``profile`` (``mild`` = uniform delays; ``harsh`` = the
    slow-but-timely leader of the negative-scenario family), the
    duration of the timers' chaotic era, and the line-27 timeout policy
    (``max``/``sum``/``const``).  Being a registered factory, the whole
    ablation grid runs through the parallel engine.

    ``assumption`` defaults to ``"awb"`` except when ``timeout_policy``
    replaces the paper's line-27 rule (anything other than ``max``),
    which mutates the proven algorithm, so those cells are outside the
    claims envelope (``"none"``).  Benches demonstrating *expected*
    divergence (e.g. sub-linear ``f`` under the harsh profile on a
    finite horizon) pass ``assumption="none"`` explicitly so the
    theorem audit does not count the demonstration as a violation.
    """
    if f_kind not in _F_KINDS:
        raise ValueError(f"unknown f_kind {f_kind!r}; choose from {sorted(_F_KINDS)}")
    if profile not in ("mild", "harsh"):
        raise ValueError(f"unknown profile {profile!r}; choose 'mild' or 'harsh'")
    f = _F_KINDS[f_kind](f_scale)

    def make_timers(rng: RngRegistry, count: int) -> Dict[int, TimerBehavior]:
        return {
            pid: AsymptoticallyWellBehavedTimer(
                f, rng, chaos_until=chaos_until, jitter=jitter
            )
            for pid in range(count)
        }

    make_delay: Callable[[RngRegistry], StepDelayModel]
    if profile == "mild":
        make_delay = lambda rng: UniformDelay(rng, 0.5, 1.5)  # noqa: E731
    else:
        make_delay = lambda rng: _slow_leader_delay(n, timely_pid, rng)  # noqa: E731

    algo_config: Dict[str, Any] = {}
    if timeout_policy is not None:
        algo_config["timeout_policy"] = timeout_policy
    if const_timeout is not None:
        algo_config["const_timeout"] = const_timeout

    name = f"ablation-{f_kind}{f_scale:g}-{profile}"
    if chaos_until:
        name += f"-chaos{chaos_until:g}"
    if timeout_policy is not None:
        name += f"-{timeout_policy}"
    return Scenario(
        name=name,
        n=n,
        horizon=horizon,
        description=(
            f"{profile} asynchrony, f={f_kind}({f_scale:g}), "
            f"chaos until {chaos_until:g}"
            + (f", timeout policy {timeout_policy}" if timeout_policy else "")
        ),
        make_delay=make_delay,
        make_timers=make_timers,
        algo_config=algo_config,
        margin=horizon * 0.02,
        assumption=(
            assumption
            if assumption is not None
            else ("awb" if timeout_policy in (None, "max") else "none")
        ),
    )


__all__ = [
    "BACKEND_EQUIVALENCE_CELLS",
    "DEFAULT_CHAOS_PLAN",
    "MEMBERSHIP_CANARY_CRASHES",
    "MEMBERSHIP_CANARY_PLAN",
    "Scenario",
    "ablation",
    "all_but_one",
    "async_bursts",
    "awb_only",
    "capped_timers",
    "cascade",
    "chaos",
    "chaotic_timers",
    "emulated_gst_ramp",
    "emulated_gst_ramp_audit",
    "emulated_lossy",
    "emulated_lossy_audit",
    "ev_sync",
    "fuzz_cell",
    "FUZZ_CRASHES",
    "FUZZ_DELAYS",
    "gst_ramp",
    "leader_crash",
    "leader_crash_emulated",
    "leader_storm",
    "membership_canary",
    "membership_churn",
    "membership_churn_atomic",
    "near_all_cascade",
    "nominal",
    "nominal_emulated",
    "nominal_emulated_atomic",
    "random_faults",
    "replica_crash",
    "replica_crash_atomic",
    "san",
    "scenario_factory",
    "scramble_registers",
    "scrambled",
    "timely_churn",
]
