"""Canonical scenarios: the workloads every experiment draws from.

Each scenario fixes the environment knobs -- asynchrony profile, timer
behaviour, crash plan, initial-value scrambling, SAN latency -- and can
instantiate a :class:`~repro.core.runner.Run` for any algorithm and
seed.  Horizons are chosen generously above the stabilization knobs so
"did not stabilize by the horizon" is meaningful evidence, not noise
(Algorithm 2's hand-shake needs roughly 10x Algorithm 1's horizon under
identical timers; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Type

from repro.core.interfaces import OmegaAlgorithm
from repro.core.runner import Run, RunResult
from repro.memory.disk import Disk, LatencyModel
from repro.memory.memory import SharedMemory
from repro.sim.crash import CrashPlan
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import (
    HeavyTailDelay,
    PartiallySynchronousDelay,
    StepDelayModel,
    UniformDelay,
)
from repro.timers.awb import (
    AccurateTimer,
    AsymptoticallyWellBehavedTimer,
    CappedTimer,
    TimerBehavior,
)
from repro.timers.functions import LinearF


def scramble_registers(memory: SharedMemory, rng: Any) -> None:
    """Set *arbitrary* initial register values (footnote 7).

    Booleans get random booleans, integers random small naturals; the
    algorithms must converge regardless (self-stabilization of the
    shared variables).
    """
    for reg in memory.all_registers():
        current = reg.peek()
        if isinstance(current, bool):
            reg.poke(rng.random() < 0.5)
        elif isinstance(current, int):
            reg.poke(rng.randrange(0, 8))


@dataclass
class Scenario:
    """A named, reproducible run configuration."""

    name: str
    n: int
    horizon: float
    description: str = ""
    sample_interval: float = 5.0
    snapshot_interval: Optional[float] = None
    #: Factories receive the run's RNG registry so each seed re-derives
    #: fresh, independent randomness.
    make_delay: Optional[Callable[[RngRegistry], StepDelayModel]] = None
    make_timers: Optional[Callable[[RngRegistry, int], Dict[int, TimerBehavior]]] = None
    make_crash_plan: Optional[Callable[[RngRegistry], CrashPlan]] = None
    make_disk: Optional[Callable[[RngRegistry], Disk]] = None
    scramble: Optional[Callable[[SharedMemory, Any], None]] = None
    algo_config: Dict[str, Any] = field(default_factory=dict)
    log_reads: bool = True
    #: Stability margin expected of this scenario (passed to the
    #: eventual-leadership verdict by tests/benches).
    margin: float = 0.0

    def build(self, algorithm_cls: Type[OmegaAlgorithm], seed: int = 0, **overrides: Any) -> Run:
        """Instantiate a :class:`Run` for ``algorithm_cls`` at ``seed``."""
        rng = RngRegistry(seed)
        kwargs: Dict[str, Any] = dict(
            seed=seed,
            horizon=self.horizon,
            sample_interval=self.sample_interval,
            snapshot_interval=self.snapshot_interval,
            delay_model=self.make_delay(rng) if self.make_delay else None,
            timer_behaviors=self.make_timers(rng, self.n) if self.make_timers else None,
            crash_plan=self.make_crash_plan(rng) if self.make_crash_plan else None,
            disk=self.make_disk(rng) if self.make_disk else None,
            scramble=self.scramble,
            algo_config=dict(self.algo_config),
            log_reads=self.log_reads,
        )
        kwargs.update(overrides)
        return Run(algorithm_cls, self.n, **kwargs)

    def run(self, algorithm_cls: Type[OmegaAlgorithm], seed: int = 0, **overrides: Any) -> RunResult:
        """Build and execute in one step."""
        return self.build(algorithm_cls, seed, **overrides).execute()


# ----------------------------------------------------------------------
# Timer factory helpers
# ----------------------------------------------------------------------
def _awb_timers(
    alpha: float = 2.0,
    chaos_until: float = 0.0,
    jitter: float = 0.25,
) -> Callable[[RngRegistry, int], Dict[int, TimerBehavior]]:
    def make(rng: RngRegistry, n: int) -> Dict[int, TimerBehavior]:
        return {
            pid: AsymptoticallyWellBehavedTimer(
                LinearF(alpha), rng, chaos_until=chaos_until, jitter=jitter
            )
            for pid in range(n)
        }

    return make


def _accurate_timers() -> Callable[[RngRegistry, int], Dict[int, TimerBehavior]]:
    def make(rng: RngRegistry, n: int) -> Dict[int, TimerBehavior]:
        return {pid: AccurateTimer() for pid in range(n)}

    return make


# ----------------------------------------------------------------------
# Canonical scenarios
# ----------------------------------------------------------------------
def nominal(n: int = 4, horizon: float = 4000.0) -> Scenario:
    """Mild uniform asynchrony, well-behaved timers, no crashes.

    The baseline sanity workload: every algorithm must elect the
    lexmin-favoured process and stay stable.
    """
    return Scenario(
        name=f"nominal-n{n}",
        n=n,
        horizon=horizon,
        description="uniform delays, AWB timers without chaos, fault-free",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        margin=horizon * 0.1,
    )


def chaotic_timers(n: int = 4, horizon: float = 6000.0, chaos_fraction: float = 0.2) -> Scenario:
    """Figure 1 conditions: timers fire arbitrarily during a long prefix.

    False suspicions pile up during the chaos era; once timers dominate
    ``f`` the timeouts built from accumulated suspicions out-wait the
    leader's write period and the election stabilizes.
    """
    chaos_until = horizon * chaos_fraction
    return Scenario(
        name=f"chaotic-timers-n{n}",
        n=n,
        horizon=horizon,
        description=f"AWB timers misbehave until t={chaos_until:.0f}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0, chaos_until=chaos_until, jitter=0.5),
        margin=horizon * 0.05,
    )


def leader_crash(n: int = 4, horizon: float = 6000.0, crash_at_fraction: float = 0.35) -> Scenario:
    """The stable leader (lexmin favourite, pid 0) crashes mid-run.

    Followers must notice the silence, suspect, and re-elect a correct
    process -- the core liveness scenario.
    """
    crash_at = horizon * crash_at_fraction
    return Scenario(
        name=f"leader-crash-n{n}",
        n=n,
        horizon=horizon,
        description=f"pid 0 crashes at t={crash_at:.0f}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.single(n, 0, crash_at),
        margin=horizon * 0.05,
    )


def cascade(n: int = 6, horizon: float = 8000.0) -> Scenario:
    """Half the processes crash one by one (t-independence stress)."""
    victims = list(range(n // 2))
    return Scenario(
        name=f"cascade-n{n}",
        n=n,
        horizon=horizon,
        description=f"pids {victims} crash in sequence",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.cascade(
            n, victims, start=horizon * 0.2, spacing=horizon * 0.08
        ),
        margin=horizon * 0.05,
    )


def all_but_one(n: int = 5, horizon: float = 6000.0, survivor: int = 2) -> Scenario:
    """Extreme fault load: every process but one crashes (t = n-1).

    Both algorithms are independent of ``t``; the survivor must elect
    itself.
    """
    return Scenario(
        name=f"all-but-one-n{n}",
        n=n,
        horizon=horizon,
        description=f"all crash except pid {survivor}",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.all_but(
            n, survivor, at=horizon * 0.2, spacing=horizon * 0.05
        ),
        margin=horizon * 0.05,
    )


def awb_only(n: int = 4, horizon: float = 8000.0, timely_pid: int = 0) -> Scenario:
    """The paper's *exact* assumption and nothing more.

    Only ``timely_pid`` becomes timely (AWB1) after a stabilization
    time; every other process keeps heavy-tailed, unbounded-looking
    delays forever.  AWB-based algorithms must stabilize; the
    eventually-synchronous baseline has no such guarantee here.
    """
    gst = horizon * 0.15
    return Scenario(
        name=f"awb-only-n{n}",
        n=n,
        horizon=horizon,
        description=f"only pid {timely_pid} timely after t={gst:.0f}; others heavy-tailed",
        make_delay=lambda rng: PartiallySynchronousDelay(
            base=HeavyTailDelay(rng, scale=0.6, shape=1.4, cap=60.0),
            timely_pids={timely_pid},
            gst=gst,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        ),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


def ev_sync(n: int = 4, horizon: float = 4000.0) -> Scenario:
    """Eventually synchronous system: everyone timely after gst.

    The assumption the baseline [13]-style algorithm needs; strictly
    stronger than AWB.
    """
    gst = horizon * 0.15
    return Scenario(
        name=f"ev-sync-n{n}",
        n=n,
        horizon=horizon,
        description=f"all processes timely after t={gst:.0f}",
        make_delay=lambda rng: PartiallySynchronousDelay(
            base=HeavyTailDelay(rng, scale=0.6, shape=1.4, cap=30.0),
            timely_pids=set(range(n)),
            gst=gst,
            rng=rng,
            timely_lo=0.5,
            timely_hi=1.0,
        ),
        make_timers=_accurate_timers(),
        margin=horizon * 0.02,
    )


def scrambled(n: int = 4, horizon: float = 6000.0) -> Scenario:
    """Arbitrary initial register values (footnote 7 self-stabilization)."""
    base = nominal(n, horizon)
    base.name = f"scrambled-n{n}"
    base.description = "registers start with arbitrary values"
    base.scramble = scramble_registers
    return base


def random_faults(n: int = 5, horizon: float = 8000.0, max_failures: int | None = None) -> Scenario:
    """Fuzz workload: random crash pattern drawn from the run seed.

    Each seed yields a different legal fault pattern (up to ``n - 1``
    crashes at random times in the first half of the run) -- the sweep
    over seeds samples the fault space instead of hand-picking it.
    """
    return Scenario(
        name=f"random-faults-n{n}",
        n=n,
        horizon=horizon,
        description="seed-derived random crash pattern (up to n-1 crashes)",
        make_delay=lambda rng: UniformDelay(rng, 0.5, 1.5),
        make_timers=_awb_timers(alpha=2.0),
        make_crash_plan=lambda rng: CrashPlan.random(
            n, rng, max_failures=max_failures, horizon=horizon * 0.5, probability=0.5
        ),
        margin=horizon * 0.05,
    )


def san(n: int = 3, horizon: float = 20000.0) -> Scenario:
    """Network-attached-disk deployment (Section 1 motivation).

    Every register access becomes an interval operation with uniform
    latency; the linearizability of the resulting history is checked by
    the SAN tests.  Horizon scales with latency (each algorithm step
    now costs several time units).
    """
    return Scenario(
        name=f"san-n{n}",
        n=n,
        horizon=horizon,
        description="registers behind a disk with latency 1..4",
        sample_interval=20.0,
        make_delay=lambda rng: UniformDelay(rng, 0.3, 0.8),
        make_timers=_awb_timers(alpha=10.0),
        make_disk=lambda rng: Disk(LatencyModel(rng, lo=1.0, hi=4.0)),
        margin=horizon * 0.02,
    )


def _slow_leader_delay(n: int, timely_pid: int, rng: RngRegistry) -> StepDelayModel:
    """AWB1 with a *large* beta: the timely process is slow but bounded
    (per-step delay in [4.5, 5.0] from the start), everyone else is fast
    on average with heavy-tailed spikes.  Under this profile a follower's
    monitoring cadence is much faster than the timely process's write
    cadence, so only timeouts that grow without bound (AWB2) can learn
    to wait it out -- the exact role condition (f2) plays in Lemma 2."""
    return PartiallySynchronousDelay(
        base=HeavyTailDelay(rng, scale=0.5, shape=1.3, cap=60.0),
        timely_pids={timely_pid},
        gst=0.0,
        rng=rng,
        timely_lo=4.5,
        timely_hi=5.0,
    )


def capped_timers(n: int = 4, horizon: float = 4000.0, cap: float = 3.0, timely_pid: int = 0) -> Scenario:
    """NEGATIVE scenario: follower timers violate AWB2 (bounded cap).

    The timely process honours AWB1 but with a large beta (slow,
    bounded steps); follower timers can never wait longer than ``cap``,
    so they falsely suspect it forever, and the spiky followers keep
    suspecting each other too -- the election churns without end.  The
    positive twin :func:`slow_leader_awb` differs *only* in the timer
    behaviour and stabilizes, demonstrating that AWB2 is load-bearing.
    """

    def make(rng: RngRegistry, count: int) -> Dict[int, TimerBehavior]:
        return {pid: CappedTimer(rng, cap=cap) for pid in range(count)}

    return Scenario(
        name=f"capped-timers-n{n}",
        n=n,
        horizon=horizon,
        description=f"AWB2 violated: timer durations capped at {cap}, slow timely leader",
        make_delay=lambda rng: _slow_leader_delay(n, timely_pid, rng),
        make_timers=make,
        margin=horizon * 0.3,
    )


def slow_leader_awb(n: int = 4, horizon: float = 12000.0, timely_pid: int = 0) -> Scenario:
    """POSITIVE twin of :func:`capped_timers`: identical asynchrony
    profile, but asymptotically well-behaved timers.  Timeouts grow with
    the accumulated suspicions until they dominate the slow leader's
    write period, after which the election stabilizes (Lemma 2's
    mechanism, observable in the trace)."""
    return Scenario(
        name=f"slow-leader-awb-n{n}",
        n=n,
        horizon=horizon,
        description="slow timely leader, AWB timers (positive twin of capped-timers)",
        make_delay=lambda rng: _slow_leader_delay(n, timely_pid, rng),
        make_timers=_awb_timers(alpha=2.0, jitter=0.5),
        margin=horizon * 0.02,
    )


__all__ = [
    "Scenario",
    "all_but_one",
    "awb_only",
    "capped_timers",
    "cascade",
    "chaotic_timers",
    "ev_sync",
    "leader_crash",
    "nominal",
    "random_faults",
    "san",
    "scramble_registers",
    "scrambled",
]
