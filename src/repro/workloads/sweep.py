"""Sweep driver: run an (algorithm x scenario x seed) matrix.

Produces flat :class:`SweepRow` records that the comparison bench, the
scalability bench and EXPERIMENTS.md all consume.  Keeping the driver
here (rather than inside each bench) guarantees every table in the repo
is produced by the same code path.

:func:`run_matrix` is a thin wrapper over the parallel experiment
engine (:mod:`repro.engine`): factory-built scenarios execute through
:func:`repro.engine.driver.run_experiment` (optionally across worker
processes and against the JSONL cache), while hand-built
:class:`~repro.workloads.scenarios.Scenario` instances -- which cannot
cross process boundaries -- take the in-process path.  Both paths
produce identical :class:`~repro.engine.summary.RunSummary` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.core.interfaces import OmegaAlgorithm
from repro.core.runner import RunResult
from repro.workloads.scenarios import Scenario


@dataclass
class SweepRow:
    """One (algorithm, scenario, seed) outcome."""

    algorithm: str
    scenario: str
    seed: int
    n: int
    horizon: float
    stabilized: bool
    stabilization_time: Optional[float]
    leader: Optional[int]
    valid: bool
    termination_ok: bool
    forever_writer_count: int
    forever_writers: frozenset
    growing_register_count: int
    single_writer: bool
    total_writes: int
    total_reads: int

    @staticmethod
    def headers() -> List[str]:
        """Column names of the printed sweep table."""
        return [
            "algorithm",
            "scenario",
            "seed",
            "stab",
            "t_stab",
            "leader",
            "forever_writers",
            "growing_regs",
            "single_writer",
            "writes",
            "reads",
        ]

    def cells(self) -> List[object]:
        """This row's printable cell values, in header order."""
        return [
            self.algorithm,
            self.scenario,
            self.seed,
            self.stabilized,
            self.stabilization_time if self.stabilization_time is not None else "-",
            self.leader if self.leader is not None else "-",
            self.forever_writers,
            self.growing_register_count,
            self.single_writer,
            self.total_writes,
            self.total_reads,
        ]


def summarize_result(result: RunResult, scenario: Scenario, window: float = 100.0) -> SweepRow:
    """Condense one run into a sweep row.

    Thin wrapper over the engine summarizer so every table in the repo
    -- CLI ``run``/``compare``, sweeps, benches -- is produced by one
    code path; the returned row is a
    :class:`~repro.engine.summary.RunSummary` (a :class:`SweepRow`
    subclass).
    """
    from repro.engine.summary import summarize_run

    return summarize_run(
        result,
        scenario_name=scenario.name,
        margin=scenario.margin,
        window=window,
        assumption=scenario.assumption,
    )


def _ref_is_faithful(scenario: Scenario) -> bool:
    """Does the scenario's factory ref still describe this instance?

    A caller may mutate a factory-built scenario after construction
    (``s = nominal(); s.n = 3``); the stale ref would then rebuild the
    *pre-mutation* scenario inside engine workers.  Rebuild from the
    ref and compare every primitive field (callables cannot be
    compared, so only their presence is checked); on any divergence the
    caller falls back to the in-process path, which honors the live
    object.
    """
    ref = getattr(scenario, "ref", None)
    if ref is None:
        return False
    from repro.workloads.registry import build_scenario

    try:
        rebuilt = build_scenario(ref[0], ref[1])
    except Exception:
        return False
    primitives = (
        "name",
        "n",
        "horizon",
        "sample_interval",
        "snapshot_interval",
        "algo_config",
        "log_reads",
        "trace_events",
        "margin",
        "assumption",
        "memory",
        "emulation",
        "consistency",
    )
    callables = ("make_delay", "make_timers", "make_crash_plan", "make_disk", "scramble")
    return all(
        getattr(rebuilt, field) == getattr(scenario, field) for field in primitives
    ) and all(
        (getattr(rebuilt, field) is None) == (getattr(scenario, field) is None)
        for field in callables
    )


def run_matrix(
    algorithms: Dict[str, Type[OmegaAlgorithm]],
    scenarios: Sequence[Scenario],
    seeds: Iterable[int],
    window: float = 100.0,
    *,
    jobs: Optional[int] = 1,
    cache: bool = False,
    results_dir: "Any" = None,
) -> List["Any"]:
    """Execute the full matrix and return one row per run.

    Rows are :class:`~repro.engine.summary.RunSummary` instances (a
    :class:`SweepRow` subclass) in deterministic scenario-major order.
    ``jobs > 1`` fans the grid out over worker processes (``0``/``None``
    means one worker per CPU); ``cache=True`` serves
    previously-computed cells from the JSONL store under
    ``results/engine/``.  Scenarios without a factory ``ref``
    (hand-built instances) always run in-process.
    """
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec
    from repro.engine.summary import summarize_run

    seeds = list(seeds)
    # Partition: faithful factory scenarios go through the engine in one
    # grid (parallel + cacheable); hand-built or mutated scenarios run
    # in-process.  Rows are identical either way (the summarizer never
    # looks at the read log or the event-kind counts), so a mixed matrix
    # keeps parallelism for the cells that support it.
    engine_ids = {id(s) for s in scenarios if _ref_is_faithful(s)}
    engine_scenarios = [s for s in scenarios if id(s) in engine_ids]
    engine_rows: List[Any] = []
    if engine_scenarios and algorithms and seeds:
        spec = ExperimentSpec.from_objects(
            "run-matrix", algorithms, engine_scenarios, seeds, window=window
        )
        engine_rows = run_experiment(
            spec, jobs=jobs or None, cache=cache, results_dir=results_dir, strict=True
        ).rows

    rows: List[Any] = []
    block = len(algorithms) * len(seeds)  # engine rows per scenario
    cursor = 0
    for scenario in scenarios:
        if id(scenario) in engine_ids:
            rows.extend(engine_rows[cursor : cursor + block])
            cursor += block
            continue
        for name, cls in algorithms.items():
            for seed in seeds:
                result = scenario.run(cls, seed=seed)
                row = summarize_run(
                    result,
                    scenario_name=scenario.name,
                    margin=scenario.margin,
                    window=window,
                    assumption=scenario.assumption,
                )
                row.algorithm = name  # prefer the caller's label
                rows.append(row)
    return rows


def stabilization_rate(rows: Sequence[SweepRow]) -> Tuple[int, int]:
    """``(stabilized, total)`` over a set of rows."""
    stab = sum(1 for r in rows if r.stabilized)
    return stab, len(rows)


__all__ = ["SweepRow", "run_matrix", "stabilization_rate", "summarize_result"]
