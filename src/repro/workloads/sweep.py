"""Sweep driver: run an (algorithm x scenario x seed) matrix.

Produces flat :class:`SweepRow` records that the comparison bench, the
scalability bench and EXPERIMENTS.md all consume.  Keeping the driver
here (rather than inside each bench) guarantees every table in the repo
is produced by the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.omega_props import check_termination, check_validity
from repro.analysis.write_stats import (
    forever_writers,
    growing_registers,
    single_writer_point,
)
from repro.core.interfaces import OmegaAlgorithm
from repro.core.runner import RunResult
from repro.workloads.scenarios import Scenario


@dataclass
class SweepRow:
    """One (algorithm, scenario, seed) outcome."""

    algorithm: str
    scenario: str
    seed: int
    n: int
    horizon: float
    stabilized: bool
    stabilization_time: Optional[float]
    leader: Optional[int]
    valid: bool
    termination_ok: bool
    forever_writer_count: int
    forever_writers: frozenset
    growing_register_count: int
    single_writer: bool
    total_writes: int
    total_reads: int

    @staticmethod
    def headers() -> List[str]:
        return [
            "algorithm",
            "scenario",
            "seed",
            "stab",
            "t_stab",
            "leader",
            "forever_writers",
            "growing_regs",
            "single_writer",
            "writes",
            "reads",
        ]

    def cells(self) -> List[object]:
        return [
            self.algorithm,
            self.scenario,
            self.seed,
            self.stabilized,
            self.stabilization_time if self.stabilization_time is not None else "-",
            self.leader if self.leader is not None else "-",
            self.forever_writers,
            self.growing_register_count,
            self.single_writer,
            self.total_writes,
            self.total_reads,
        ]


def summarize_result(result: RunResult, scenario: Scenario, window: float = 100.0) -> SweepRow:
    """Condense one run into a sweep row."""
    report = result.stabilization(margin=scenario.margin)
    writers = forever_writers(result.memory, result.horizon, window=window)
    swp = single_writer_point(result.memory, result.horizon, tail=window)
    term = check_termination(result.algorithms, result.crash_plan)
    return SweepRow(
        algorithm=result.algorithm_name,
        scenario=scenario.name,
        seed=result.seed,
        n=result.n,
        horizon=result.horizon,
        stabilized=report.stabilized,
        stabilization_time=report.time,
        leader=report.leader,
        valid=check_validity(result.trace, result.n),
        termination_ok=term.ok,
        forever_writer_count=len(writers),
        forever_writers=writers,
        growing_register_count=len(growing_registers(result.memory, result.horizon)),
        single_writer=swp.reached,
        total_writes=result.memory.total_writes,
        total_reads=result.memory.total_reads,
    )


def run_matrix(
    algorithms: Dict[str, Type[OmegaAlgorithm]],
    scenarios: Sequence[Scenario],
    seeds: Iterable[int],
    window: float = 100.0,
) -> List[SweepRow]:
    """Execute the full matrix and return one row per run."""
    rows: List[SweepRow] = []
    for scenario in scenarios:
        for name, cls in algorithms.items():
            for seed in seeds:
                result = scenario.run(cls, seed=seed)
                row = summarize_result(result, scenario, window=window)
                row.algorithm = name  # prefer the caller's label
                rows.append(row)
    return rows


def stabilization_rate(rows: Sequence[SweepRow]) -> Tuple[int, int]:
    """``(stabilized, total)`` over a set of rows."""
    stab = sum(1 for r in rows if r.stabilized)
    return stab, len(rows)


__all__ = ["SweepRow", "run_matrix", "stabilization_rate", "summarize_result"]
