"""Name registries for algorithms and scenario factories.

The CLI and the experiment engine both need to turn *strings* into live
objects: the CLI because users type names, the engine because worker
processes receive only picklable payloads and must rebuild their cell
from scratch.  This module is the single source of truth for both.

Anything not in the registries can still be referenced by a
``module:qualname`` import path (e.g. a downstream experiment's custom
algorithm class), so the engine is not limited to the built-ins.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Tuple, Type

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.interfaces import OmegaAlgorithm
from repro.core.variants import MultiWriterOmega, StepCounterOmega
from repro.workloads import scenarios as scen_mod
from repro.workloads.scenarios import Scenario

ALGORITHMS: Dict[str, Type[OmegaAlgorithm]] = {
    "alg1": WriteEfficientOmega,
    "alg2": BoundedOmega,
    "alg1-nwnr": MultiWriterOmega,
    "alg1-no-timer": StepCounterOmega,
    "baseline": EventuallySynchronousOmega,
}

SCENARIO_FACTORIES: Dict[str, Callable[..., Scenario]] = {
    "nominal": scen_mod.nominal,
    "chaotic-timers": scen_mod.chaotic_timers,
    "leader-crash": scen_mod.leader_crash,
    "cascade": scen_mod.cascade,
    "all-but-one": scen_mod.all_but_one,
    "awb-only": scen_mod.awb_only,
    "ev-sync": scen_mod.ev_sync,
    "scrambled": scen_mod.scrambled,
    "random-faults": scen_mod.random_faults,
    "san": scen_mod.san,
    "capped-timers": scen_mod.capped_timers,
    "slow-leader-awb": scen_mod.slow_leader_awb,
    "ablation": scen_mod.ablation,
    # The adversarial suite `repro check` audits the theorems against.
    "leader-storm": scen_mod.leader_storm,
    "gst-ramp": scen_mod.gst_ramp,
    "async-bursts": scen_mod.async_bursts,
    "near-all-cascade": scen_mod.near_all_cascade,
    "timely-churn": scen_mod.timely_churn,
    # The emulated-backend family: the registers realized by the ABD
    # quorum emulation over message passing (repro.memory.emulated).
    "nominal-emulated": scen_mod.nominal_emulated,
    "leader-crash-emulated": scen_mod.leader_crash_emulated,
    "replica-crash": scen_mod.replica_crash,
    "emulated-lossy": scen_mod.emulated_lossy,
    "emulated-lossy-audit": scen_mod.emulated_lossy_audit,
    "emulated-gst-ramp": scen_mod.emulated_gst_ramp,
    "emulated-gst-ramp-audit": scen_mod.emulated_gst_ramp_audit,
    # The atomic consistency level: write-back reads with the recorded
    # history audited by the interval-order checkers.
    "nominal-emulated-atomic": scen_mod.nominal_emulated_atomic,
    "replica-crash-atomic": scen_mod.replica_crash_atomic,
    # Dynamic replica membership: the emulation reconfigures mid-run
    # through dual-quorum transition windows (repro.memory.membership);
    # the canary is the pinned single-config negative control.
    "membership-churn": scen_mod.membership_churn,
    "membership-churn-atomic": scen_mod.membership_churn_atomic,
    "membership-canary": scen_mod.membership_canary,
    # Fault-injection campaigns: a repro.faults timeline threaded down
    # to the emulation (the `repro chaos` workhorse cell).
    "chaos": scen_mod.chaos,
    # Coverage-guided fuzzing: the cell a ScenarioGenome pins down
    # (the `repro fuzz` workhorse; pinned repros replay through it).
    "fuzz-cell": scen_mod.fuzz_cell,
}


def _import_target(target: str) -> Any:
    """Resolve a ``module:qualname`` reference."""
    module_name, _, qualname = target.partition(":")
    if not module_name or not qualname:
        raise KeyError(f"not an importable reference: {target!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def algorithm_target(algorithm_cls: Type[OmegaAlgorithm]) -> str:
    """The stable reference for an algorithm class.

    Prefers the short registry name (survives module moves); falls back
    to the import path for classes outside the registry.
    """
    for name, cls in ALGORITHMS.items():
        if cls is algorithm_cls:
            return name
    return f"{algorithm_cls.__module__}:{algorithm_cls.__qualname__}"


def resolve_algorithm(target: str) -> Type[OmegaAlgorithm]:
    """Registry name or ``module:qualname`` -> algorithm class."""
    if target in ALGORITHMS:
        return ALGORITHMS[target]
    cls = _import_target(target)
    if not (isinstance(cls, type) and issubclass(cls, OmegaAlgorithm)):
        raise TypeError(f"{target!r} is not an OmegaAlgorithm subclass")
    return cls


def resolve_scenario_factory(name: str) -> Callable[..., Scenario]:
    """Factory name (dashed or underscored) or import path -> factory."""
    dashed = name.replace("_", "-")
    if dashed in SCENARIO_FACTORIES:
        return SCENARIO_FACTORIES[dashed]
    return _import_target(name)


def build_scenario(factory: str, kwargs: Dict[str, Any] | None = None) -> Scenario:
    """Instantiate a scenario from its (factory, kwargs) reference."""
    return resolve_scenario_factory(factory)(**(kwargs or {}))


__all__ = [
    "ALGORITHMS",
    "SCENARIO_FACTORIES",
    "algorithm_target",
    "build_scenario",
    "resolve_algorithm",
    "resolve_scenario_factory",
]
