"""Scenario library and sweep driver.

Scenarios are named, parameterized run configurations shared by the
test suite, the examples and every benchmark, so "the leader-crash
workload" means the same thing everywhere.  The sweep driver runs an
(algorithm x scenario x seed) matrix and emits the flat rows the
comparison tables are built from.
"""

from repro.workloads.scenarios import (
    Scenario,
    all_but_one,
    awb_only,
    capped_timers,
    cascade,
    chaotic_timers,
    ev_sync,
    leader_crash,
    nominal,
    random_faults,
    san,
    scrambled,
    slow_leader_awb,
)
from repro.workloads.sweep import SweepRow, run_matrix

__all__ = [
    "Scenario",
    "SweepRow",
    "all_but_one",
    "awb_only",
    "capped_timers",
    "cascade",
    "chaotic_timers",
    "ev_sync",
    "leader_crash",
    "nominal",
    "random_faults",
    "run_matrix",
    "san",
    "scrambled",
    "slow_leader_awb",
]
