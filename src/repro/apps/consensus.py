"""Omega-based consensus over shared memory (single-disk Disk Paxos).

Gafni & Lamport's Disk Paxos [9] runs Paxos with disk blocks instead of
acceptors; with the shared memory itself as the single "disk" it
reduces to round-based shared-memory Paxos over 1WnR registers -- each
process ``p`` owns one block register ``BLOCK[p] = (mbal, bal, inp)``:

* ``mbal`` -- the largest ballot ``p`` has started;
* ``bal``  -- the largest ballot in which ``p`` wrote a value (phase 2);
* ``inp``  -- the value written at ``bal``.

A ballot ``b`` belonging to ``p`` (``b = k*n + p + 1``; ballots are
globally unique and proposer-identifying) proceeds:

* *Phase 1*: write ``(b, bal, inp)``; read all blocks; abort if any
  ``mbal > b``; otherwise the value is the ``inp`` of the largest
  ``bal`` seen (or the proposer's input when none).
* *Phase 2*: write ``(b, b, v)``; read all blocks; abort if any
  ``mbal > b``; otherwise **decide** ``v``.

Safety (validity + agreement) holds under arbitrary interleaving and
any number of concurrent proposers -- tested under an "anarchy" mode
where *everyone* proposes.  Liveness needs a single eventual proposer,
which is exactly what Omega provides: each process proposes only while
``leader()`` returns itself, so once the paper's algorithm stabilizes,
one proposer remains and its ballot eventually tops every abort.

:class:`ConsensusProcess` composes this with any Omega implementation
from :mod:`repro.core`: the process runs the election's ``T2``/``T3``
tasks *and* the consensus task side by side, sharing the memory and the
oracle -- the paper's deployment story end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import (
    AlgorithmContext,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    Task,
    WriteReg,
)
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory

#: A block: (mbal, bal, inp).
Block = Tuple[int, int, Any]
EMPTY_BLOCK: Block = (0, 0, None)


@dataclass(frozen=True, slots=True)
class AttemptOutcome:
    """Result of one ballot attempt."""

    decided: bool
    value: Any
    #: Largest competing ``mbal`` observed (valid on abort).
    max_mbal_seen: int


class PaxosCell:
    """Per-process protocol state for one consensus instance."""

    def __init__(self, blocks: RegisterArray, pid: int, n: int) -> None:
        self.blocks = blocks
        self.pid = pid
        self.n = n
        # Local copy of the own block (owner never re-reads it).
        self.mbal, self.bal, self.inp = EMPTY_BLOCK

    def next_ballot(self, above: int) -> int:
        """Smallest ballot of this process strictly greater than ``above``."""
        b = self.pid + 1
        while b <= above:
            b += self.n
        return b

    def attempt(self, ballot: int, my_value: Any) -> Task:
        """Run phases 1 and 2 of ``ballot``; yields register operations
        and returns an :class:`AttemptOutcome`."""
        pid, n = self.pid, self.n
        # ---------------- Phase 1 ----------------
        self.mbal = ballot
        yield WriteReg(self.blocks.register(pid), (ballot, self.bal, self.inp))
        max_mbal = ballot
        best_bal, best_inp = self.bal, self.inp
        aborted = False
        for q in range(n):
            if q == pid:
                continue
            mb, bl, ip = (yield ReadReg(self.blocks.register(q))) or EMPTY_BLOCK
            max_mbal = max(max_mbal, mb)
            if mb > ballot:
                aborted = True
            if bl > best_bal:
                best_bal, best_inp = bl, ip
        if aborted:
            return AttemptOutcome(False, None, max_mbal)
        value = best_inp if best_bal > 0 else my_value
        # ---------------- Phase 2 ----------------
        self.bal, self.inp = ballot, value
        yield WriteReg(self.blocks.register(pid), (ballot, ballot, value))
        for q in range(n):
            if q == pid:
                continue
            mb, _, _ = (yield ReadReg(self.blocks.register(q))) or EMPTY_BLOCK
            max_mbal = max(max_mbal, mb)
            if mb > ballot:
                aborted = True
        if aborted:
            return AttemptOutcome(False, None, max_mbal)
        return AttemptOutcome(True, value, max_mbal)


@dataclass
class ConsensusShared:
    """Shared layout: the election's registers plus Paxos blocks."""

    omega_cls: Type[OmegaAlgorithm]
    omega_shared: Any
    blocks: RegisterArray  # BLOCK[n] of (mbal, bal, inp)
    decision: RegisterArray  # DEC[n]: None or the decided value
    n: int


class ConsensusProcess(OmegaAlgorithm):
    """A process running an Omega election *and* one consensus instance.

    Config keys:

    ``omega_cls``
        The election algorithm class (default
        :class:`~repro.core.algorithm1.WriteEfficientOmega`), plus any
        config that class consumes.
    ``inputs``
        Mapping pid -> proposed value (default ``"v<pid>"``).
    ``anarchy``
        When true every process proposes regardless of ``leader()`` --
        the safety stress mode (liveness is then only probabilistic).
    """

    display_name = "consensus-on-omega"

    def __init__(self, ctx: AlgorithmContext, shared: ConsensusShared) -> None:
        super().__init__(ctx, shared)
        self.omega: OmegaAlgorithm = shared.omega_cls(ctx, shared.omega_shared)
        self.cell = PaxosCell(shared.blocks, self.pid, self.n)
        inputs: Dict[int, Any] = ctx.config.get("inputs", {})
        self.my_value: Any = inputs.get(self.pid, f"v{self.pid}")
        self.anarchy: bool = bool(ctx.config.get("anarchy", False))
        #: The decided value, once known to this process.
        self.decision: Optional[Any] = None
        #: Virtual time at which this process learned the decision
        #: (observer metadata -- the algorithm never branches on it).
        self.decided_at: Optional[float] = None

    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> ConsensusShared:
        """Lay out the embedded Omega's registers plus the Paxos block
        and decision arrays (``config["omega_cls"]`` picks the oracle)."""
        omega_cls: Type[OmegaAlgorithm] = config.get("omega_cls", WriteEfficientOmega)
        return ConsensusShared(
            omega_cls=omega_cls,
            omega_shared=omega_cls.create_shared(memory, n, config),
            blocks=memory.create_array("BLOCK", n, initial=EMPTY_BLOCK),
            decision=memory.create_array("DEC", n, initial=None),
            n=n,
        )

    # -- delegate the election machinery --------------------------------
    def main_task(self) -> Task:
        """The embedded Omega's main task (election runs unchanged)."""
        return self.omega.main_task()

    def timer_task(self) -> Optional[Task]:
        """The embedded Omega's timer task."""
        return self.omega.timer_task()

    def initial_timeout(self) -> Optional[float]:
        """The embedded Omega's initial timeout."""
        return self.omega.initial_timeout()

    def peek_leader(self) -> int:
        """Uncounted observer view of the embedded Omega's leader."""
        return self.omega.peek_leader()

    def leader_query(self) -> Task:
        """Counted in-protocol ``leader()`` query of the embedded Omega."""
        return self.omega.leader_query()

    def extra_tasks(self) -> List[Task]:
        """The consensus proposer task alongside the Omega's own extras."""
        return [self._consensus_task()] + self.omega.extra_tasks()

    # -- the consensus task ---------------------------------------------
    def _consensus_task(self) -> Task:
        pid, n = self.pid, self.n
        ballot = self.cell.next_ballot(0)
        while self.decision is None:
            # Learn a published decision, if any.
            for q in range(n):
                if q == pid:
                    continue
                d = yield ReadReg(self.shared.decision.register(q))
                if d is not None:
                    self.decision = d
                    break
            if self.decision is not None:
                break
            if self.anarchy:
                am_leader = True
            else:
                ld = yield from self.omega.leader_query()
                am_leader = ld == pid
            if not am_leader:
                yield LocalStep()  # back off; re-check next turn
                continue
            outcome = yield from self.cell.attempt(ballot, self.my_value)
            if outcome.decided:
                self.decision = outcome.value
            else:
                ballot = self.cell.next_ballot(outcome.max_mbal_seen)
        self.decided_at = self.ctx.clock()
        yield WriteReg(self.shared.decision.register(pid), self.decision)
        # Task ends; the election tasks keep running.


__all__ = ["AttemptOutcome", "Block", "ConsensusProcess", "ConsensusShared", "EMPTY_BLOCK", "PaxosCell"]
