"""Multi-disk Disk Paxos: consensus on a redundant SAN.

The paper's motivating deployment (Section 1) is a storage-area network
of commodity disks, with Gafni & Lamport's *Disk Paxos* [9] as the
canonical consensus on top.  :mod:`repro.apps.consensus` implements the
single-disk reduction; this module implements the real thing:

* ``m`` disks, each holding one block register per process
  (``DISK<d>.BLOCK[p]``, written only by ``p`` -- still 1WnR);
* a proposer writes its block to every *available* disk and must reach
  a **majority of disks** in each phase;
* disks can crash (stop serving) at scheduled times: any minority of
  disk failures is tolerated, which is exactly the redundancy argument
  for SAN deployments.

Safety comes from majority intersection across disks (two completed
phases share a disk, so the later ballot observes the earlier block);
liveness again comes from Omega nominating a single proposer.

A failed disk access costs the process a step and returns
``DISK_FAILED``; availability is part of the *environment* (the disk
returns an error), not of the process's logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.apps.consensus import EMPTY_BLOCK, AttemptOutcome
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import (
    AlgorithmContext,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    Task,
    WriteReg,
)
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory

#: Sentinel returned by accesses to a crashed disk.
DISK_FAILED = object()


@dataclass
class DiskFleet:
    """The ``m`` disks and their availability schedule."""

    arrays: List[RegisterArray]
    #: Disk index -> crash time (inclusive); absent means always up.
    crash_times: Dict[int, float] = field(default_factory=dict)

    @property
    def m(self) -> int:
        """Number of disks in the fleet."""
        return len(self.arrays)

    @property
    def majority(self) -> int:
        """Quorum size: any two disk majorities intersect."""
        return self.m // 2 + 1

    def available(self, disk: int, now: float) -> bool:
        """Whether ``disk`` still serves requests at ``now``."""
        t = self.crash_times.get(disk)
        return t is None or now < t


class DiskPaxosCell:
    """Per-process Disk Paxos state for one consensus instance."""

    def __init__(self, fleet: DiskFleet, pid: int, n: int, clock: Callable[[], float]) -> None:
        self.fleet = fleet
        self.pid = pid
        self.n = n
        self._clock = clock
        self.mbal, self.bal, self.inp = EMPTY_BLOCK

    def next_ballot(self, above: int) -> int:
        """Smallest ballot of this process strictly greater than ``above``."""
        b = self.pid + 1
        while b <= above:
            b += self.n
        return b

    # ------------------------------------------------------------------
    def _write_block(self, block: Tuple[int, int, Any]) -> Task:
        """Write the own block to every available disk; returns the
        number of disks that accepted it."""
        written = 0
        for d, arr in enumerate(self.fleet.arrays):
            if not self.fleet.available(d, self._clock()):
                yield LocalStep()  # the failed request still costs a step
                continue
            yield WriteReg(arr.register(self.pid), block)
            written += 1
        return written

    def _read_all_blocks(self) -> Task:
        """Read every other process's block from every available disk;
        returns ``(disks_read, blocks)``."""
        disks_read = 0
        blocks: List[Tuple[int, int, Any]] = []
        for d, arr in enumerate(self.fleet.arrays):
            if not self.fleet.available(d, self._clock()):
                yield LocalStep()
                continue
            for q in range(self.n):
                if q == self.pid:
                    continue
                block = yield ReadReg(arr.register(q))
                blocks.append(block or EMPTY_BLOCK)
            disks_read += 1
        return disks_read, blocks

    def attempt(self, ballot: int, my_value: Any) -> Task:
        """One ballot, Disk-Paxos style: each phase needs a majority of
        disks both for the block write and for the read sweep."""
        # ---------------- Phase 1 ----------------
        self.mbal = ballot
        written = yield from self._write_block((ballot, self.bal, self.inp))
        if written < self.fleet.majority:
            return AttemptOutcome(False, None, ballot)
        disks_read, blocks = yield from self._read_all_blocks()
        if disks_read < self.fleet.majority:
            return AttemptOutcome(False, None, ballot)
        max_mbal = max([ballot] + [mb for mb, _, _ in blocks])
        if max_mbal > ballot:
            return AttemptOutcome(False, None, max_mbal)
        best_bal, best_inp = self.bal, self.inp
        for _, bl, ip in blocks:
            if bl > best_bal:
                best_bal, best_inp = bl, ip
        value = best_inp if best_bal > 0 else my_value
        # ---------------- Phase 2 ----------------
        self.bal, self.inp = ballot, value
        written = yield from self._write_block((ballot, ballot, value))
        if written < self.fleet.majority:
            return AttemptOutcome(False, None, ballot)
        disks_read, blocks = yield from self._read_all_blocks()
        if disks_read < self.fleet.majority:
            return AttemptOutcome(False, None, ballot)
        max_mbal = max([ballot] + [mb for mb, _, _ in blocks])
        if max_mbal > ballot:
            return AttemptOutcome(False, None, max_mbal)
        return AttemptOutcome(True, value, max_mbal)


@dataclass
class DiskPaxosShared:
    """Election registers, the disk fleet, and decision dissemination."""

    omega_cls: Type[OmegaAlgorithm]
    omega_shared: Any
    fleet: DiskFleet
    decision: RegisterArray  # DEC[n]: plain registers (dissemination only)
    n: int


class DiskPaxosProcess(OmegaAlgorithm):
    """A process running an Omega election plus Disk Paxos.

    Config keys:

    ``num_disks`` (default 3)
        Fleet size ``m``; any minority of disk crashes is tolerated.
    ``disk_crash_times``
        Mapping disk index -> crash time.
    ``omega_cls`` / ``inputs`` / ``anarchy``
        As in :class:`~repro.apps.consensus.ConsensusProcess`.
    """

    display_name = "disk-paxos-on-omega"

    def __init__(self, ctx: AlgorithmContext, shared: DiskPaxosShared) -> None:
        super().__init__(ctx, shared)
        self.omega: OmegaAlgorithm = shared.omega_cls(ctx, shared.omega_shared)
        self.cell = DiskPaxosCell(shared.fleet, self.pid, self.n, ctx.clock)
        inputs: Dict[int, Any] = ctx.config.get("inputs", {})
        self.my_value: Any = inputs.get(self.pid, f"v{self.pid}")
        self.anarchy: bool = bool(ctx.config.get("anarchy", False))
        self.decision: Optional[Any] = None
        self.decided_at: Optional[float] = None

    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> DiskPaxosShared:
        """Lay out the embedded Omega's registers plus one block array
        per disk (``config["num_disks"]``, crash times included)."""
        omega_cls: Type[OmegaAlgorithm] = config.get("omega_cls", WriteEfficientOmega)
        m = int(config.get("num_disks", 3))
        if m < 1:
            raise ValueError("need at least one disk")
        fleet = DiskFleet(
            arrays=[
                memory.create_array(f"DISK{d}.BLOCK", n, initial=EMPTY_BLOCK) for d in range(m)
            ],
            crash_times=dict(config.get("disk_crash_times", {})),
        )
        return DiskPaxosShared(
            omega_cls=omega_cls,
            omega_shared=omega_cls.create_shared(memory, n, config),
            fleet=fleet,
            decision=memory.create_array("DEC", n, initial=None),
            n=n,
        )

    # -- delegate the election machinery --------------------------------
    def main_task(self) -> Task:
        """The embedded Omega's main task (election runs unchanged)."""
        return self.omega.main_task()

    def timer_task(self) -> Optional[Task]:
        """The embedded Omega's timer task."""
        return self.omega.timer_task()

    def initial_timeout(self) -> Optional[float]:
        """The embedded Omega's initial timeout."""
        return self.omega.initial_timeout()

    def peek_leader(self) -> int:
        """Uncounted observer view of the embedded Omega's leader."""
        return self.omega.peek_leader()

    def leader_query(self) -> Task:
        """Counted in-protocol ``leader()`` query of the embedded Omega."""
        return self.omega.leader_query()

    def extra_tasks(self) -> List[Task]:
        """The Disk Paxos proposer task alongside the Omega's extras."""
        return [self._paxos_task()] + self.omega.extra_tasks()

    # -- the Disk Paxos task ----------------------------------------------
    def _paxos_task(self) -> Task:
        pid, n = self.pid, self.n
        ballot = self.cell.next_ballot(0)
        while self.decision is None:
            for q in range(n):
                if q == pid:
                    continue
                d = yield ReadReg(self.shared.decision.register(q))
                if d is not None:
                    self.decision = d
                    break
            if self.decision is not None:
                break
            if self.anarchy:
                am_leader = True
            else:
                ld = yield from self.omega.leader_query()
                am_leader = ld == pid
            if not am_leader:
                yield LocalStep()
                continue
            outcome = yield from self.cell.attempt(ballot, self.my_value)
            if outcome.decided:
                self.decision = outcome.value
            else:
                ballot = self.cell.next_ballot(outcome.max_mbal_seen)
        self.decided_at = self.ctx.clock()
        yield WriteReg(self.shared.decision.register(pid), self.decision)


__all__ = ["DISK_FAILED", "DiskFleet", "DiskPaxosCell", "DiskPaxosProcess", "DiskPaxosShared"]
