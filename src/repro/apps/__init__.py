"""Applications of the Omega oracle.

The paper's whole motivation for Omega is that it is the *weakest*
failure detector for consensus in crash-prone shared memory [19], and
that Paxos-style replication is built on it [9, 16].  This package
closes that loop:

* :mod:`~repro.apps.adopt_commit` -- the adopt-commit safety object
  from 1WnR registers (the classic building block);
* :mod:`~repro.apps.consensus` -- single-disk Disk-Paxos-style
  consensus driven by any of this repo's Omega algorithms;
* :mod:`~repro.apps.smr` -- a replicated state machine running one
  consensus instance per log slot;
* :mod:`~repro.apps.lease` -- leader-lease analysis on election traces.
"""

from repro.apps.adopt_commit import AdoptCommit, AdoptCommitOutcome
from repro.apps.consensus import ConsensusProcess, ConsensusShared, PaxosCell
from repro.apps.disk_paxos import DiskFleet, DiskPaxosCell, DiskPaxosProcess
from repro.apps.lease import LeaseReport, lease_intervals
from repro.apps.smr import ReplicatedStateMachine

__all__ = [
    "AdoptCommit",
    "AdoptCommitOutcome",
    "ConsensusProcess",
    "ConsensusShared",
    "DiskFleet",
    "DiskPaxosCell",
    "DiskPaxosProcess",
    "LeaseReport",
    "PaxosCell",
    "ReplicatedStateMachine",
    "lease_intervals",
]
