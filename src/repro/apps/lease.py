"""Leader-lease analysis on election traces.

A process *holds the lease* at time ``t`` when its own ``leader()``
output has been itself for the whole window ``[t - length, t]``.
During the anarchy period several processes may hold the lease
simultaneously (the paper is explicit that Omega gives no bound on
when anarchy ends); after stabilization + one lease length, at most one
process can -- which is what makes Omega-based leases useful and what
:func:`lease_intervals` lets experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.tracing import RunTrace


@dataclass
class LeaseReport:
    """Lease-holding structure extracted from one run."""

    length: float
    #: Per-pid list of maximal [start, end] intervals during which the
    #: pid held the lease.
    intervals_by_pid: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Times (sample instants) at which two or more pids held the lease.
    overlap_times: List[float] = field(default_factory=list)

    def holders_at(self, t: float) -> List[int]:
        """Pids holding the lease at time ``t``."""
        return [
            pid
            for pid, spans in self.intervals_by_pid.items()
            if any(a <= t <= b for a, b in spans)
        ]

    def last_overlap(self) -> float:
        """Last instant with multiple holders (``-inf`` when none)."""
        return self.overlap_times[-1] if self.overlap_times else float("-inf")


def lease_intervals(trace: RunTrace, length: float) -> LeaseReport:
    """Compute lease intervals from observer samples.

    A pid's *self-run* is a maximal span of consecutive samples where it
    output itself; it holds the lease over ``[start + length, end]`` of
    each self-run at least ``length`` long.
    """
    if length <= 0:
        raise ValueError("lease length must be positive")
    report = LeaseReport(length=length)
    by_pid = trace.leader_samples_by_pid()
    for pid, samples in by_pid.items():
        spans: List[Tuple[float, float]] = []
        run_start: float | None = None
        last_t: float | None = None
        for t, leader in samples:
            if leader == pid:
                if run_start is None:
                    run_start = t
                last_t = t
            else:
                if run_start is not None and last_t is not None and last_t - run_start >= length:
                    spans.append((run_start + length, last_t))
                run_start = None
        if run_start is not None and last_t is not None and last_t - run_start >= length:
            spans.append((run_start + length, last_t))
        if spans:
            report.intervals_by_pid[pid] = spans

    sample_times = trace.sample_times()
    for t in sample_times:
        if len(report.holders_at(t)) >= 2:
            report.overlap_times.append(t)
    return report


__all__ = ["LeaseReport", "lease_intervals"]
