"""Adopt-commit from 1WnR atomic registers.

The standard two-phase construction (Gafni's commit-adopt): each
process writes its proposal to ``A[i]``, scans ``A``; if it saw only
its own value it writes ``(True, v)`` to ``B[i]``, else ``(False, v)``;
it then scans ``B`` and

* **commits** ``v`` when every written ``B`` entry is ``(True, v)``;
* **adopts** ``v`` when some entry is ``(True, v)``;
* **adopts its own proposal** otherwise.

Safety properties (all checked by unit + hypothesis tests):

* *Validity* -- the output value was somebody's proposal;
* *Agreement* -- if any process commits ``v``, every process adopts or
  commits ``v``;
* *Commitment* -- if all proposals are equal, every deciding process
  commits.

This object is the usual safety half of round-based consensus; the
liveness half is Omega, which is the paper's subject.  The consensus in
:mod:`repro.apps.consensus` uses ballots instead, so adopt-commit is
provided as the self-contained, register-only warm-up application --
and as an extra workload over the shared-memory substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple

from repro.core.interfaces import ReadReg, Task, WriteReg
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory


@dataclass(frozen=True, slots=True)
class AdoptCommitOutcome:
    """Result of one adopt-commit participation."""

    committed: bool
    value: Any


class AdoptCommit:
    """One adopt-commit object shared by ``n`` processes.

    Usage inside a process task::

        outcome = yield from ac.propose(pid, value)
    """

    def __init__(self, memory: SharedMemory, n: int, name: str = "AC") -> None:
        self.n = n
        #: Phase-1 proposals; None means "not yet written".
        self.a: RegisterArray = memory.create_array(f"{name}.A", n, initial=None)
        #: Phase-2 flagged values; None means "not yet written".
        self.b: RegisterArray = memory.create_array(f"{name}.B", n, initial=None)

    def propose(self, pid: int, value: Any) -> Task:
        """Participate with ``value``; returns an
        :class:`AdoptCommitOutcome` (generator-style, yields ops)."""
        yield WriteReg(self.a.register(pid), value)
        seen_other = False
        for q in range(self.n):
            if q == pid:
                continue
            other = yield ReadReg(self.a.register(q))
            if other is not None and other != value:
                seen_other = True
        flag: Tuple[bool, Any] = (not seen_other, value)
        yield WriteReg(self.b.register(pid), flag)

        flagged_value: Optional[Any] = None
        all_true = True
        any_written = False
        for q in range(self.n):
            entry = (flag if q == pid else (yield ReadReg(self.b.register(q))))
            if entry is None:
                continue
            any_written = True
            is_true, v = entry
            if is_true:
                flagged_value = v
            else:
                all_true = False
        assert any_written  # we wrote our own entry
        if all_true and flagged_value is not None:
            return AdoptCommitOutcome(committed=True, value=flagged_value)
        if flagged_value is not None:
            return AdoptCommitOutcome(committed=False, value=flagged_value)
        return AdoptCommitOutcome(committed=False, value=value)


__all__ = ["AdoptCommit", "AdoptCommitOutcome"]
