"""Replicated state machine: one consensus instance per log slot.

The canonical use of an eventual leader (Paxos, [16]): the process that
``leader()`` nominates proposes client commands into consecutive log
slots; every process learns decisions in order and applies them to its
local copy of the state.  Agreement per slot gives identical logs;
Omega gives progress once the election stabilizes -- including after
the current leader crashes, which the SMR bench exercises.

Commands come from a global workload list (``config["commands"]``); the
leader for slot ``s`` proposes ``(commands[s], proposer_pid)``, so logs
record *who* got each command decided -- visibly shifting after a
leader change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.apps.consensus import EMPTY_BLOCK, PaxosCell
from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import (
    AlgorithmContext,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    Task,
    WriteReg,
)
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory


@dataclass
class SlotRegisters:
    """The per-slot consensus registers."""

    blocks: RegisterArray
    decision: RegisterArray


@dataclass
class SMRShared:
    """Election registers plus lazily allocated per-slot instances."""

    omega_cls: Type[OmegaAlgorithm]
    omega_shared: Any
    memory: SharedMemory
    n: int
    slots: Dict[int, SlotRegisters] = field(default_factory=dict)

    def slot(self, index: int) -> SlotRegisters:
        """Registers of slot ``index`` (allocated on first use).

        Allocation is infrastructure, not an algorithm step: the
        register *names* are a deterministic function of the slot, so
        every process addresses the same registers.
        """
        if index not in self.slots:
            self.slots[index] = SlotRegisters(
                blocks=self.memory.create_array(f"LOG{index}.BLOCK", self.n, initial=EMPTY_BLOCK),
                decision=self.memory.create_array(f"LOG{index}.DEC", self.n, initial=None),
            )
        return self.slots[index]


class ReplicatedStateMachine(OmegaAlgorithm):
    """A process replicating a command log over repeated consensus.

    Config keys:

    ``commands``
        The global list of client commands; its length bounds the log.
    ``omega_cls``
        Election algorithm class (default Algorithm 1), plus its config.
    """

    display_name = "smr-on-omega"

    def __init__(self, ctx: AlgorithmContext, shared: SMRShared) -> None:
        super().__init__(ctx, shared)
        self.omega: OmegaAlgorithm = shared.omega_cls(ctx, shared.omega_shared)
        self.commands: List[Any] = list(ctx.config.get("commands", []))
        #: The applied log: slot -> decided (command, proposer) entries,
        #: in slot order.  Identical across processes (agreement).
        self.log: List[Tuple[Any, int]] = []
        #: (slot, decide_time) pairs -- throughput series for the bench.
        self.decide_times: List[Tuple[int, float]] = []

    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> SMRShared:
        """Lay out the embedded Omega's registers; slot cells are
        created lazily by the replication task as the log grows."""
        omega_cls: Type[OmegaAlgorithm] = config.get("omega_cls", WriteEfficientOmega)
        return SMRShared(
            omega_cls=omega_cls,
            omega_shared=omega_cls.create_shared(memory, n, config),
            memory=memory,
            n=n,
        )

    # -- delegate the election machinery --------------------------------
    def main_task(self) -> Task:
        """The embedded Omega's main task (election runs unchanged)."""
        return self.omega.main_task()

    def timer_task(self) -> Optional[Task]:
        """The embedded Omega's timer task."""
        return self.omega.timer_task()

    def initial_timeout(self) -> Optional[float]:
        """The embedded Omega's initial timeout."""
        return self.omega.initial_timeout()

    def peek_leader(self) -> int:
        """Uncounted observer view of the embedded Omega's leader."""
        return self.omega.peek_leader()

    def leader_query(self) -> Task:
        """Counted in-protocol ``leader()`` query of the embedded Omega."""
        return self.omega.leader_query()

    def extra_tasks(self) -> List[Task]:
        """The replication task alongside the Omega's own extras."""
        return [self._smr_task()] + self.omega.extra_tasks()

    # -- the replication task -------------------------------------------
    def _smr_task(self) -> Task:
        pid, n = self.pid, self.n
        for slot_index in range(len(self.commands)):
            regs = self.shared.slot(slot_index)
            cell = PaxosCell(regs.blocks, pid, n)
            ballot = cell.next_ballot(0)
            decision: Optional[Any] = None
            published = False
            while decision is None:
                for q in range(n):
                    if q == pid:
                        continue
                    d = yield ReadReg(regs.decision.register(q))
                    if d is not None:
                        decision = d
                        break
                if decision is not None:
                    break
                ld = yield from self.omega.leader_query()
                if ld != pid:
                    yield LocalStep()
                    continue
                outcome = yield from cell.attempt(ballot, (self.commands[slot_index], pid))
                if outcome.decided:
                    decision = outcome.value
                    yield WriteReg(regs.decision.register(pid), decision)
                    published = True
                else:
                    ballot = cell.next_ballot(outcome.max_mbal_seen)
            if not published:
                yield WriteReg(regs.decision.register(pid), decision)
            self.log.append(decision)
            self.decide_times.append((slot_index, self.ctx.clock()))
        # Log complete; the election tasks keep running.


__all__ = ["ReplicatedStateMachine", "SMRShared", "SlotRegisters"]
