"""Seeded chaos campaigns: fault plans run under the repo's oracles.

A campaign turns the fault subsystem into an *auditor*: generate N
seeded :class:`~repro.faults.plan.FaultPlan` timelines, run each one
through the ``chaos`` scenario (ABD emulation with the history recorder
armed), and judge every run with the oracles the repo already trusts --
the Theorem 1-4 property monitors and the consistency history audit
(plus the write-ack value-integrity cross-check).  A correct emulation
must survive every generated plan with **zero** violations; when a run
violates, the campaign delta-debugs the plan down to a 1-minimal pinned
repro (:func:`repro.faults.shrink.shrink_plan` re-running the same
seeded scenario as the oracle) so the bug arrives as a scenario you can
paste into ``repro run``.

This module imports the workloads/engine stack, so it is deliberately
**not** re-exported from :mod:`repro.faults` (which
:mod:`repro.memory.emulated` imports); import it explicitly, as
``repro chaos`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.summary import RunSummary, summarize_run
from repro.faults.generator import FaultScheduleGenerator
from repro.faults.plan import FaultPlan
from repro.faults.shrink import shrink_plan
from repro.workloads.registry import resolve_algorithm
from repro.workloads.scenarios import chaos


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one chaos campaign (all plain data)."""

    #: Algorithm registry name every plan runs against.
    algorithm: str = "alg1"
    #: Campaign seed: plan generation *and* the per-plan run seeds
    #: derive from it, so a campaign is reproducible from one integer.
    seed: int = 0
    #: Number of generated fault plans to run.
    plans: int = 20
    #: Process count / horizon / replica count of every chaos cell.
    n: int = 3
    horizon: float = 8000.0
    replicas: int = 3
    #: Maximum disturbance windows per generated plan.
    max_faults: int = 3
    #: Thread through to the emulation: the recover-with-resync protocol
    #: (``False`` is the deliberately broken negative mode) and the
    #: retransmission policy.
    resync: bool = True
    retry_policy: str = "fixed"
    #: Delta-debug violating plans down to minimal pinned repros.
    shrink: bool = True


@dataclass
class CampaignViolation:
    """One violating plan, with its shrunk pinned repro."""

    #: Which generated plan violated (``generate(index)``).
    index: int
    #: Run seed of the violating (and every shrink-oracle) run.
    seed: int
    #: The full generated plan that violated.
    plan: FaultPlan
    #: Oracle count of the violating run (property + audit + integrity).
    violations: int
    #: The 1-minimal violating plan (``None`` when shrinking was off).
    shrunk: Optional[FaultPlan] = None
    #: Scenario re-runs the delta debugger spent.
    oracle_runs: int = 0
    #: The pinned repro: ``chaos`` scenario kwargs + algorithm + seed,
    #: ready for ``repro run`` / ``ScenarioRef.make``.
    repro: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """What a campaign produced: run counts, aggregates, violations."""

    config: CampaignConfig
    plans_run: int = 0
    #: Aggregated resilience counters across every (non-oracle) run.
    retransmissions: int = 0
    recoveries: int = 0
    resyncs: int = 0
    integrity_violations: int = 0
    violations: List[CampaignViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every plan ran clean."""
        return not self.violations

    def to_jsonable(self) -> Dict[str, Any]:
        """A plain-JSON report (the ``repro chaos --json`` payload)."""
        return {
            "algorithm": self.config.algorithm,
            "seed": self.config.seed,
            "plans_run": self.plans_run,
            "resync": self.config.resync,
            "retry_policy": self.config.retry_policy,
            "retransmissions": self.retransmissions,
            "recoveries": self.recoveries,
            "resyncs": self.resyncs,
            "integrity_violations": self.integrity_violations,
            "violations": [
                {
                    "index": v.index,
                    "seed": v.seed,
                    "violations": v.violations,
                    "plan": v.plan.to_jsonable(),
                    "shrunk": None if v.shrunk is None else v.shrunk.to_jsonable(),
                    "oracle_runs": v.oracle_runs,
                    "repro": v.repro,
                }
                for v in self.violations
            ],
        }


def violation_count(summary: RunSummary) -> int:
    """The campaign oracle: every violation class the run can surface.

    Theorem 1-4 monitor violations, consistency history-audit
    violations (the recorder is always armed in chaos cells) and
    write-ack value-integrity violations all count -- a chaos run is
    clean only when *all* of them are zero.
    """
    return (
        summary.property_violations
        + summary.audit_violations
        + summary.integrity_violations
    )


def replay_plan(plan: FaultPlan, config: CampaignConfig, seed: int) -> RunSummary:
    """Run one fault plan through the chaos scenario and summarize it.

    Deterministic in ``(plan, config, seed)``: this is both the
    campaign's forward path and the delta debugger's oracle, so a
    shrunk plan is guaranteed to reproduce under exactly these knobs.
    """
    scenario = chaos(
        n=config.n,
        horizon=config.horizon,
        replicas=config.replicas,
        plan=plan.to_jsonable(),
        resync=config.resync,
        retry_policy=config.retry_policy,
    )
    result = scenario.run(
        resolve_algorithm(config.algorithm),
        seed=seed,
        log_reads=False,
        trace_events=False,
    )
    return summarize_run(
        result,
        scenario_name=scenario.name,
        margin=scenario.margin,
        assumption=scenario.assumption,
    )


def pinned_repro(plan: FaultPlan, config: CampaignConfig, seed: int) -> Dict[str, Any]:
    """The minimal repro as engine-ready plain data.

    The payload pins everything a rerun needs: the ``chaos`` factory
    kwargs (fault plan included, in JSON form), the algorithm and the
    seed -- exactly the shape ``ScenarioRef.make("chaos", ...)``
    accepts.
    """
    return {
        "factory": "chaos",
        "kwargs": {
            "n": config.n,
            "horizon": config.horizon,
            "replicas": config.replicas,
            "plan": plan.to_jsonable(),
            "resync": config.resync,
            "retry_policy": config.retry_policy,
        },
        "algorithm": config.algorithm,
        "seed": seed,
    }


def run_campaign(
    config: CampaignConfig,
    progress: Optional[Any] = None,
) -> CampaignResult:
    """Run the campaign: generate, run, judge, shrink.

    ``progress`` is an optional ``callable(index, summary, count)``
    hook the CLI uses for per-plan lines; pass ``None`` for silence.
    """
    generator = FaultScheduleGenerator(
        config.seed,
        replicas=config.replicas,
        horizon=config.horizon,
        max_faults=config.max_faults,
    )
    result = CampaignResult(config=config)
    for index in range(config.plans):
        plan = generator.generate(index)
        seed = config.seed + index
        summary = replay_plan(plan, config, seed)
        count = violation_count(summary)
        result.plans_run += 1
        result.retransmissions += summary.retransmissions
        result.recoveries += summary.recoveries
        result.resyncs += summary.resyncs
        result.integrity_violations += summary.integrity_violations
        if progress is not None:
            progress(index, summary, count)
        if count == 0:
            continue
        violation = CampaignViolation(
            index=index, seed=seed, plan=plan, violations=count
        )
        if config.shrink:
            shrunk = shrink_plan(
                plan,
                lambda candidate: violation_count(
                    replay_plan(candidate, config, seed)
                )
                > 0,
            )
            violation.shrunk = shrunk.plan
            violation.oracle_runs = shrunk.oracle_runs
            violation.repro = pinned_repro(shrunk.plan, config, seed)
        else:
            violation.repro = pinned_repro(plan, config, seed)
        result.violations.append(violation)
    return result


__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CampaignViolation",
    "pinned_repro",
    "replay_plan",
    "run_campaign",
    "violation_count",
]
