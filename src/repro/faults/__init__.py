"""Fault injection: typed fault timelines, generation, and shrinking.

The subsystem splits in two layers so the import graph stays acyclic:

* this package root re-exports the *plan language*
  (:mod:`repro.faults.plan`), the seeded
  :class:`~repro.faults.generator.FaultScheduleGenerator` and the ddmin
  :func:`~repro.faults.shrink.shrink_plan` -- pure data and algorithms
  with no dependency on the workloads/engine stack, safe to import from
  :mod:`repro.memory.emulated`;
* :mod:`repro.faults.campaign` (imported explicitly, never from here)
  runs seeded chaos campaigns through scenarios and the run summarizer
  and backs the ``repro chaos`` CLI.
"""

from repro.faults.generator import FaultScheduleGenerator
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.shrink import ShrinkResult, shrink_plan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultScheduleGenerator",
    "ShrinkResult",
    "shrink_plan",
]
