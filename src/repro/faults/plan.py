"""Typed fault timelines: faults as *events with lifetimes*.

The PR 4 emulation could only degrade one way: replicas crash-stop
(``EmulationConfig.replica_crash_times``) and never come back, and the
link model is fixed for the whole run.  A :class:`FaultPlan` instead is
a timeline of injections *and repairs*:

* ``replica-crash`` / ``replica-recover`` -- a replica node stops, then
  rejoins **with amnesia** and runs a quorum state-resync before
  serving reads again (:mod:`repro.memory.emulated`);
* ``partition`` / ``heal`` -- an island of replica indices is cut off
  from the rest of the world, then reconnected
  (:class:`repro.netsim.network.PartitionScheduleLinks`);
* ``message-storm`` -- a self-contained congestion window during which
  every link's delay is multiplied by ``factor``.

Plans are plain data: they serialize to a list of dicts
(:meth:`FaultPlan.to_jsonable`), so they travel inside scenario-factory
kwargs through the parallel engine's content-hashed specs, and they
shrink -- :mod:`repro.faults.shrink` delta-debugs a violating plan down
to a minimal pinned repro over the :meth:`FaultPlan.groups` units
(a crash shrinks together with its recovery, a partition with its
heal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: The fault kinds a plan may schedule, in timeline tie-break order
#: (repairs sort before injections at equal times so a back-to-back
#: recover/crash of the same replica stays a valid state machine).
FAULT_KINDS: Tuple[str, ...] = (
    "replica-recover",
    "heal",
    "replica-crash",
    "partition",
    "message-storm",
)

#: Fault kinds that target a single replica index.
_REPLICA_KINDS = ("replica-crash", "replica-recover")

#: Fault kinds that carry an island of replica indices.
_ISLAND_KINDS = ("partition", "heal")


@dataclass(frozen=True)
class FaultEvent:
    """One timeline entry: a fault injection or its repair.

    Only the fields meaningful for ``kind`` are set: ``replica`` for
    the crash/recover pair, ``replicas`` (the isolated island) for
    partition/heal, and ``until``/``factor`` for a message storm.  The
    unused fields keep inert defaults so events stay hashable value
    objects.
    """

    kind: str
    at: float
    replica: int = -1
    replicas: Tuple[int, ...] = ()
    until: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {list(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"negative fault time {self.at} for {self.kind}")
        if self.kind in _REPLICA_KINDS and self.replica < 0:
            raise ValueError(f"{self.kind} needs a non-negative replica index")
        if self.kind in _ISLAND_KINDS:
            if not self.replicas:
                raise ValueError(f"{self.kind} needs a non-empty replica island")
            if len(set(self.replicas)) != len(self.replicas):
                raise ValueError(f"{self.kind} island repeats a replica index")
        if self.kind == "message-storm":
            if self.until <= self.at:
                raise ValueError("message-storm needs until > at")
            if self.factor < 1.0:
                raise ValueError("message-storm factor must be >= 1")
        # Canonicalize the island so JSON round-trips compare equal.
        object.__setattr__(self, "replicas", tuple(sorted(int(i) for i in self.replicas)))

    # ------------------------------------------------------------------
    def sort_key(self) -> Tuple[float, int, int, Tuple[int, ...]]:
        """Deterministic timeline ordering (time, then kind priority)."""
        return (self.at, FAULT_KINDS.index(self.kind), self.replica, self.replicas)

    def to_jsonable(self) -> Dict[str, Any]:
        """The plain-dict form, carrying only the meaningful fields."""
        out: Dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.kind in _REPLICA_KINDS:
            out["replica"] = self.replica
        elif self.kind in _ISLAND_KINDS:
            out["replicas"] = list(self.replicas)
        else:
            out["until"] = self.until
            out["factor"] = self.factor
        return out

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_jsonable` output."""
        data = dict(payload)
        unknown = set(data) - {"kind", "at", "replica", "replicas", "until", "factor"}
        if unknown:
            raise ValueError(f"unknown fault-event key(s): {sorted(unknown)}")
        return cls(
            kind=str(data.get("kind", "")),
            at=float(data.get("at", -1.0)),
            replica=int(data.get("replica", -1)),
            replicas=tuple(int(i) for i in data.get("replicas") or ()),
            until=float(data.get("until", 0.0)),
            factor=float(data.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A sorted timeline of :class:`FaultEvent` entries."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=FaultEvent.sort_key))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Any:
        return iter(self.events)

    # ------------------------------------------------------------------
    def validate(self, replicas: int) -> None:
        """Check the timeline is a legal state machine for ``replicas``.

        Every index must be in range, a recover must repair an earlier
        un-repaired crash of the same replica, and a heal must close an
        island that is actually open.  Liveness is deliberately *not*
        checked here (a plan may crash a majority, stalling quorums
        until a recovery) -- that is what campaigns probe.
        """
        crashed: set = set()
        open_islands: List[Tuple[int, ...]] = []
        for ev in self.events:
            if ev.kind in _REPLICA_KINDS and not 0 <= ev.replica < replicas:
                raise ValueError(
                    f"replica index {ev.replica} out of range for {replicas}"
                )
            if ev.kind in _ISLAND_KINDS:
                if any(not 0 <= i < replicas for i in ev.replicas):
                    raise ValueError(
                        f"island {ev.replicas} out of range for {replicas} replicas"
                    )
                if len(ev.replicas) >= replicas:
                    raise ValueError("a partition island must exclude some replica")
            if ev.kind == "replica-crash":
                if ev.replica in crashed:
                    raise ValueError(f"replica {ev.replica} crashed twice without recovering")
                crashed.add(ev.replica)
            elif ev.kind == "replica-recover":
                if ev.replica not in crashed:
                    raise ValueError(f"replica {ev.replica} recovers without a crash")
                crashed.discard(ev.replica)
            elif ev.kind == "partition":
                if ev.replicas in open_islands:
                    raise ValueError(f"island {ev.replicas} partitioned twice without a heal")
                open_islands.append(ev.replicas)
            elif ev.kind == "heal":
                if ev.replicas not in open_islands:
                    raise ValueError(f"heal of {ev.replicas} without an open partition")
                open_islands.remove(ev.replicas)

    # ------------------------------------------------------------------
    def groups(self) -> List[Tuple[FaultEvent, ...]]:
        """The shrink units: each injection paired with its repair.

        A crash travels with the recover of the same replica that
        follows it, a partition with the heal of the same island; storms
        and unrepaired injections are singleton groups.  The delta
        debugger removes whole groups, so a shrunk plan is always a
        legal timeline.
        """
        out: List[Tuple[FaultEvent, ...]] = []
        pending_crash: Dict[int, int] = {}
        pending_part: Dict[Tuple[int, ...], int] = {}
        for ev in self.events:
            if ev.kind == "replica-crash":
                pending_crash[ev.replica] = len(out)
                out.append((ev,))
            elif ev.kind == "replica-recover":
                slot = pending_crash.pop(ev.replica, None)
                if slot is None:  # unmatched repair: keep it a unit
                    out.append((ev,))
                else:
                    out[slot] = out[slot] + (ev,)
            elif ev.kind == "partition":
                pending_part[ev.replicas] = len(out)
                out.append((ev,))
            elif ev.kind == "heal":
                slot = pending_part.pop(ev.replicas, None)
                if slot is None:
                    out.append((ev,))
                else:
                    out[slot] = out[slot] + (ev,)
            else:
                out.append((ev,))
        return out

    @classmethod
    def from_groups(cls, groups: Iterable[Tuple[FaultEvent, ...]]) -> "FaultPlan":
        """Reassemble a plan from a subset of :meth:`groups` units."""
        return cls(tuple(ev for group in groups for ev in group))

    # ------------------------------------------------------------------
    def partition_windows(self, horizon: float) -> Tuple[Tuple[float, float, Tuple[int, ...]], ...]:
        """``(start, end, island)`` windows; an unhealed island ends at
        ``horizon``."""
        windows: List[Tuple[float, float, Tuple[int, ...]]] = []
        opened: Dict[Tuple[int, ...], float] = {}
        for ev in self.events:
            if ev.kind == "partition":
                opened[ev.replicas] = ev.at
            elif ev.kind == "heal":
                start = opened.pop(ev.replicas, None)
                if start is not None:
                    windows.append((start, ev.at, ev.replicas))
        for island, start in opened.items():
            windows.append((start, horizon, island))
        return tuple(sorted(windows))

    def storm_windows(self, horizon: float) -> Tuple[Tuple[float, float, float], ...]:
        """``(start, end, factor)`` congestion windows (horizon-clamped)."""
        return tuple(
            (ev.at, min(ev.until, horizon), ev.factor)
            for ev in self.events
            if ev.kind == "message-storm" and ev.at < horizon
        )

    def last_event_time(self) -> float:
        """When the environment is quiet again (0.0 for an empty plan).

        Storm/partition lifetimes count: an unhealed partition never
        quiets down, reported as ``inf``.
        """
        quiet = 0.0
        opened = 0
        for ev in self.events:
            quiet = max(quiet, ev.until if ev.kind == "message-storm" else ev.at)
            if ev.kind == "partition":
                opened += 1
            elif ev.kind == "heal":
                opened -= 1
        return float("inf") if opened else quiet

    # ------------------------------------------------------------------
    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The plain list-of-dicts form (scenario kwargs, JSON payloads)."""
        return [ev.to_jsonable() for ev in self.events]

    @classmethod
    def from_jsonable(cls, payload: Optional[Sequence[Mapping[str, Any]]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_jsonable` output (``None`` -> empty)."""
        return cls(tuple(FaultEvent.from_jsonable(ev) for ev in payload or ()))


__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan"]
