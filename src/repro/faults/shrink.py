"""Delta-debugging a violating fault plan down to a minimal repro.

Classic ddmin (Zeller's minimizing delta debugger) over the plan's
:meth:`~repro.faults.plan.FaultPlan.groups` units rather than raw
events: a crash shrinks together with its recovery and a partition with
its heal, so every candidate the oracle sees is a *legal* timeline --
the debugger never wastes runs on recover-without-crash nonsense, and
the result it converges to is 1-minimal at the group level (removing
any single remaining fault group makes the violation disappear).

The oracle is an arbitrary ``is_violating(plan) -> bool`` callable;
:mod:`repro.faults.campaign` supplies one that re-runs the scenario and
counts theorem-monitor plus history-audit violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultPlan


@dataclass
class ShrinkResult:
    """Outcome of one :func:`shrink_plan` reduction."""

    #: The 1-minimal violating plan.
    plan: FaultPlan
    #: Oracle invocations spent on the reduction.
    oracle_runs: int = 0
    #: Group counts the reduction stepped through (diagnostics).
    trajectory: List[int] = field(default_factory=list)


def _chunks(groups: Sequence[Tuple[FaultEvent, ...]], n: int) -> List[List[Tuple[FaultEvent, ...]]]:
    """Split ``groups`` into ``n`` near-equal contiguous chunks."""
    out: List[List[Tuple[FaultEvent, ...]]] = []
    size, extra = divmod(len(groups), n)
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(list(groups[start:end]))
        start = end
    return [chunk for chunk in out if chunk]


def shrink_plan(
    plan: FaultPlan,
    is_violating: Callable[[FaultPlan], bool],
    *,
    max_oracle_runs: int = 200,
) -> ShrinkResult:
    """Reduce ``plan`` to a 1-minimal violating plan via ddmin.

    ``plan`` must already violate (``is_violating(plan)`` is assumed
    true and not re-checked).  The oracle budget is a safety valve for
    pathological oracles; within it the result is guaranteed violating,
    and with the default budget every realistic campaign plan (a
    handful of groups) reduces fully.
    """
    result = ShrinkResult(plan=plan)
    groups: List[Tuple[FaultEvent, ...]] = plan.groups()
    result.trajectory.append(len(groups))

    def check(candidate_groups: Sequence[Tuple[FaultEvent, ...]]) -> bool:
        result.oracle_runs += 1
        return is_violating(FaultPlan.from_groups(candidate_groups))

    granularity = 2
    while len(groups) >= 2 and result.oracle_runs < max_oracle_runs:
        chunks = _chunks(groups, granularity)
        reduced = False
        for i in range(len(chunks)):
            complement = [g for j, chunk in enumerate(chunks) if j != i for g in chunk]
            if not complement:
                continue
            if check(complement):
                groups = complement
                result.trajectory.append(len(groups))
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if result.oracle_runs >= max_oracle_runs:
                break
        if not reduced:
            if granularity >= len(groups):
                break
            granularity = min(len(groups), 2 * granularity)

    result.plan = FaultPlan.from_groups(groups)
    return result


__all__ = ["ShrinkResult", "shrink_plan"]
