"""Seeded, deterministic fault-schedule generation.

:class:`FaultScheduleGenerator` turns ``(seed, index)`` into a
well-formed :class:`~repro.faults.plan.FaultPlan`: the ``index``-th plan
of a campaign is a pure function of the generator's knobs, so a
campaign is reproducible from its seed alone and any plan can be
regenerated without replaying the ones before it.

Generated plans are deliberately *conservative* so that a correct
emulation must survive them (the ``repro chaos`` acceptance bar is a
zero-violation campaign):

* disturbance windows are **serialized** -- at most one replica is
  crashed/recovering or partitioned at any instant, so quorums stay
  reachable and a recovering replica can always collect its resync
  quorum from the others;
* every window closes with **slack** before the next one opens (time
  for retransmission and the state-resync round to finish);
* the final ``quiet_tail`` fraction of the horizon is fault-free, so
  the eventual-leadership monitors (Theorems 1-4) have a stable suffix
  to judge.

Anything harsher -- overlapping faults, majority crashes, unhealed
partitions -- can still be expressed by hand-building a
:class:`FaultPlan`; the generator is the campaign's workhorse, not the
plan language's ceiling.
"""

from __future__ import annotations

import random
from typing import List

from repro.faults.plan import FaultEvent, FaultPlan

#: Disturbance shapes the generator draws from (uniformly).
_WINDOW_KINDS = ("crash-recover", "partition-heal", "message-storm")


class FaultScheduleGenerator:
    """Derives the ``index``-th fault plan of a seeded campaign.

    Parameters
    ----------
    seed:
        Campaign seed; ``generate(i)`` draws from a ``Random`` seeded
        by ``(seed, i)`` so plans are independent of generation order.
    replicas:
        Replica count of the target emulation (fault targets are drawn
        from it, and islands stay a strict minority).
    horizon:
        Simulation horizon the plans are built for.
    max_faults:
        Upper bound on disturbance windows per plan (at least 1 fires).
    quiet_tail:
        Fraction of the horizon kept fault-free at the end.
    """

    def __init__(
        self,
        seed: int,
        *,
        replicas: int = 3,
        horizon: float = 8000.0,
        max_faults: int = 3,
        quiet_tail: float = 0.4,
    ) -> None:
        if replicas < 2:
            raise ValueError("need at least two replicas to fault meaningfully")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if max_faults < 1:
            raise ValueError("max_faults must be at least 1")
        if not 0 < quiet_tail < 1:
            raise ValueError("quiet_tail must be in (0, 1)")
        self.seed = seed
        self.replicas = replicas
        self.horizon = horizon
        self.max_faults = max_faults
        self.quiet_tail = quiet_tail

    # ------------------------------------------------------------------
    def generate(self, index: int = 0) -> FaultPlan:
        """The ``index``-th plan: serialized disturbance windows + slack."""
        rng = random.Random(f"{self.seed}:{index}")
        first = 0.05 * self.horizon
        last = (1.0 - self.quiet_tail) * self.horizon
        count = rng.randint(1, self.max_faults)
        slot = (last - first) / count
        events: List[FaultEvent] = []
        for k in range(count):
            # Each disturbance lives inside its own slot with >= 20% of
            # the slot as trailing slack (resync / retransmission time).
            slot_start = first + k * slot
            start = slot_start + rng.uniform(0.0, 0.2) * slot
            end = start + rng.uniform(0.3, 0.6) * slot
            kind = rng.choice(_WINDOW_KINDS)
            if kind == "crash-recover":
                replica = rng.randrange(self.replicas)
                events.append(FaultEvent("replica-crash", start, replica=replica))
                events.append(FaultEvent("replica-recover", end, replica=replica))
            elif kind == "partition-heal":
                island = (rng.randrange(self.replicas),)
                events.append(FaultEvent("partition", start, replicas=island))
                events.append(FaultEvent("heal", end, replicas=island))
            else:
                factor = rng.uniform(2.0, 6.0)
                events.append(
                    FaultEvent("message-storm", start, until=end, factor=factor)
                )
        plan = FaultPlan(tuple(events))
        plan.validate(self.replicas)
        return plan


__all__ = ["FaultScheduleGenerator"]
