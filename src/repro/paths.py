"""Repo-anchored filesystem locations.

Artifacts (the engine's JSONL result cache, the perf baseline) belong at
the repository root regardless of the caller's working directory.  The
one shared rule lives here: walk up from this file to the checkout root
and verify it by its ``pyproject.toml``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional


def repo_root() -> Optional[Path]:
    """The checkout root, or ``None`` when the package is installed
    outside one (no ``pyproject.toml`` at the expected depth)."""
    root = Path(__file__).resolve().parents[2]
    if (root / "pyproject.toml").is_file():
        return root
    return None


__all__ = ["repo_root"]
