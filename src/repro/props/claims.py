"""Which theorems are *expected* to hold where.

A theorem checker can only flag a violation relative to a claim: the
paper proves Theorems 1-4 for Algorithm 1 **under assumption AWB**, not
for every algorithm in every environment.  Two declarations meet here:

* every algorithm class carries ``claimed_theorems`` and
  ``requires_assumption`` (see
  :class:`repro.core.interfaces.OmegaAlgorithm`);
* every scenario declares the assumption class its environment
  satisfies *by construction* (``Scenario.assumption``).

The assumption classes form a strength lattice mirroring the taxonomy
of Aguilera et al. (eventual t-source vs AWB vs full eventual
synchrony):

* ``"none"``   -- adversarial beyond the paper's assumptions (e.g. the
  ``capped-timers`` scenario violates AWB2); nothing is expected.
* ``"awb"``    -- AWB1 (one eventually timely process) + AWB2
  (asymptotically well-behaved timers) hold.
* ``"ev-sync"`` -- full eventual synchrony: every process eventually
  timely.  Strictly stronger than AWB.

A theorem is *expected* iff the algorithm claims it and the scenario's
declared class is at least as strong as the algorithm's requirement.
A measured failure of an unexpected theorem is reported but is not a
violation (it is often the interesting datum -- e.g. the baseline
churning under AWB-only is exactly the assumption gap the paper
exploits).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet

#: Strength order of the declared assumption classes.
ASSUMPTION_ORDER: Dict[str, int] = {"none": 0, "awb": 1, "ev-sync": 2}

#: Short names for the four checked theorems.
THEOREM_NAMES: Dict[int, str] = {
    1: "eventual-leadership",
    2: "boundedness",
    3: "single-writer",
    4: "write-optimality",
}


def assumption_covers(declared: str, required: str) -> bool:
    """Is the declared environment class at least as strong as required?"""
    try:
        return ASSUMPTION_ORDER[declared] >= ASSUMPTION_ORDER[required]
    except KeyError as exc:
        raise ValueError(
            f"unknown assumption class {exc.args[0]!r}; "
            f"choose from {sorted(ASSUMPTION_ORDER)}"
        ) from None


def expected_theorems(algorithm_cls: Any, assumption: str) -> FrozenSet[int]:
    """Theorems expected of ``algorithm_cls`` under ``assumption``.

    Empty when the environment is weaker than the algorithm's
    requirement (nothing proven -> nothing expected).
    """
    claimed = frozenset(getattr(algorithm_cls, "claimed_theorems", frozenset()))
    required = getattr(algorithm_cls, "requires_assumption", "awb")
    return claimed if assumption_covers(assumption, required) else frozenset()


__all__ = [
    "ASSUMPTION_ORDER",
    "THEOREM_NAMES",
    "assumption_covers",
    "expected_theorems",
]
