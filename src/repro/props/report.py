"""Composable claimed-vs-measured property reports.

:func:`check_properties` replays a finished run through the four
theorem monitors and wraps the measured verdicts with the *expectation*
derived from the algorithm's claims and the scenario's declared
assumption class (:mod:`repro.props.claims`).  The resulting
:class:`PropertyReport` is a small value object -- JSON round-trippable
and picklable -- that :class:`~repro.engine.summary.RunSummary` embeds,
so property verdicts ride through the parallel engine and its JSONL
cache like any other cell outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.props.checkers import (
    BoundednessMonitor,
    SingleWriterMonitor,
    StabilizationMonitor,
    WriteOptimalityMonitor,
)
from repro.props.claims import THEOREM_NAMES, assumption_covers


@dataclass(frozen=True)
class TheoremVerdict:
    """One theorem's claimed-vs-measured outcome."""

    theorem: int
    name: str
    #: Measured: did the behaviour satisfy the property?
    holds: bool
    #: Claimed: does the algorithm promise it under the scenario's
    #: declared assumption class?
    expected: bool
    detail: str = ""

    @property
    def violated(self) -> bool:
        """A violation is a *broken promise*: expected but not measured."""
        return self.expected and not self.holds

    def to_jsonable(self) -> Dict[str, Any]:
        """The plain-JSON form (RunSummary embedding)."""
        return {
            "theorem": self.theorem,
            "name": self.name,
            "holds": self.holds,
            "expected": self.expected,
            "detail": self.detail,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "TheoremVerdict":
        """Rebuild a verdict from its JSON form."""
        return cls(
            theorem=int(payload["theorem"]),
            name=str(payload["name"]),
            holds=bool(payload["holds"]),
            expected=bool(payload["expected"]),
            detail=str(payload.get("detail", "")),
        )


@dataclass(frozen=True)
class PropertyReport:
    """Theorem 1-4 verdicts for one run."""

    algorithm: str
    #: Assumption class the scenario declared ("none"/"awb"/"ev-sync").
    assumption: str
    #: Assumption class the algorithm's claims require.
    requires: str
    #: Theorems the algorithm claims (sorted).
    claimed: Tuple[int, ...]
    #: One verdict per checked theorem, in theorem order.
    verdicts: Tuple[TheoremVerdict, ...]

    @property
    def ok(self) -> bool:
        """True when no claimed theorem was violated."""
        return not self.violations()

    def violations(self) -> List[TheoremVerdict]:
        """Expected-but-failed verdicts (empty on a clean audit)."""
        return [v for v in self.verdicts if v.violated]

    def verdict(self, theorem: int) -> TheoremVerdict:
        """The verdict for one theorem number (KeyError if unchecked)."""
        for v in self.verdicts:
            if v.theorem == theorem:
                return v
        raise KeyError(f"no verdict for theorem {theorem}")

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """The plain-JSON form (RunSummary embedding)."""
        return {
            "algorithm": self.algorithm,
            "assumption": self.assumption,
            "requires": self.requires,
            "claimed": list(self.claimed),
            "verdicts": [v.to_jsonable() for v in self.verdicts],
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "PropertyReport":
        """Rebuild a report from its JSON form."""
        return cls(
            algorithm=str(payload["algorithm"]),
            assumption=str(payload["assumption"]),
            requires=str(payload["requires"]),
            claimed=tuple(int(t) for t in payload.get("claimed", ())),
            verdicts=tuple(
                TheoremVerdict.from_jsonable(v) for v in payload.get("verdicts", ())
            ),
        )


# ----------------------------------------------------------------------
def check_properties(
    result: Any,
    *,
    assumption: str = "awb",
    margin: float = 0.0,
    window: float = 100.0,
    algorithm_cls: Optional[type] = None,
) -> PropertyReport:
    """Run all four theorem monitors over a finished run.

    Parameters
    ----------
    result:
        A :class:`~repro.core.runner.RunResult` (duck-typed: needs
        ``horizon``, ``trace``, ``memory.write_log``, ``crash_plan``,
        ``algorithms``, ``algorithm_name``).
    assumption:
        Environment class the scenario declares; decides which claimed
        theorems are *expected* (see :mod:`repro.props.claims`).
    margin:
        Stability margin for the Theorem 1 verdict (scenario-chosen).
    window:
        Tail-window width for the Theorem 3/4 monitors -- the same knob
        the census summarizer uses, so verdicts and censuses agree.
    algorithm_cls:
        Override for the claims source; defaults to the class of the
        run's algorithm instances.

    Only consumes the write log, the crash plan and the leader-sample
    trace, so it works identically in the engine's low-overhead run
    mode.
    """
    cls = algorithm_cls or type(result.algorithms[0])
    claimed = frozenset(getattr(cls, "claimed_theorems", frozenset()))
    requires = getattr(cls, "requires_assumption", "awb")
    covered = assumption_covers(assumption, requires)

    stab = StabilizationMonitor(result.horizon, margin=margin)
    bounded = BoundednessMonitor(result.horizon)
    single = SingleWriterMonitor(result.horizon, tail=min(window, result.horizon))
    optimal = WriteOptimalityMonitor(result.horizon, window=window)

    for pid, t in sorted(result.crash_plan.crash_times.items()):
        if t <= result.horizon:
            stab.observe_crash(t, pid)
    for t, pid, leader in result.trace.leader_samples():
        stab.observe_sample(t, pid, leader)
    for rec in result.memory.write_log:
        bounded.observe_write(rec.time, rec.pid, rec.register, rec.value)
        single.observe_write(rec.time, rec.pid, rec.register, rec.value)
        optimal.observe_write(rec.time, rec.pid, rec.register, rec.value)

    t1 = stab.finish()
    leader = t1.leader if t1.holds else None
    t2 = bounded.finish(leader, settle_time=t1.settle_time)
    t3 = single.finish(leader)
    t4 = optimal.finish(leader)

    def verdict(theorem: int, holds: bool, detail: str) -> TheoremVerdict:
        return TheoremVerdict(
            theorem=theorem,
            name=THEOREM_NAMES[theorem],
            holds=holds,
            expected=covered and theorem in claimed,
            detail=detail,
        )

    return PropertyReport(
        algorithm=result.algorithm_name,
        assumption=assumption,
        requires=requires,
        claimed=tuple(sorted(claimed)),
        verdicts=(
            verdict(1, t1.holds, t1.detail),
            verdict(2, t2.holds, t2.detail),
            verdict(3, t3.holds, t3.detail),
            verdict(4, t4.holds, t4.detail),
        ),
    )


__all__ = ["PropertyReport", "TheoremVerdict", "check_properties"]
