"""Trace-driven property checkers for the paper's Theorems 1-4.

The paper's claims are theorems about *behaviors*:

* **Theorem 1** -- eventually every correct process outputs one common
  correct leader;
* **Theorem 2** -- all shared variables except ``PROGRESS[ell]`` stay
  bounded;
* **Theorem 3** -- eventually a single process writes a single
  variable;
* **Theorem 4** -- write-optimality: exactly one forever-writer, the
  minimum any Omega implementation can have.

This package turns each theorem into an *online monitor*
(:mod:`repro.props.checkers`): feed it samples, writes and crashes as
they happen (or replay a finished run's trace) and call ``finish()``
for a measured verdict.  :func:`repro.props.report.check_properties`
composes the four monitors into a :class:`~repro.props.report.PropertyReport`
-- claimed-vs-measured, aware of which assumption class the scenario
declares (:mod:`repro.props.claims`) -- which the engine's
:class:`~repro.engine.summary.RunSummary` embeds and caches, so every
sweep doubles as a theorem audit.
"""

from repro.props.checkers import (
    BoundednessMonitor,
    BoundednessVerdict,
    LeadershipVerdict,
    SingleWriterMonitor,
    SingleWriterVerdict,
    StabilizationMonitor,
    WriteOptimalityMonitor,
    WriteOptimalityVerdict,
    progress_register,
)
from repro.props.claims import (
    ASSUMPTION_ORDER,
    THEOREM_NAMES,
    assumption_covers,
    expected_theorems,
)
from repro.props.report import PropertyReport, TheoremVerdict, check_properties

__all__ = [
    "ASSUMPTION_ORDER",
    "BoundednessMonitor",
    "BoundednessVerdict",
    "LeadershipVerdict",
    "PropertyReport",
    "SingleWriterMonitor",
    "SingleWriterVerdict",
    "StabilizationMonitor",
    "THEOREM_NAMES",
    "TheoremVerdict",
    "WriteOptimalityMonitor",
    "WriteOptimalityVerdict",
    "assumption_covers",
    "check_properties",
    "expected_theorems",
    "progress_register",
]
