"""Online monitors for Theorems 1-4.

Each monitor consumes a run's events incrementally -- observer leader
samples, shared-memory writes, crash notifications -- and produces a
*measured* verdict at ``finish()``.  They keep O(n + registers) state,
never the full trace, so they can run inside a live simulation as well
as over a replayed :class:`~repro.core.runner.RunResult` (the path
:func:`repro.props.report.check_properties` takes).

All verdicts are empirical: "eventually P" on a finite trace means "P
held over the instrumented tail of the horizon".  Scenarios choose
horizons generously above their stabilization knobs so a failed tail is
evidence, not noise (same convention as
:func:`repro.analysis.omega_props.check_eventual_leadership`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


def progress_register(leader: int) -> str:
    """The one register Theorems 2/3 exempt: the leader's ``PROGRESS``
    entry (``PROGRESS[ell]`` in the paper, ``PROGRESS[<ell>]`` in the
    shared-memory namespace)."""
    return f"PROGRESS[{leader}]"


# ----------------------------------------------------------------------
# Theorem 1 -- eventual common correct leader, with churn accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeadershipVerdict:
    """Measured Theorem 1 outcome."""

    holds: bool
    #: Common final leader of the correct processes (also set when the
    #: verdict fails for a reason other than disagreement).
    leader: Optional[int]
    #: Time the last correct process settled on the final value.
    settle_time: Optional[float]
    #: Leader-output changes by correct processes (the churn the run
    #: went through before -- or without -- settling).
    churn: int
    #: ... by every process, including ones that later crashed.
    churn_all: int
    #: Distinct leader values ever output by correct processes.
    leaders_seen: int
    detail: str = ""


class StabilizationMonitor:
    """Theorem 1: after some finite time every correct process's
    ``leader()`` output is one common correct identity.

    ``margin`` demands the common value held for at least that much
    virtual time before the horizon (a value appearing only at the last
    sample is not "eventual").  Crash accounting: output churn by a
    process that later crashes never counts against the verdict; only
    never-crashed processes must agree.
    """

    def __init__(self, horizon: float, margin: float = 0.0) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.margin = margin
        self._crashed: Set[int] = set()
        self._last: Dict[int, int] = {}
        self._streak_start: Dict[int, float] = {}
        self._changes: Dict[int, int] = {}
        self._values_seen: Dict[int, Set[int]] = {}

    def observe_crash(self, time: float, pid: int) -> None:
        """Note a crash: the pid's samples stop counting for the verdict."""
        self._crashed.add(pid)

    def observe_sample(self, time: float, pid: int, leader: int) -> None:
        """Feed one sampled ``leader()`` output; tracks streaks and churn."""
        if pid not in self._last:
            self._last[pid] = leader
            self._streak_start[pid] = time
            self._changes[pid] = 0
            self._values_seen[pid] = {leader}
            return
        self._values_seen[pid].add(leader)
        if leader != self._last[pid]:
            self._last[pid] = leader
            self._streak_start[pid] = time
            self._changes[pid] += 1

    def finish(self) -> LeadershipVerdict:
        """Fold the samples into the Theorem 1 verdict."""
        correct = [pid for pid in self._last if pid not in self._crashed]
        churn_all = sum(self._changes.values())
        if not correct:
            return LeadershipVerdict(
                False, None, None, 0, churn_all, 0,
                detail="no samples from any correct process",
            )
        churn = sum(self._changes[pid] for pid in correct)
        leaders_seen = len(set().union(*(self._values_seen[pid] for pid in correct)))
        finals = {self._last[pid] for pid in correct}
        if len(finals) != 1:
            return LeadershipVerdict(
                False, None, None, churn, churn_all, leaders_seen,
                detail=f"correct processes disagree: final outputs {sorted(finals)}",
            )
        leader = min(finals)
        settle = max(self._streak_start[pid] for pid in correct)
        if leader in self._crashed:
            return LeadershipVerdict(
                False, leader, None, churn, churn_all, leaders_seen,
                detail=f"common output p{leader} is a crashed process",
            )
        if settle + self.margin >= self.horizon:
            return LeadershipVerdict(
                False, leader, None, churn, churn_all, leaders_seen,
                detail=(
                    f"p{leader} common only from t={settle:.0f}, inside the "
                    f"margin ({self.margin:.0f}) of the horizon"
                ),
            )
        return LeadershipVerdict(
            True, leader, settle, churn, churn_all, leaders_seen,
            detail=f"p{leader} from t={settle:.0f} after {churn} output change(s)",
        )


# ----------------------------------------------------------------------
# Theorem 2 -- every shared variable except PROGRESS[ell] bounded
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundednessVerdict:
    """Measured Theorem 2 outcome."""

    holds: bool
    #: Registers whose numeric maximum was still increasing in the tail.
    growing: Tuple[str, ...]
    #: The subset of ``growing`` the theorem does *not* allow.
    offending: Tuple[str, ...]
    detail: str = ""


class BoundednessMonitor:
    """Theorem 2: per-register growth monitor.

    The theorem quantifies "after some time": growth is judged over an
    end suffix of the run -- the final ``tail_fraction``, pushed later
    to the election's settle point when ``finish`` receives one (a run
    that stabilized late is only accountable for growth *after*
    stabilizing; before it, several candidates legitimately advance
    their own ``PROGRESS`` entries while contending).

    A register is *still growing* when at least ``min_records`` writes
    in that suffix each strictly exceeded every value written before
    them.  One record-setter is not growth: a bounded-but-slowly
    settling counter (e.g. a rare late false suspicion whose next
    occurrence is another timeout-doubling away) legitimately sets a
    last record inside any finite suffix, while a genuinely unbounded
    register (``PROGRESS[ell]``) sets records with every write, so the
    threshold separates the populations cleanly.  Non-numeric values
    (the booleans of Algorithm 2's hand-shake) never grow.

    State stays bounded by the *tail's* record-setting writes: earlier
    records only update the running maxima.
    """

    def __init__(
        self,
        horizon: float,
        tail_fraction: float = 0.25,
        min_records: int = 2,
    ) -> None:
        if not 0 < tail_fraction < 1:
            raise ValueError("tail_fraction must be in (0, 1)")
        if min_records < 1:
            raise ValueError("min_records must be >= 1")
        self.horizon = horizon
        self.tail_start = horizon * (1.0 - tail_fraction)
        self.min_records = min_records
        self._max: Dict[str, float] = {}
        self._tail_record_times: Dict[str, List[float]] = {}

    def observe_write(self, time: float, pid: int, register: str, value: object) -> None:
        """Feed one write; records when a register sets a new numeric max."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        v = float(value)
        if register not in self._max or v > self._max[register]:
            self._max[register] = v
            if time >= self.tail_start:
                self._tail_record_times.setdefault(register, []).append(time)

    def growing_registers(self, since: Optional[float] = None) -> Tuple[str, ...]:
        """Registers with >= ``min_records`` record-setting writes in
        ``[max(tail_start, since), horizon]``."""
        start = self.tail_start if since is None else max(self.tail_start, since)
        return tuple(
            sorted(
                name
                for name, times in self._tail_record_times.items()
                if sum(1 for t in times if t >= start) >= self.min_records
            )
        )

    def finish(
        self,
        leader: Optional[int] = None,
        settle_time: Optional[float] = None,
    ) -> BoundednessVerdict:
        """Fold the record-setting writes into the Theorem 2 verdict."""
        growing = self.growing_registers(since=settle_time)
        allowed = {progress_register(leader)} if leader is not None else set()
        offending = tuple(name for name in growing if name not in allowed)
        holds = not offending
        if holds:
            detail = (
                "all shared variables bounded"
                if not growing
                else f"only {growing[0]} grows (the leader's PROGRESS entry)"
            )
        else:
            detail = f"still growing beyond PROGRESS[ell]: {', '.join(offending)}"
        return BoundednessVerdict(holds, growing, offending, detail)


# ----------------------------------------------------------------------
# Theorem 3 -- eventually a single writer of a single variable
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SingleWriterVerdict:
    """Measured Theorem 3 outcome."""

    holds: bool
    #: Pids that wrote during the final ``tail`` time units.
    tail_writers: Tuple[int, ...]
    #: Register names written during that tail.
    tail_registers: Tuple[str, ...]
    #: Last write by any process other than the leader (the point after
    #: which a single process writes); ``None`` without a leader.
    switch_time: Optional[float]
    detail: str = ""


class SingleWriterMonitor:
    """Theorem 3: eventually only the leader writes, always the same
    variable (``PROGRESS[ell]``)."""

    def __init__(self, horizon: float, tail: float = 100.0) -> None:
        if not 0 < tail <= horizon:
            raise ValueError("need 0 < tail <= horizon")
        self.horizon = horizon
        self.tail_start = horizon - tail
        self._last_by_pid: Dict[int, float] = {}
        self._last_by_register: Dict[str, float] = {}

    def observe_write(self, time: float, pid: int, register: str, value: object) -> None:
        """Feed one write; keeps last-write times per pid and register."""
        self._last_by_pid[pid] = max(time, self._last_by_pid.get(pid, time))
        self._last_by_register[register] = max(
            time, self._last_by_register.get(register, time)
        )

    def finish(self, leader: Optional[int] = None) -> SingleWriterVerdict:
        """Fold the tail writers/registers into the Theorem 3 verdict."""
        writers = tuple(
            sorted(p for p, t in self._last_by_pid.items() if t >= self.tail_start)
        )
        registers = tuple(
            sorted(r for r, t in self._last_by_register.items() if t >= self.tail_start)
        )
        switch = None
        if leader is not None:
            others = [t for p, t in self._last_by_pid.items() if p != leader]
            switch = max(others) if others else 0.0
        holds = (
            leader is not None
            and writers == (leader,)
            and registers == (progress_register(leader),)
        )
        if holds:
            detail = f"only p{leader} writes {registers[0]} after t={switch:.0f}"
        else:
            detail = (
                f"tail writers {list(writers)} on registers {list(registers)}"
                + ("" if leader is not None else " (no stable leader)")
            )
        return SingleWriterVerdict(holds, writers, registers, switch, detail)


# ----------------------------------------------------------------------
# Theorem 4 -- write-optimality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WriteOptimalityVerdict:
    """Measured Theorem 4 outcome."""

    holds: bool
    #: Pids that wrote in every one of the tail windows.
    forever_writers: Tuple[int, ...]
    #: The lower bound the paper proves: some process must write forever.
    optimum: int
    #: Total writes per pid over the whole run (the counter the
    #: write-optimality comparison tables consume).
    writes_by_pid: Dict[int, int] = field(default_factory=dict)
    detail: str = ""


class WriteOptimalityMonitor:
    """Theorem 4: the forever-writer count meets the proven lower bound.

    The paper's lower bound says *at least one* process must keep
    writing forever; Algorithm 1 achieves exactly one (the leader), so
    the measured property is ``forever_writers == {ell}``.  "Forever"
    on a finite trace means "in every one of the last ``count`` windows
    of width ``window``" (same convention as
    :func:`repro.analysis.write_stats.forever_writers`).
    """

    def __init__(self, horizon: float, window: float = 100.0, count: int = 4) -> None:
        if window <= 0 or count <= 0:
            raise ValueError("window and count must be positive")
        start = max(0.0, horizon - window * count)
        self._start = start
        self._width = window
        self._count = count
        self._windows: List[Tuple[float, float]] = [
            (start + i * window, start + (i + 1) * window) for i in range(count)
        ]
        self._writers: List[Set[int]] = [set() for _ in range(count)]
        self._writes_by_pid: Dict[int, int] = {}

    def observe_write(self, time: float, pid: int, register: str, value: object) -> None:
        """Feed one write into its O(1)-indexed census window."""
        writes = self._writes_by_pid
        writes[pid] = writes.get(pid, 0) + 1
        if time < self._start:
            return
        # O(1) windowing: windows are contiguous and equal-width, so the
        # index is arithmetic -- but the boundaries computed by the old
        # per-window scan were sums (`start + i*width`), and float
        # division can disagree with them at the edges.  Snap to the
        # scan's half-open [t0, t1) semantics (last window closed at the
        # horizon) by checking the computed window's bounds.
        idx = int((time - self._start) / self._width)
        if idx >= self._count:
            idx = self._count - 1
        t0, t1 = self._windows[idx]
        if time < t0:
            idx -= 1
        elif time >= t1 and idx < self._count - 1:
            idx += 1
        if 0 <= idx < self._count:
            t0, t1 = self._windows[idx]
            if t0 <= time < t1 or (idx == self._count - 1 and time == t1):
                self._writers[idx].add(pid)

    def forever_writers(self) -> Tuple[int, ...]:
        """Pids that wrote in every census window."""
        result = set(self._writers[0])
        for writers in self._writers[1:]:
            result &= writers
        return tuple(sorted(result))

    def finish(self, leader: Optional[int] = None) -> WriteOptimalityVerdict:
        """Fold the windowed census into the Theorem 4 verdict."""
        forever = self.forever_writers()
        if leader is not None:
            holds = forever == (leader,)
        else:
            holds = len(forever) == 1
        if holds:
            detail = f"exactly one forever-writer (p{forever[0]}): write-optimal"
        else:
            detail = f"forever-writers {list(forever)}; the optimum is 1"
        return WriteOptimalityVerdict(
            holds, forever, 1, dict(self._writes_by_pid), detail
        )


__all__ = [
    "BoundednessMonitor",
    "BoundednessVerdict",
    "LeadershipVerdict",
    "SingleWriterMonitor",
    "SingleWriterVerdict",
    "StabilizationMonitor",
    "WriteOptimalityMonitor",
    "WriteOptimalityVerdict",
    "progress_register",
]
