"""The Omega specification, checked on observer samples.

The oracle must satisfy (paper Section 2.2):

* **Validity** -- every ``leader()`` returns a process identity;
* **Eventual Leadership** -- there is a finite time and a correct
  ``p_l`` such that afterwards every invocation returns ``l``;
* **Termination** -- invocations by correct processes terminate.

Eventual Leadership refers to a global time the processes cannot see;
the harness *can* see it, so the property becomes a concrete statement
about the tail of the sampled outputs.  Termination is structural in a
simulator (no blocking primitives), so we check its witness instead:
every correct process completed invocations, each within the a-priori
op bound of ``n^2`` reads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.interfaces import OmegaAlgorithm
from repro.sim.crash import CrashPlan
from repro.sim.tracing import RunTrace


@dataclass
class StabilizationReport:
    """Eventual-leadership verdict for one run."""

    stabilized: bool
    #: Earliest sample time from which every correct process's output is
    #: the common final value (None when not stabilized).
    time: Optional[float]
    #: The common final leader, if any.
    leader: Optional[int]
    #: Whether that leader is a correct process.
    leader_correct: bool
    #: Last time each correct process's sampled output changed.
    last_change_by_pid: Dict[int, float] = field(default_factory=dict)
    #: Final sampled output per correct process.
    final_by_pid: Dict[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:  # truthiness == the verdict
        return self.stabilized


def check_validity(trace: RunTrace, n: int) -> bool:
    """Every sampled ``leader()`` output is a process identity."""
    return all(0 <= leader < n for _, _, leader in trace.leader_samples())


def check_eventual_leadership(
    trace: RunTrace,
    crash_plan: CrashPlan,
    horizon: float,
    margin: float = 0.0,
) -> StabilizationReport:
    """Decide Eventual Leadership from the sampled outputs.

    The verdict is *empirical*: stabilization must be visible within the
    horizon.  A run that would stabilize later is reported as not
    stabilized -- benches choose horizons generously above the
    scenario's stabilization knobs.

    ``margin`` demands the common output held for at least that much
    virtual time before the horizon; even with the default ``0.0`` a
    common value appearing only at the very last sample does not count.
    """
    by_pid: Dict[int, List[tuple[float, int]]] = {}
    for t, pid, leader in trace.leader_samples():
        if crash_plan.is_correct(pid):
            by_pid.setdefault(pid, []).append((t, leader))

    if not by_pid or any(not samples for samples in by_pid.values()):
        return StabilizationReport(False, None, None, False)

    final_by_pid = {pid: samples[-1][1] for pid, samples in by_pid.items()}
    last_change: Dict[int, float] = {}
    settle_time: Dict[int, float] = {}
    for pid, samples in by_pid.items():
        final = final_by_pid[pid]
        change = 0.0
        settle = samples[0][0]
        for idx, (t, leader) in enumerate(samples):
            if leader != final:
                change = t
                settle = samples[idx + 1][0] if idx + 1 < len(samples) else math.inf
        last_change[pid] = change
        settle_time[pid] = settle

    common = set(final_by_pid.values())
    leader = min(common) if len(common) == 1 else None
    leader_correct = leader is not None and crash_plan.is_correct(leader)
    stabilized = leader is not None and leader_correct
    time = max(settle_time.values()) if stabilized else None
    if time is not None and (not math.isfinite(time) or time + margin >= horizon):
        stabilized, time = False, None
    return StabilizationReport(
        stabilized=stabilized,
        time=time,
        leader=leader if stabilized else leader,
        leader_correct=leader_correct,
        last_change_by_pid=last_change,
        final_by_pid=final_by_pid,
    )


@dataclass
class TerminationReport:
    """Structural witness of the Termination property."""

    ok: bool
    invocations_by_pid: Dict[int, int]
    max_ops_by_pid: Dict[int, int]
    bound: int


def check_termination(
    algorithms: Sequence[OmegaAlgorithm],
    crash_plan: CrashPlan,
) -> TerminationReport:
    """Check every correct process completed ``leader()`` invocations,
    each within the ``n^2`` read bound."""
    n = len(algorithms)
    bound = n * n
    invocations = {alg.pid: alg.leader_invocations for alg in algorithms}
    max_ops = {alg.pid: alg.max_leader_ops for alg in algorithms}
    ok = all(
        invocations[pid] > 0 and max_ops[pid] <= bound
        for pid in range(n)
        if crash_plan.is_correct(pid)
    )
    return TerminationReport(ok=ok, invocations_by_pid=invocations, max_ops_by_pid=max_ops, bound=bound)


__all__ = [
    "StabilizationReport",
    "TerminationReport",
    "check_eventual_leadership",
    "check_termination",
    "check_validity",
]
