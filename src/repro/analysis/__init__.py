"""Measurement and verification of the paper's properties on run traces.

* :mod:`~repro.analysis.omega_props` -- the Omega specification
  (Validity, Eventual Leadership, Termination) checked on observer
  samples;
* :mod:`~repro.analysis.write_stats` -- forever-writer / forever-reader
  censuses, single-writer stabilization points, and boundedness verdicts
  (Theorems 2, 3, 6, 7 and Lemmas 5, 6);
* :mod:`~repro.analysis.lowerbound` -- the Theorem 5 ingredients:
  bounded-state recurrence detection and the writer census the theorem
  predicts;
* :mod:`~repro.analysis.report` -- plain-text tables and series for
  benches and EXPERIMENTS.md.
"""

from repro.analysis.omega_props import (
    StabilizationReport,
    check_eventual_leadership,
    check_termination,
    check_validity,
)
from repro.analysis.suspicion import (
    cumulative_suspicions,
    suspicion_quiescence,
)
from repro.analysis.timeline import TimelineReport, build_timeline, render_timeline
from repro.analysis.write_stats import (
    BoundednessVerdict,
    boundedness,
    forever_readers,
    forever_writers,
    single_writer_point,
    tail_written_registers,
)

__all__ = [
    "BoundednessVerdict",
    "StabilizationReport",
    "TimelineReport",
    "boundedness",
    "build_timeline",
    "check_eventual_leadership",
    "check_termination",
    "check_validity",
    "cumulative_suspicions",
    "forever_readers",
    "forever_writers",
    "render_timeline",
    "single_writer_point",
    "suspicion_quiescence",
    "tail_written_registers",
]
