"""Access-pattern analysis: who writes/reads forever, what stays bounded.

"Forever" on a finite trace means: *in every one of the last K windows*
of the run.  With the horizons the benches use (many multiples of the
stabilization time), a process that is supposed to stop writing has
stopped long before the tail windows, and a process that must write
forever writes in every window -- so the census separates the two
populations cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.memory.memory import SharedMemory


def _tail_windows(horizon: float, window: float, count: int) -> List[Tuple[float, float]]:
    """The last ``count`` windows of ``[0, horizon]``, oldest first."""
    if window <= 0 or count <= 0:
        raise ValueError("window and count must be positive")
    start = horizon - window * count
    if start < 0:
        raise ValueError("horizon too short for the requested windows")
    return [(start + i * window, start + (i + 1) * window) for i in range(count)]


def forever_writers(
    memory: SharedMemory,
    horizon: float,
    window: float = 100.0,
    count: int = 4,
) -> FrozenSet[int]:
    """Pids that wrote in *every* one of the last ``count`` windows.

    Theorem 3 predicts this is exactly ``{ell}`` for Algorithm 1;
    Corollary 1 predicts it is the full correct set for any
    bounded-memory algorithm (Algorithm 2, the baseline).
    """
    windows = _tail_windows(horizon, window, count)
    sets = [memory.writers_in(t0, t1) for t0, t1 in windows]
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return result


def forever_readers(
    memory: SharedMemory,
    horizon: float,
    window: float = 100.0,
    count: int = 4,
) -> FrozenSet[int]:
    """Pids that read in *every* one of the last ``count`` windows
    (Lemma 6: all correct processes except possibly nobody -- even the
    leader keeps reading in both algorithms)."""
    windows = _tail_windows(horizon, window, count)
    sets = [memory.readers_in(t0, t1) for t0, t1 in windows]
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return result


def tail_written_registers(
    memory: SharedMemory,
    horizon: float,
    tail: float = 200.0,
) -> FrozenSet[str]:
    """Register names still being written in the last ``tail`` time units
    (Theorem 3: one register; Theorem 7: the ``PROGRESS[ell][i]`` /
    ``LAST[ell][i]`` hand-shake pairs)."""
    return memory.registers_written_in(horizon - tail, horizon)


@dataclass
class SingleWriterPoint:
    """Theorem 3's stabilization point: when the writer set became a
    singleton."""

    reached: bool
    #: The sole remaining writer, when reached.
    writer: Optional[int]
    #: Latest write time of any *other* process -- after this instant a
    #: single process writes.
    time: Optional[float]


def single_writer_point(memory: SharedMemory, horizon: float, tail: float = 100.0) -> SingleWriterPoint:
    """Detect the time after which exactly one process writes."""
    tail_writers = memory.writers_in(horizon - tail, horizon)
    if len(tail_writers) != 1:
        return SingleWriterPoint(False, None, None)
    writer = min(tail_writers)
    others_last = [
        t for pid, t in memory.last_write_time_by_pid.items() if pid != writer
    ]
    return SingleWriterPoint(True, writer, max(others_last) if others_last else 0.0)


@dataclass
class BoundednessVerdict:
    """Growth verdict for one register over a run."""

    register: str
    writes: int
    #: Largest numeric value ever written (None for non-numeric).
    max_value: Optional[float]
    #: Number of distinct values ever written.
    distinct_values: int
    #: Whether the register's numeric maximum was still increasing in
    #: the tail of the run -- the empirical signature of "unbounded".
    still_growing: bool
    last_write_time: float


def boundedness(
    memory: SharedMemory,
    horizon: float,
    tail_fraction: float = 0.25,
) -> Dict[str, BoundednessVerdict]:
    """Per-register growth verdicts.

    A register is *still growing* when a write in the final
    ``tail_fraction`` of the run strictly exceeded every value written
    before the tail.  Theorem 2 predicts a single still-growing register
    for Algorithm 1 (``PROGRESS[ell]``); Theorem 6 predicts none for
    Algorithm 2.
    """
    if not 0 < tail_fraction < 1:
        raise ValueError("tail_fraction must be in (0, 1)")
    tail_start = horizon * (1.0 - tail_fraction)
    pre_max: Dict[str, float] = {}
    tail_max: Dict[str, float] = {}
    writes: Dict[str, int] = {}
    distinct: Dict[str, Set] = {}
    last_time: Dict[str, float] = {}
    overall_max: Dict[str, Optional[float]] = {}

    for rec in memory.write_log:
        name = rec.register
        writes[name] = writes.get(name, 0) + 1
        distinct.setdefault(name, set()).add(rec.value)
        last_time[name] = rec.time
        numeric = isinstance(rec.value, (int, float)) and not isinstance(rec.value, bool)
        if numeric:
            v = float(rec.value)
            prev = overall_max.get(name)
            overall_max[name] = v if prev is None or v > prev else prev
            bucket = tail_max if rec.time >= tail_start else pre_max
            if name not in bucket or v > bucket[name]:
                bucket[name] = v
        else:
            overall_max.setdefault(name, None)

    verdicts: Dict[str, BoundednessVerdict] = {}
    for name in writes:
        growing = name in tail_max and tail_max[name] > pre_max.get(name, float("-inf"))
        verdicts[name] = BoundednessVerdict(
            register=name,
            writes=writes[name],
            max_value=overall_max.get(name),
            distinct_values=len(distinct[name]),
            still_growing=growing,
            last_write_time=last_time[name],
        )
    return verdicts


def growing_registers(memory: SharedMemory, horizon: float, tail_fraction: float = 0.25) -> FrozenSet[str]:
    """Names of registers still growing at the end of the run."""
    return frozenset(
        name
        for name, verdict in boundedness(memory, horizon, tail_fraction).items()
        if verdict.still_growing
    )


__all__ = [
    "BoundednessVerdict",
    "SingleWriterPoint",
    "boundedness",
    "forever_readers",
    "forever_writers",
    "growing_registers",
    "single_writer_point",
    "tail_written_registers",
]
