"""Leadership timelines and anarchy metrics.

The paper is explicit that "several leaders can coexist during an
arbitrarily long period of time, and there is no way for the processes
to learn when this anarchy period is over".  This module quantifies
that period on a run trace:

* the per-process sequence of *leadership intervals* (who each process
  followed, when);
* the *anarchy intervals* -- sample instants where live processes
  disagree on the leader;
* churn counters -- how many times each process changed its mind.

Used by the examples, the ablation benches, and as a debugging lens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.crash import CrashPlan
from repro.sim.tracing import RunTrace


@dataclass(frozen=True, slots=True)
class LeadershipInterval:
    """One maximal span during which a process followed one leader."""

    pid: int
    leader: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the span."""
        return self.end - self.start


@dataclass
class TimelineReport:
    """Leadership structure of one run."""

    #: Per-pid leadership intervals, in time order.
    intervals_by_pid: Dict[int, List[LeadershipInterval]] = field(default_factory=dict)
    #: Sample instants at which live correct processes disagreed.
    anarchy_times: List[float] = field(default_factory=list)
    #: Maximal [start, end] spans of consecutive disagreeing samples.
    anarchy_intervals: List[Tuple[float, float]] = field(default_factory=list)
    #: Number of leader changes each process went through.
    changes_by_pid: Dict[int, int] = field(default_factory=dict)

    @property
    def total_anarchy(self) -> float:
        """Total duration of the anarchy intervals."""
        return sum(end - start for start, end in self.anarchy_intervals)

    @property
    def last_anarchy_end(self) -> float:
        """End of the final anarchy interval (``-inf`` when none)."""
        if not self.anarchy_intervals:
            return float("-inf")
        return self.anarchy_intervals[-1][1]

    @property
    def total_changes(self) -> int:
        """Leader changes summed over all processes (churn)."""
        return sum(self.changes_by_pid.values())


def build_timeline(trace: RunTrace, crash_plan: Optional[CrashPlan] = None) -> TimelineReport:
    """Extract the leadership timeline from observer samples.

    When ``crash_plan`` is given, anarchy is evaluated over *correct*
    processes only (a faulty process's pre-crash opinion does not count
    against agreement, matching the Eventual Leadership definition).
    """
    report = TimelineReport()
    by_pid = trace.leader_samples_by_pid()

    for pid, samples in sorted(by_pid.items()):
        intervals: List[LeadershipInterval] = []
        changes = 0
        cur_leader: Optional[int] = None
        cur_start = 0.0
        last_t = 0.0
        for t, leader in samples:
            if cur_leader is None:
                cur_leader, cur_start = leader, t
            elif leader != cur_leader:
                intervals.append(LeadershipInterval(pid, cur_leader, cur_start, t))
                changes += 1
                cur_leader, cur_start = leader, t
            last_t = t
        if cur_leader is not None:
            intervals.append(LeadershipInterval(pid, cur_leader, cur_start, last_t))
        report.intervals_by_pid[pid] = intervals
        report.changes_by_pid[pid] = changes

    # Anarchy: group samples by time, compare live (correct) opinions.
    opinions: Dict[float, Dict[int, int]] = {}
    for t, pid, leader in trace.leader_samples():
        if crash_plan is not None and not crash_plan.is_correct(pid):
            continue
        opinions.setdefault(t, {})[pid] = leader
    anarchy_flags: List[Tuple[float, bool]] = []
    for t in sorted(opinions):
        values = set(opinions[t].values())
        anarchy_flags.append((t, len(values) > 1))

    report.anarchy_times = [t for t, bad in anarchy_flags if bad]
    start: Optional[float] = None
    prev_t: Optional[float] = None
    for t, bad in anarchy_flags:
        if bad and start is None:
            start = t
        elif not bad and start is not None:
            assert prev_t is not None
            report.anarchy_intervals.append((start, prev_t))
            start = None
        prev_t = t
    if start is not None and prev_t is not None:
        report.anarchy_intervals.append((start, prev_t))
    return report


def render_timeline(report: TimelineReport, width: int = 60) -> str:
    """ASCII rendering: one lane per process, a letter per leader.

    >>> # lanes look like: p0 |000011111111...|
    """
    if not report.intervals_by_pid:
        return "(no samples)"
    t_min = min(iv.start for ivs in report.intervals_by_pid.values() for iv in ivs)
    t_max = max(iv.end for ivs in report.intervals_by_pid.values() for iv in ivs)
    span = max(t_max - t_min, 1e-9)
    lines = []
    for pid, intervals in sorted(report.intervals_by_pid.items()):
        lane = ["."] * width
        for iv in intervals:
            a = int((iv.start - t_min) / span * (width - 1))
            b = int((iv.end - t_min) / span * (width - 1))
            glyph = str(iv.leader % 10)
            for idx in range(a, b + 1):
                lane[idx] = glyph
        lines.append(f"p{pid} |{''.join(lane)}|")
    lines.append(f"    t={t_min:.0f} .. {t_max:.0f}; digit = followed leader, '.' = crashed/no sample")
    return "\n".join(lines)


__all__ = ["LeadershipInterval", "TimelineReport", "build_timeline", "render_timeline"]
