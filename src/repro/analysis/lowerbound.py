"""Theorem 5 ingredients: bounded memory forces everybody to write.

The paper's proof constructs runs in which, were fewer than ``t + 1``
processes writing forever, the bounded shared memory would revisit the
same global state ``S`` infinitely often; stalling the remaining
(asynchronous) processes so that all their reads land in state ``S``
makes the run indistinguishable from one where the writers crashed --
contradiction.

Empirically we exhibit the two ingredients and the predicted outcome:

1. **State recurrence** -- under a bounded-memory algorithm the global
   shared state (projected on registers, which are all bounded) recurs;
   under Algorithm 1 the growing ``PROGRESS[ell]`` makes every snapshot
   distinct.  :func:`state_recurrence` measures this on the snapshots a
   run records.
2. **Writer census** -- bounded-memory algorithms keep *all* correct
   processes writing forever; Algorithm 1 converges to a single writer.
   (:func:`repro.analysis.write_stats.forever_writers`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.write_stats import forever_writers
from repro.core.runner import RunResult

Snapshot = Tuple[Tuple[str, Any], ...]


@dataclass
class RecurrenceReport:
    """State-recurrence statistics over a run's snapshots."""

    snapshots: int
    distinct_states: int
    #: Largest number of times any single state was observed.
    max_recurrence: int
    #: True when some state was seen at least twice after the first
    #: quarter of the run (the pigeonhole signature of bounded memory).
    recurrent: bool


def state_recurrence(
    snapshots: Sequence[Tuple[float, Snapshot]],
    settle_fraction: float = 0.25,
    horizon: Optional[float] = None,
) -> RecurrenceReport:
    """Measure recurrence of global shared-memory states.

    Snapshots taken before ``settle_fraction`` of the horizon are
    ignored so start-up churn (suspicion counters still moving) does not
    mask the steady state.
    """
    if not snapshots:
        return RecurrenceReport(0, 0, 0, False)
    end = horizon if horizon is not None else snapshots[-1][0]
    cutoff = end * settle_fraction
    counts: Dict[Snapshot, int] = {}
    considered = 0
    for t, snap in snapshots:
        if t < cutoff:
            continue
        considered += 1
        counts[snap] = counts.get(snap, 0) + 1
    if not counts:
        return RecurrenceReport(0, 0, 0, False)
    max_rec = max(counts.values())
    return RecurrenceReport(
        snapshots=considered,
        distinct_states=len(counts),
        max_recurrence=max_rec,
        recurrent=max_rec >= 2,
    )


@dataclass
class Theorem5Row:
    """One row of the Theorem 5 census table."""

    algorithm: str
    bounded_memory: bool
    correct: FrozenSet[int]
    forever_writers: FrozenSet[int]
    all_correct_write_forever: bool
    recurrence: RecurrenceReport


def theorem5_census(
    result: RunResult,
    bounded_memory: bool,
    window: float = 100.0,
    count: int = 4,
) -> Theorem5Row:
    """Build the census row Theorem 5 / Corollary 1 predicts.

    For a bounded-memory algorithm the correct set should equal the
    forever-writer set and states should recur; for Algorithm 1 the
    forever-writer set should be the singleton leader and states should
    not recur.
    """
    writers = forever_writers(result.memory, result.horizon, window=window, count=count)
    correct = result.crash_plan.correct
    recurrence = state_recurrence(result.snapshots, horizon=result.horizon)
    return Theorem5Row(
        algorithm=result.algorithm_name,
        bounded_memory=bounded_memory,
        correct=correct,
        forever_writers=writers,
        all_correct_write_forever=correct <= writers,
        recurrence=recurrence,
    )


__all__ = ["RecurrenceReport", "Theorem5Row", "state_recurrence", "theorem5_census"]
