"""Plain-text tables and series for benches and EXPERIMENTS.md.

No plotting dependency is available offline, so "figures" are rendered
as aligned text tables and unicode sparklines -- enough to read off the
*shape* the paper's claims are about.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned, pipe-separated table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row arity does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        return f"{cell:.2f}"
    if isinstance(cell, frozenset) or isinstance(cell, set):
        return "{" + ",".join(str(x) for x in sorted(cell)) + "}"
    return str(cell)


#: Table headers of :func:`format_property_table`.
PROPERTY_HEADERS = [
    "algorithm",
    "scenario",
    "seed",
    "T1 leadership",
    "T2 bounded",
    "T3 single-writer",
    "T4 write-optimal",
    "violations",
]


def _verdict_mark(verdict: Any) -> str:
    """One table cell per theorem verdict.

    ``ok`` / ``VIOLATED`` for claimed theorems; a parenthesized measured
    outcome for theorems the algorithm does not claim under the
    scenario's declared assumption (informational, never a violation).
    """
    if verdict.expected:
        return "ok" if verdict.holds else "VIOLATED"
    return "(yes)" if verdict.holds else "(no)"


def format_property_table(rows: Iterable[Any]) -> str:
    """The theorem-audit table over engine rows.

    ``rows`` are :class:`~repro.engine.summary.RunSummary` instances;
    rows whose cached summary predates the property checkers render
    ``?`` marks.
    """
    table: List[List[Any]] = []
    for row in rows:
        report = getattr(row, "properties", None)
        if report is None:
            marks = ["?"] * 4
            violations: Any = "?"
        else:
            marks = [_verdict_mark(report.verdict(t)) for t in (1, 2, 3, 4)]
            violations = len(report.violations())
        table.append([row.algorithm, row.scenario, row.seed, *marks, violations])
    return format_table(PROPERTY_HEADERS, table)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a numeric series (empty-safe)."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if not math.isfinite(v):
            chars.append("?")
            continue
        idx = 0 if span == 0 else int((v - lo) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[idx])
    return "".join(chars)


def format_series(label: str, xs: Sequence[float], ys: Sequence[float], width: int = 64) -> str:
    """A labelled, downsampled sparkline with range annotations."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return f"{label}: (empty)"
    step = max(1, len(ys) // width)
    sampled = [ys[i] for i in range(0, len(ys), step)]
    finite = [v for v in sampled if math.isfinite(v)]
    lo = min(finite) if finite else float("nan")
    hi = max(finite) if finite else float("nan")
    return (
        f"{label}: {sparkline(sampled)}  "
        f"[x: {xs[0]:.0f}..{xs[-1]:.0f}, y: {lo:.2f}..{hi:.2f}]"
    )


__all__ = [
    "PROPERTY_HEADERS",
    "format_property_table",
    "format_series",
    "format_table",
    "sparkline",
]
