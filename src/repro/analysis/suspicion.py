"""Suspicion dynamics: the observable core of Lemma 2.

The convergence mechanism of both algorithms is entirely visible in the
``SUSPICIONS`` write stream: false suspicions accumulate (raising
timeouts) until timers out-wait the leader's write period, after which
the stream goes quiet.  These helpers extract that signal for the
chaos/ablation experiments and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memory.memory import SharedMemory


def suspicion_writes(memory: SharedMemory) -> List[Tuple[float, int, str]]:
    """All ``(time, suspecting pid, register)`` suspicion writes."""
    return [
        (rec.time, rec.pid, rec.register)
        for rec in memory.write_log
        if rec.register.startswith("SUSPICIONS")
    ]


def cumulative_suspicions(
    memory: SharedMemory,
    horizon: float,
    bucket: float = 250.0,
) -> Tuple[List[float], List[float]]:
    """Cumulative suspicion-write counts sampled every ``bucket``.

    The series a healthy AWB run produces rises and then flattens; a
    run with AWB2 violated keeps rising (see the chaos example and the
    negative-scenario tests).
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    times = sorted(t for t, _, _ in suspicion_writes(memory))
    xs: List[float] = []
    ys: List[float] = []
    count = 0
    idx = 0
    t = 0.0
    while t <= horizon:
        while idx < len(times) and times[idx] < t:
            count += 1
            idx += 1
        xs.append(t)
        ys.append(float(count))
        t += bucket
    return xs, ys


@dataclass(frozen=True, slots=True)
class SuspicionQuiescence:
    """When (and whether) the suspicion stream went quiet."""

    total: int
    #: Time of the last suspicion write (None when there was none).
    last_write: Optional[float]
    #: True when no suspicion write landed in the final ``tail`` units.
    quiesced: bool


def suspicion_quiescence(
    memory: SharedMemory,
    horizon: float,
    tail: float = 0.2,
) -> SuspicionQuiescence:
    """Quiescence verdict: Lemma 2 predicts quiet tails under AWB;
    the capped-timer violation predicts a never-quiet stream.

    ``tail`` is a fraction of the horizon.
    """
    if not 0 < tail < 1:
        raise ValueError("tail must be a fraction in (0, 1)")
    times = [t for t, _, _ in suspicion_writes(memory)]
    last = max(times) if times else None
    return SuspicionQuiescence(
        total=len(times),
        last_write=last,
        quiesced=last is None or last < horizon * (1.0 - tail),
    )


__all__ = ["SuspicionQuiescence", "cumulative_suspicions", "suspicion_quiescence", "suspicion_writes"]
