"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute one (algorithm, scenario, seed) run and print the election
    report, the writer/boundedness censuses, and the leadership
    timeline.
``sweep``
    Execute an (algorithm x scenario x seed) grid through the parallel
    experiment engine: ``--jobs N`` worker processes, deterministic row
    order, per-cell error capture, and a JSONL result cache under
    ``results/engine/`` keyed by the grid's content hash.  ``--memory
    emulated`` forces the ABD register emulation onto every cell.
``check``
    Audit the paper's Theorems 1-4 over the adversarial scenario suite
    through the parallel engine and print the property-violation table;
    exits non-zero on any violated claim.
``chaos``
    Run N seeded fault-injection campaigns (replica crash/recover with
    state-resync, partitions, message storms) through the ABD emulation
    under the theorem monitors and the consistency history audit; on a
    violation, delta-debug the fault plan down to a minimal pinned
    repro scenario.  Exits non-zero on any violating plan.
``fuzz``
    Coverage-guided scenario fuzzing: mutate typed scenario genomes
    one axis at a time over the full workload space (delay models,
    crash plans, link models, fault plans, backends, consistency
    levels), keep an AFL-style corpus of genomes reaching novel
    trace-feature signatures, and judge every run with the theorem
    monitors plus the consistency/integrity audits; violating genomes
    are shrunk to mutation-minimal pinned repro scenarios.  Exits
    non-zero on any violation.  ``--replay`` re-runs a corpus's pinned
    regressions instead.
``compare``
    Run several algorithms on one scenario and print the comparison
    table (the Section 5 trade-off, on demand).
``perf``
    Run the simulation-core microbenchmarks (kernel events/sec,
    per-scenario run time, engine sweep throughput), emit the
    stable-schema ``BENCH_perf.json`` baseline, and optionally gate
    against a committed baseline (``--compare BASELINE.json
    --max-regress 15%``); exits non-zero on regression.
``lint``
    Run the AST-based invariant linter over the source tree
    (determinism, kernel purity, registry completeness, batch-dispatch
    safety, strict-typing ratchet); exits non-zero on any finding
    outside the committed baseline.
``list``
    Show the available algorithms and scenarios.

Examples
--------
::

    python -m repro list
    python -m repro run --algorithm alg1 --scenario leader-crash --seed 3
    python -m repro sweep --algorithms alg1 alg2 --scenarios nominal leader-crash \
        --seeds 0 1 2 --jobs 4
    python -m repro sweep --scenarios nominal --memory emulated --seeds 0 1
    python -m repro check --jobs 4
    python -m repro chaos --plans 25 --seed 7
    python -m repro chaos --plans 10 --no-resync --retry-policy backoff
    python -m repro fuzz --budget 50 --seed 0 --corpus results/fuzz
    python -m repro fuzz --replay --corpus results/fuzz
    python -m repro lint
    python -m repro compare --scenario nominal --seeds 0 1 2
    python -m repro perf --quick --compare BENCH_perf.json --max-regress 25%
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import format_property_table, format_table
from repro.analysis.timeline import build_timeline, render_timeline
from repro.analysis.write_stats import forever_writers, growing_registers
from repro.lint.runner import RULE_FAMILIES
from repro.memory.backend import BACKENDS
from repro.memory.emulated import CONSISTENCY_LEVELS, LINK_MODELS, RETRY_POLICIES
from repro.memory.membership import MEMBERSHIP_MODES
from repro.workloads.registry import ALGORITHMS, SCENARIO_FACTORIES
from repro.workloads.scenarios import Scenario
from repro.workloads.sweep import SweepRow, summarize_result

#: Backwards-compatible aliases; the registries now live in
#: :mod:`repro.workloads.registry` so the engine can share them.
SCENARIOS: Dict[str, Callable[..., Scenario]] = SCENARIO_FACTORIES

#: Default adversarial suite of ``repro check``: six environments that
#: stress crash storms, GST ramps, asynchrony bursts, near-(n-1)
#: cascades and timely-identity churn while still satisfying AWB by
#: construction -- so every claimed theorem must hold.
CHECK_SCENARIOS = [
    "leader-storm",
    "gst-ramp",
    "async-bursts",
    "near-all-cascade",
    "timely-churn",
    "awb-only",
    # The emulated-backend cells: the same theorems must hold when the
    # registers are realized by the ABD quorum emulation, including
    # under a minority of replica crashes.
    "nominal-emulated",
    "replica-crash",
    # The atomic consistency level: write-back reads whose recorded
    # histories are additionally audited for linearizability (the audit
    # verdict counts toward this command's violation total).
    "nominal-emulated-atomic",
    "replica-crash-atomic",
    # The lossy-link audit cell: retransmission races (duplicate REQ/ACK
    # deliveries) with the recorded history checked against the
    # regular-register condition.
    "emulated-lossy-audit",
    # The ramp-stress audit cell: a deliberately tight retransmission
    # timer floods duplicate replies through slow (but lossless) links;
    # the audit asserts reply dedup never fakes a quorum.
    "emulated-gst-ramp-audit",
    # The fault-injection cell: the default chaos timeline (transient
    # replica crash with recover-and-resync, partition/heal, a message
    # storm) with the history audit on -- the theorems must survive it.
    "chaos",
    # The dynamic-membership cells: the replica set reconfigures
    # mid-run through dual-quorum transition windows, and the recorded
    # history must stay regular/linearizable across every config change.
    "membership-churn",
    "membership-churn-atomic",
]

#: Scenario factories deliberately NOT in the ``repro check`` default
#: suite, with the reason on each line.  The ``registry-check-coverage``
#: lint rule requires every ``SCENARIO_FACTORIES`` key to appear in
#: exactly one of these two lists, so adding a factory without deciding
#: whether it is audited fails ``repro lint``.
CHECK_EXEMPT_SCENARIOS = [
    "nominal",  # baseline environment; strictly dominated by the suite
    "chaotic-timers",  # early-chaos variant of awb-only
    "leader-crash",  # subsumed by leader-storm's repeated crashes
    "cascade",  # subsumed by near-all-cascade at the fault edge
    "all-but-one",  # n-1 crashes: T2/T4 trivial, nothing extra audited
    "ev-sync",  # eventually-synchronous delays: weaker than gst-ramp
    "scrambled",  # scheduler scrambling is on in every suite cell
    "random-faults",  # unpinned random faults; suite uses pinned storms
    "san",  # disk-latency (SAN) study cell, not a theorem stressor
    "capped-timers",  # deliberately violates AWB (negative scenario)
    "slow-leader-awb",  # Section-5 trade-off study cell
    "ablation",  # algorithm-ablation study cell
    "leader-crash-emulated",  # subsumed by replica-crash + leader-storm
    "emulated-lossy",  # non-audited twin of emulated-lossy-audit
    "emulated-gst-ramp",  # emulated twin of the shared gst-ramp cell
    "fuzz-cell",  # genome-pinned fuzz cell; `repro fuzz` audits the space
    "membership-canary",  # deliberately broken negative control (CI runs it red)
]


def _print_results_dir(report: "Any") -> None:
    """Engine-backed commands report the resolved cache location."""
    if report.store_path is not None:
        print(f"results dir: {report.store_path.parent.resolve()}")


def _print_failures(report: "Any") -> None:
    for failure in report.failures:
        print(f"\nFAILED {failure.key}:\n{failure.error}", file=sys.stderr)


def _build_scenario(name: str, n: Optional[int], horizon: Optional[float]) -> Scenario:
    factory = SCENARIOS[name]
    kwargs = {}
    if n is not None:
        kwargs["n"] = n
    if horizon is not None:
        kwargs["horizon"] = horizon
    return factory(**kwargs)


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the registered algorithms and scenarios."""
    print("algorithms:")
    for name, cls in ALGORITHMS.items():
        print(f"  {name:14s} {cls.display_name} -- {cls.__doc__.strip().splitlines()[0]}")
    print("\nscenarios:")
    for name, factory in SCENARIOS.items():
        scen = factory()
        print(f"  {name:16s} n={scen.n:<3d} horizon={scen.horizon:<8.0f} {scen.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute one (algorithm, scenario, seed) run and print the report."""
    scen = _build_scenario(args.scenario, args.n, args.horizon)
    algorithm = ALGORITHMS[args.algorithm]
    overrides = {} if args.memory is None else {"memory": args.memory}
    backend = args.memory or scen.memory
    if args.consistency is not None:
        if backend != "emulated":
            print(
                "repro run: error: --consistency is an emulated-backend axis; "
                "pass --memory emulated or pick an emulated scenario",
                file=sys.stderr,
            )
            return 2
        overrides["consistency"] = args.consistency
    if args.membership is not None:
        if backend != "emulated":
            print(
                "repro run: error: --membership is an emulated-backend axis; "
                "pass --memory emulated or pick an emulated scenario",
                file=sys.stderr,
            )
            return 2
        overrides["membership"] = args.membership
    if args.links is not None:
        if backend != "emulated":
            print(
                "repro run: error: --links selects the emulated backend's "
                "link model; pass --memory emulated or pick an emulated "
                "scenario",
                file=sys.stderr,
            )
            return 2
        emulation = dict(scen.emulation)
        emulation["links"] = args.links
        # Link parameters are model-specific (delta/loss/ramp knobs) and
        # do not transfer across models; the override falls back to the
        # target model's defaults.
        emulation.pop("link_params", None)
        overrides["emulation"] = emulation
    if backend == "emulated":
        effective = (
            args.consistency
            or scen.consistency
            or dict(scen.emulation).get("consistency", "regular")
        )
        level = f", {effective} reads"
    else:
        level = ""
    print(
        f"running {algorithm.display_name} on {scen.name} "
        f"(seed {args.seed}, {backend} memory{level})..."
    )
    try:
        result = scen.run(algorithm, seed=args.seed, **overrides)
    except ValueError as exc:
        # e.g. forcing the emulated backend onto the SAN disk scenario.
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2

    report = result.stabilization(margin=scen.margin)
    print(f"\nstabilized: {report.stabilized}")
    if report.leader is not None:
        print(f"leader: p{report.leader} (correct: {report.leader_correct})")
    if report.time is not None:
        print(f"stabilization time: {report.time:.0f}")

    writers = forever_writers(result.memory, result.horizon, window=result.horizon / 20)
    growing = growing_registers(result.memory, result.horizon)
    print(f"forever writers: {sorted(writers)}")
    print(f"still-growing registers: {sorted(growing) if growing else 'none (bounded)'}")
    print(
        f"traffic: {result.memory.total_writes} writes / {result.memory.total_reads} reads; "
        f"{result.sim.events_fired} events"
    )
    if getattr(result.memory, "configs_installed", 0) > 0:
        print(
            f"reconfiguration: {result.memory.configs_installed} config(s) installed, "
            f"{result.memory.transfer_rounds} transfer round(s), "
            f"{result.memory.dual_quorum_ops} dual-quorum op(s)"
        )
    audit = result.audit_consistency()
    if audit is not None:
        print(f"consistency audit: {audit.summary()}")
    if args.timeline:
        print("\nleadership timeline:")
        print(render_timeline(build_timeline(result.trace, result.crash_plan)))
    ok = report.stabilized or scen.name.startswith("capped")
    if audit is not None and not audit.ok:
        ok = False
    return 0 if ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    """Run several algorithms on one scenario and print the table."""
    scen = _build_scenario(args.scenario, args.n, args.horizon)
    names = args.algorithms or list(ALGORITHMS)
    rows = []
    for name in names:
        algorithm = ALGORITHMS[name]
        per_seed = []
        for seed in args.seeds:
            result = scen.run(algorithm, seed=seed)
            per_seed.append(summarize_result(result, scen))
        stab = [r for r in per_seed if r.stabilized]
        times = [r.stabilization_time for r in stab]
        rows.append(
            [
                name,
                f"{len(stab)}/{len(per_seed)}",
                sum(times) / len(times) if times else float("inf"),
                max(r.forever_writer_count for r in per_seed),
                max(r.growing_register_count for r in per_seed) == 0,
                sum(r.total_writes for r in per_seed) // len(per_seed),
            ]
        )
    print(f"scenario: {scen.name} ({scen.description}); seeds {args.seeds}")
    print(
        format_table(
            ["algorithm", "stabilized", "mean t_stab", "forever writers", "bounded", "writes/run"],
            rows,
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run an (algorithm x scenario x seed) grid through the engine."""
    from repro.engine.driver import parse_shard, run_experiment, shard_bounds
    from repro.engine.spec import ExperimentSpec

    algorithms = {name: ALGORITHMS[name] for name in (args.algorithms or list(ALGORITHMS))}
    scenarios = [_build_scenario(name, args.n, args.horizon) for name in args.scenarios]
    for axis, value in (("consistency", args.consistency), ("membership", args.membership)):
        if value is not None and args.memory != "emulated":
            # The override only ever applies to emulated cells; refusing
            # a grid where it can't apply anywhere beats silently
            # ignoring it.
            off_axis = [s.name for s in scenarios if s.memory != "emulated"]
            if args.memory == "shared" or off_axis:
                print(
                    f"repro sweep: error: --{axis} is an emulated-backend axis "
                    f"but these cells run the shared backend: {off_axis or args.scenarios}; "
                    "pass --memory emulated or pick emulated scenarios",
                    file=sys.stderr,
                )
                return 2
    try:
        spec = ExperimentSpec.from_objects(
            args.name,
            algorithms,
            scenarios,
            args.seeds,
            window=args.window,
            fast=not args.traced,
            memory=args.memory,
            consistency=args.consistency,
            membership=args.membership,
        )
    except ValueError as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
            if args.shards != 1:
                raise ValueError("--shard and --shards are mutually exclusive")
        except ValueError as exc:
            print(f"repro sweep: error: {exc}", file=sys.stderr)
            return 2
    report = run_experiment(
        spec,
        jobs=args.jobs,  # None/0 -> one worker per CPU (driver default)
        cache=not args.no_cache,
        results_dir=args.results_dir,
        strict=False,
        shard=shard,
        shards=args.shards,
    )
    print(format_table(SweepRow.headers(), [row.cells() for row in report.rows]))
    cache_note = (
        f"cache: {report.cache_hits} hit(s), file {report.store_path}"
        if not args.no_cache
        else "cache: disabled"
    )
    if shard is not None:
        lo, hi = shard_bounds(report.total_cells, *shard)
        print(
            f"\nshard {shard[0]}/{shard[1]}: cells {lo + 1}..{hi} "
            f"of {report.total_cells}"
        )
    elif args.shards != 1:
        print(f"\nin-process shards: {args.shards}")
    print(
        f"\n{len(report.rows) + len(report.failures)} cell(s): "
        f"{report.executed} executed on {report.jobs} job(s), "
        f"{report.cache_hits} from cache; wall {report.wall_time_s:.2f}s"
    )
    print(f"spec hash: {spec.content_hash()}; {cache_note}")
    _print_results_dir(report)
    _print_failures(report)
    return 1 if report.failures else 0


def cmd_check(args: argparse.Namespace) -> int:
    """Audit Theorems 1-4 (plus consistency audits) over the suite."""
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec

    algorithms = {name: ALGORITHMS[name] for name in args.algorithms}
    scenarios = [SCENARIOS[name]() for name in args.scenarios]
    spec = ExperimentSpec.from_objects(
        args.name, algorithms, scenarios, args.seeds, window=args.window
    )
    report = run_experiment(
        spec,
        jobs=args.jobs,
        cache=not args.no_cache,
        results_dir=args.results_dir,
        strict=False,
    )
    print(
        f"theorem audit: {len(args.algorithms)} algorithm(s) x "
        f"{len(scenarios)} adversarial scenario(s) x {len(args.seeds)} seed(s)"
    )
    print(format_property_table(report.rows))
    # Consistency-audit failures count alongside the theorem ones: an
    # atomic-level cell whose history is not linearizable is as broken
    # a claim as a violated theorem.
    violations = sum(
        getattr(row, "property_violations", 0) + getattr(row, "audit_violations", 0)
        for row in report.rows
    )
    audited = sum(1 for row in report.rows if getattr(row, "audit_ok", None) is not None)
    print(
        f"\n{spec.size()} cell(s): {report.executed} executed on {report.jobs} job(s), "
        f"{report.cache_hits} from cache; wall {report.wall_time_s:.2f}s; "
        f"{violations} violation(s); {audited} consistency-audited cell(s)"
    )
    _print_results_dir(report)
    for row in report.rows:
        props = getattr(row, "properties", None)
        for verdict in props.violations() if props else ():
            print(
                f"VIOLATED T{verdict.theorem} ({verdict.name}) by {row.algorithm} "
                f"on {row.scenario} seed {row.seed}: {verdict.detail}",
                file=sys.stderr,
            )
        if getattr(row, "audit_ok", None) is False:
            print(
                f"CONSISTENCY AUDIT FAILED ({row.consistency} level, "
                f"{row.audit_violations} violation(s)) for {row.algorithm} "
                f"on {row.scenario} seed {row.seed}",
                file=sys.stderr,
            )
    _print_failures(report)
    return 1 if (violations or report.failures) else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seeded fault campaigns; shrink any violating plan."""
    import json

    from repro.faults.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        algorithm=args.algorithm,
        seed=args.seed,
        plans=args.plans,
        n=args.n,
        horizon=args.horizon,
        replicas=args.replicas,
        max_faults=args.max_faults,
        resync=not args.no_resync,
        retry_policy=args.retry_policy,
        shrink=not args.no_shrink,
    )
    if not args.json:
        print(
            f"chaos campaign: {config.plans} fault plan(s) for "
            f"{config.algorithm} (seed {config.seed}, n={config.n}, "
            f"horizon {config.horizon:g}, {config.replicas} replicas, "
            f"{'resync' if config.resync else 'NO RESYNC'}, "
            f"{config.retry_policy} retries)"
        )

    def progress(index: int, summary: "Any", count: int) -> None:
        verdict = "ok" if count == 0 else f"{count} VIOLATION(S)"
        print(
            f"  plan {index:3d}: {verdict}; recoveries={summary.recoveries} "
            f"resyncs={summary.resyncs} retransmissions={summary.retransmissions}"
        )

    result = run_campaign(config, progress=progress if args.verbose else None)
    if args.json:
        print(json.dumps(result.to_jsonable(), indent=2, sort_keys=True))
        return 1 if result.violations else 0
    total = sum(v.violations for v in result.violations)
    print(
        f"\n{result.plans_run} plan(s) run: {len(result.violations)} violating "
        f"plan(s), {total} violation(s); recoveries={result.recoveries}, "
        f"resyncs={result.resyncs}, retransmissions={result.retransmissions}, "
        f"integrity_violations={result.integrity_violations}"
    )
    for violation in result.violations:
        shrunk = violation.shrunk or violation.plan
        print(
            f"\nVIOLATING PLAN {violation.index} (seed {violation.seed}, "
            f"{violation.violations} violation(s)): shrunk "
            f"{len(violation.plan)} -> {len(shrunk)} event(s) in "
            f"{violation.oracle_runs} oracle run(s)",
            file=sys.stderr,
        )
        print(
            "pinned repro: " + json.dumps(violation.repro, sort_keys=True),
            file=sys.stderr,
        )
    return 1 if result.violations else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the coverage-guided fuzzer (or replay pinned regressions)."""
    import json
    from pathlib import Path

    from repro.fuzz.loop import (
        FuzzConfig,
        amnesia_probe,
        membership_probe,
        replay_regressions,
        run_fuzz,
    )

    corpus_dir = Path(args.corpus) if args.corpus else None
    if args.replay:
        if corpus_dir is None:
            print("repro fuzz: error: --replay needs --corpus", file=sys.stderr)
            return 2
        rows = replay_regressions(corpus_dir)
        red = 0
        for key, _payload, count in rows:
            verdict = "ok (fixed)" if count == 0 else f"{count} VIOLATION(S)"
            red += 1 if count else 0
            print(f"  regression {key}: {verdict}")
        print(f"{len(rows)} pinned regression(s) replayed: {red} still red")
        return 1 if red else 0

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        batch=args.batch,
        jobs=args.jobs,
        horizon=args.horizon,
        shrink=not args.no_shrink,
        resync=not args.no_resync,
        transition="single-config" if args.broken_transition else "dual-quorum",
    )
    if not args.json:
        print(
            f"fuzz: budget {config.budget} genome(s), seed {config.seed}, "
            f"base horizon {config.horizon:g}, batch {config.batch}"
            + ("" if config.resync else ", NO RESYNC")
            + ("" if config.transition == "dual-quorum" else ", BROKEN TRANSITIONS")
        )

    def progress(genome: "Any", summary: "Any", novel: bool, count: int) -> None:
        verdict = "ok" if count == 0 else f"{count} VIOLATION(S)"
        marker = "NEW" if novel else "   "
        print(f"  {genome.key()} {marker} {verdict}; {summary.scenario}")

    # The negative controls seed their populations with the canonical
    # canaries, so each broken mode is caught deterministically instead
    # of hoping a generated timeline hits it.
    initial = []
    if not config.resync:
        initial.append(amnesia_probe(config.horizon))
    if config.transition != "dual-quorum":
        initial.append(membership_probe(config.horizon))
    result = run_fuzz(
        config,
        corpus_dir=corpus_dir,
        initial=initial,
        progress=progress if args.verbose else None,
    )
    if args.json:
        print(json.dumps(result.to_jsonable(), indent=2, sort_keys=True))
        return 0 if result.ok else 1
    print(
        f"\n{result.genomes_run} genome(s) run: {len(result.violations)} "
        f"violating genome(s), {result.total_signatures} trace-feature "
        f"signature(s) ({result.new_signatures} new), corpus size "
        f"{result.corpus_size}"
    )
    for failure in result.failures:
        print(f"FAILED {failure}", file=sys.stderr)
    for violation in result.violations:
        shrunk = violation.shrunk or violation.genome
        print(
            f"\nVIOLATING GENOME {violation.genome.key()} "
            f"({violation.violations} violation(s)): shrunk to complexity "
            f"{shrunk.complexity()} in {violation.oracle_runs} oracle run(s)",
            file=sys.stderr,
        )
        print(
            "pinned repro: " + json.dumps(violation.repro, sort_keys=True),
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST invariant linter; exit non-zero on new findings."""
    from pathlib import Path

    from repro.lint import run_lint, write_baseline
    from repro.lint.config import DEFAULT_BASELINE

    baseline_path = Path(args.baseline) if args.baseline else None
    try:
        report = run_lint(
            root=Path(args.root) if args.root else None,
            tests_dir=Path(args.tests) if args.tests else None,
            baseline_path=baseline_path,
            families=args.rules or None,
            use_baseline=not args.no_baseline,
        )
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(target, report.findings)
        print(
            f"repro lint: baselined {len(report.findings)} finding(s) "
            f"to {target}"
        )
        return 0
    print(report.render())
    return report.exit_code


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the perf microbenchmarks; write/gate BENCH_perf.json."""
    from pathlib import Path

    from repro.perf import (
        collect_profile,
        compare_payloads,
        default_baseline_path,
        load_payload,
        make_payload,
        merge_best,
        parse_max_regress,
        write_payload,
    )

    profiles = ["full", "quick"] if args.profile == "all" else [args.profile]
    try:
        max_regress = parse_max_regress(args.max_regress)
    except ValueError as exc:
        print(f"repro perf: error: {exc}", file=sys.stderr)
        return 2

    # Load the comparison baseline *before* any measurement or write:
    # a bad path must fail fast, and comparing against the default
    # output file must see the committed values, not this run's.
    baseline = None
    if args.compare:
        try:
            baseline = load_payload(Path(args.compare))
        except (OSError, ValueError) as exc:
            print(f"repro perf: error: {exc}", file=sys.stderr)
            return 2

    results_by_profile = {}
    for profile in profiles:
        print(f"profile {profile}: running benchmarks...")
        results_by_profile[profile] = collect_profile(profile)

    failures = []
    if baseline is not None:
        failures = compare_payloads(
            make_payload(results_by_profile), baseline, max_regress
        )
        # Short benchmarks on busy machines are noisy; a regression must
        # reproduce to count.  Re-measure the offending profiles and keep
        # the per-benchmark best of both passes.
        retries = max(0, args.retries)
        while failures and retries:
            retries -= 1
            for profile in sorted({f.profile for f in failures}):
                print(f"profile {profile}: regression seen, re-measuring...")
                results_by_profile[profile] = merge_best(
                    results_by_profile[profile], collect_profile(profile)
                )
            failures = compare_payloads(
                make_payload(results_by_profile), baseline, max_regress
            )

    # Merge with the existing output file so a partial-profile run never
    # drops the profiles it did not execute.
    existing = None
    out = Path(args.out) if args.out else default_baseline_path()
    if not args.no_write and out.is_file():
        try:
            existing = load_payload(out)
        except (OSError, ValueError):
            existing = None  # unreadable/foreign file: overwrite wholesale
    payload = make_payload(results_by_profile, existing=existing)

    rows = []
    for profile, results in results_by_profile.items():
        for result in results.values():
            speedup = payload["speedup_vs_reference"].get(result.name)
            value = (
                f"{result.value:,.0f}" if result.value >= 1000 else f"{result.value:.4f}"
            )
            rows.append(
                [
                    profile,
                    result.name,
                    value,
                    result.unit,
                    "higher" if result.higher_is_better else "lower",
                    f"{speedup:.2f}x" if speedup else "-",
                ]
            )
    print(
        format_table(
            ["profile", "benchmark", "value", "unit", "better", "vs pre-overhaul"],
            rows,
        )
    )

    if not args.no_write:
        write_payload(out, payload)
        print(f"\nwrote {out.resolve()}")

    if baseline is not None:
        compared = sum(
            len(prof.get("benchmarks", {}))
            for name, prof in baseline.get("profiles", {}).items()
            if name in results_by_profile
        )
        print(
            f"\ncompared {compared} benchmark(s) against {args.compare} "
            f"(max regression {max_regress * 100.0:.0f}%): "
            f"{len(failures)} failure(s)"
        )
        for failure in failures:
            print(f"PERF REGRESSION {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _add_engine_options(parser: argparse.ArgumentParser, default_name: str) -> None:
    """The options every engine-backed subcommand shares."""
    parser.add_argument("--window", type=float, default=100.0, help="census tail window")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; 1 = serial, omitted or 0 = one per CPU",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="skip the JSONL result cache"
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="cache root (default REPRO_RESULTS_DIR or the repo's results/engine)",
    )
    parser.add_argument(
        "--name", default=default_name, help="experiment name (cache prefix)"
    )


def build_parser() -> argparse.ArgumentParser:
    """Assemble the full ``repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventual leader election in asynchronous shared memory (DSN 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and scenarios").set_defaults(func=cmd_list)

    run_p = sub.add_parser("run", help="execute one run and print the report")
    run_p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="alg1")
    run_p.add_argument("--scenario", choices=sorted(SCENARIOS), default="nominal")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--n", type=int, default=None, help="override process count")
    run_p.add_argument("--horizon", type=float, default=None, help="override horizon")
    run_p.add_argument(
        "--memory",
        choices=sorted(BACKENDS),
        default=None,
        help="memory backend override (default: the scenario's own choice)",
    )
    run_p.add_argument(
        "--consistency",
        choices=list(CONSISTENCY_LEVELS),
        default=None,
        help=(
            "consistency level of the emulated registers ('atomic' adds the "
            "ABD write-back phase to every read); only valid when the run is "
            "on the emulated backend"
        ),
    )
    run_p.add_argument(
        "--membership",
        choices=list(MEMBERSHIP_MODES),
        default=None,
        help=(
            "dynamic-membership mode of the emulated replica set ('churn' "
            "installs the canonical replace-one-replica reconfiguration, "
            "'none' strips the scenario's membership plan); only valid when "
            "the run is on the emulated backend"
        ),
    )
    run_p.add_argument(
        "--links",
        choices=sorted(LINK_MODELS),
        default=None,
        help=(
            "link-model override for the emulated backend's replica fabric "
            "(model-specific parameters reset to that model's defaults); "
            "only valid when the run is on the emulated backend"
        ),
    )
    run_p.add_argument("--timeline", action="store_true", help="render the leadership timeline")
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser(
        "sweep", help="run an (algorithm x scenario x seed) grid through the engine"
    )
    sweep_p.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS), default=None)
    sweep_p.add_argument(
        "--scenarios", nargs="*", choices=sorted(SCENARIOS), default=["nominal"]
    )
    sweep_p.add_argument("--seeds", nargs="*", type=int, default=[0, 1])
    sweep_p.add_argument("--n", type=int, default=None, help="override process count")
    sweep_p.add_argument("--horizon", type=float, default=None, help="override horizon")
    sweep_p.add_argument(
        "--memory",
        choices=sorted(BACKENDS),
        default=None,
        help=(
            "force a memory backend onto every cell ('emulated' puts the whole "
            "grid on the ABD quorum emulation, 'shared' strips it from "
            "emulated-native scenarios); default: each scenario's own choice"
        ),
    )
    sweep_p.add_argument(
        "--consistency",
        choices=list(CONSISTENCY_LEVELS),
        default=None,
        help=(
            "force a consistency level onto every emulated cell ('atomic' = "
            "ABD write-back reads); requires --memory emulated or an "
            "emulated-native scenario list"
        ),
    )
    sweep_p.add_argument(
        "--membership",
        choices=list(MEMBERSHIP_MODES),
        default=None,
        help=(
            "force a dynamic-membership mode onto every emulated cell "
            "('churn' = one replace-one-replica reconfiguration per cell, "
            "'none' = strip membership plans); requires --memory emulated "
            "or an emulated-native scenario list"
        ),
    )
    sweep_p.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help=(
            "run only the K-th of N contiguous balanced shards of the grid "
            "(1-based); shards share the result cache, so N invocations -- "
            "concurrent or not -- assemble the full sweep, and a killed "
            "shard resumes without recomputing finished cells"
        ),
    )
    sweep_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "run the whole grid as N in-process shards (one process pool "
            "per shard, sequentially); mutually exclusive with --shard"
        ),
    )
    sweep_p.add_argument(
        "--traced",
        action="store_true",
        help=(
            "run cells with full read logging and per-kind event accounting "
            "instead of the default low-overhead fast path (summaries are "
            "identical either way; this exists for debugging and the "
            "determinism tests)"
        ),
    )
    _add_engine_options(sweep_p, default_name="sweep")
    sweep_p.set_defaults(func=cmd_sweep)

    check_p = sub.add_parser(
        "check",
        help="audit Theorems 1-4 over the adversarial scenario suite",
    )
    # nargs="+": an audit whose whole contract is a pass/fail verdict
    # must reject an accidentally emptied axis instead of green-lighting
    # a zero-cell grid.
    check_p.add_argument(
        "--algorithms", nargs="+", choices=sorted(ALGORITHMS), default=["alg1", "alg2"]
    )
    check_p.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=CHECK_SCENARIOS,
        help="scenario factories to audit (defaults to the adversarial suite)",
    )
    check_p.add_argument("--seeds", nargs="+", type=int, default=[0])
    _add_engine_options(check_p, default_name="check")
    check_p.set_defaults(func=cmd_check)

    chaos_p = sub.add_parser(
        "chaos",
        help=(
            "run seeded fault-injection campaigns under the theorem and "
            "consistency oracles; shrink any violating plan to a pinned repro"
        ),
    )
    chaos_p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="alg1")
    chaos_p.add_argument(
        "--plans", type=int, default=20, help="number of generated fault plans to run"
    )
    chaos_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed (plan generation and per-plan run seeds derive from it)",
    )
    chaos_p.add_argument("--n", type=int, default=3, help="process count per run")
    chaos_p.add_argument(
        "--horizon", type=float, default=8000.0, help="simulation horizon per run"
    )
    chaos_p.add_argument(
        "--replicas", type=int, default=3, help="ABD replica count per run"
    )
    chaos_p.add_argument(
        "--max-faults",
        type=int,
        default=3,
        help="maximum disturbance windows per generated plan",
    )
    chaos_p.add_argument(
        "--retry-policy",
        choices=list(RETRY_POLICIES),
        default="fixed",
        help="retransmission policy of pending quorum phases",
    )
    chaos_p.add_argument(
        "--no-resync",
        action="store_true",
        help=(
            "DELIBERATELY BROKEN mode: recovered replicas serve straight out "
            "of amnesia without the quorum state-resync (the negative oracle "
            "-- the campaign is expected to catch and shrink this)"
        ),
    )
    chaos_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violating plans as-is instead of delta-debugging them",
    )
    chaos_p.add_argument(
        "--verbose", action="store_true", help="print a line per plan"
    )
    chaos_p.add_argument(
        "--json", action="store_true", help="emit the full campaign report as JSON"
    )
    chaos_p.set_defaults(func=cmd_chaos)

    fuzz_p = sub.add_parser(
        "fuzz",
        help=(
            "coverage-guided scenario fuzzing under the theorem and "
            "consistency oracles; shrink violating genomes to pinned repros"
        ),
    )
    fuzz_p.add_argument(
        "--budget", type=int, default=50, help="total genomes to run"
    )
    fuzz_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzz seed (the mutation stream and every cell's run seed)",
    )
    fuzz_p.add_argument(
        "--batch", type=int, default=16, help="genomes per parallel engine batch"
    )
    fuzz_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per batch; 1 = serial, omitted or 0 = one per CPU",
    )
    fuzz_p.add_argument(
        "--horizon",
        type=float,
        default=3000.0,
        help=(
            "base horizon genomes derive their run horizons from (substrate "
            "axes scale it up)"
        ),
    )
    fuzz_p.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help=(
            "corpus directory to load and extend (genomes reaching novel "
            "coverage, the coverage map, pinned regressions); omitted = "
            "in-memory only"
        ),
    )
    fuzz_p.add_argument(
        "--replay",
        action="store_true",
        help=(
            "re-run the pinned regressions in --corpus instead of fuzzing; "
            "exits non-zero while any replays red"
        ),
    )
    fuzz_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="pin violating genomes as-is instead of delta-debugging them",
    )
    fuzz_p.add_argument(
        "--no-resync",
        action="store_true",
        help=(
            "DELIBERATELY BROKEN mode: recovered replicas serve straight out "
            "of amnesia without the quorum state-resync (the negative oracle "
            "-- the fuzzer is expected to catch and shrink this)"
        ),
    )
    fuzz_p.add_argument(
        "--broken-transition",
        action="store_true",
        help=(
            "DELIBERATELY BROKEN mode: membership transition windows consult "
            "old-config quorums only and installs skip the state transfer "
            "(the membership negative oracle -- the fuzzer is expected to "
            "catch and shrink this)"
        ),
    )
    fuzz_p.add_argument(
        "--verbose", action="store_true", help="print a line per genome"
    )
    fuzz_p.add_argument(
        "--json", action="store_true", help="emit the full fuzz report as JSON"
    )
    fuzz_p.set_defaults(func=cmd_fuzz)

    lint_p = sub.add_parser(
        "lint",
        help="run the AST invariant linter (determinism, purity, registries, dispatch, typing)",
    )
    lint_p.add_argument(
        "--root",
        default=None,
        help="package root to lint (default: the installed repro package)",
    )
    lint_p.add_argument(
        "--tests",
        default=None,
        help=(
            "tests directory for the registry test-coverage rule "
            "(default: the sibling tests/ tree when present)"
        ),
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="BASELINE.json",
        help="baseline file (default: tools/lint_baseline.json)",
    )
    lint_p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is fatal (fixture/CI mode)",
    )
    lint_p.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to the current findings (the ratchet: "
            "run after fixing a grandfathered finding to bank the fix)"
        ),
    )
    lint_p.add_argument(
        "--rules",
        nargs="*",
        choices=sorted(RULE_FAMILIES),
        default=None,
        help="restrict the run to these rule families (default: all)",
    )
    lint_p.set_defaults(func=cmd_lint)

    cmp_p = sub.add_parser("compare", help="compare algorithms on one scenario")
    cmp_p.add_argument("--scenario", choices=sorted(SCENARIOS), default="nominal")
    cmp_p.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS), default=None)
    cmp_p.add_argument("--seeds", nargs="*", type=int, default=[0, 1])
    cmp_p.add_argument("--n", type=int, default=None)
    cmp_p.add_argument("--horizon", type=float, default=None)
    cmp_p.set_defaults(func=cmd_compare)

    perf_p = sub.add_parser(
        "perf",
        help="run the simulation-core microbenchmarks and emit BENCH_perf.json",
    )
    profile_group = perf_p.add_mutually_exclusive_group()
    profile_group.add_argument(
        "--profile",
        choices=["full", "quick", "all"],
        default="full",
        help="benchmark workload profile (default full; 'all' runs both)",
    )
    profile_group.add_argument(
        "--quick",
        action="store_const",
        dest="profile",
        const="quick",
        help="alias for --profile quick (the CI smoke workload)",
    )
    perf_p.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_perf.json at the repo root)",
    )
    perf_p.add_argument(
        "--no-write", action="store_true", help="measure and print only; write no file"
    )
    perf_p.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="gate against a baseline file; exit 1 on regression",
    )
    perf_p.add_argument(
        "--max-regress",
        default="15%",
        help="allowed per-benchmark regression for --compare ('15%%' or '0.15')",
    )
    perf_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help=(
            "re-measure profiles that appear regressed, keeping the "
            "per-benchmark best of the passes (a regression must reproduce "
            "to fail the gate); 0 disables"
        ),
    )
    perf_p.set_defaults(func=cmd_perf)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
