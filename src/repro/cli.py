"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Execute one (algorithm, scenario, seed) run and print the election
    report, the writer/boundedness censuses, and the leadership
    timeline.
``sweep``
    Execute an (algorithm x scenario x seed) grid through the parallel
    experiment engine: ``--jobs N`` worker processes, deterministic row
    order, per-cell error capture, and a JSONL result cache under
    ``results/engine/`` keyed by the grid's content hash.
``check``
    Audit the paper's Theorems 1-4 over the adversarial scenario suite
    through the parallel engine and print the property-violation table;
    exits non-zero on any violated claim.
``compare``
    Run several algorithms on one scenario and print the comparison
    table (the Section 5 trade-off, on demand).
``list``
    Show the available algorithms and scenarios.

Examples
--------
::

    python -m repro list
    python -m repro run --algorithm alg1 --scenario leader-crash --seed 3
    python -m repro sweep --algorithms alg1 alg2 --scenarios nominal leader-crash \
        --seeds 0 1 2 --jobs 4
    python -m repro check --jobs 4
    python -m repro compare --scenario nominal --seeds 0 1 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import format_property_table, format_table
from repro.analysis.timeline import build_timeline, render_timeline
from repro.analysis.write_stats import forever_writers, growing_registers
from repro.workloads.registry import ALGORITHMS, SCENARIO_FACTORIES
from repro.workloads.scenarios import Scenario
from repro.workloads.sweep import SweepRow, summarize_result

#: Backwards-compatible aliases; the registries now live in
#: :mod:`repro.workloads.registry` so the engine can share them.
SCENARIOS: Dict[str, Callable[..., Scenario]] = SCENARIO_FACTORIES

#: Default adversarial suite of ``repro check``: six environments that
#: stress crash storms, GST ramps, asynchrony bursts, near-(n-1)
#: cascades and timely-identity churn while still satisfying AWB by
#: construction -- so every claimed theorem must hold.
CHECK_SCENARIOS = [
    "leader-storm",
    "gst-ramp",
    "async-bursts",
    "near-all-cascade",
    "timely-churn",
    "awb-only",
]


def _print_results_dir(report: "Any") -> None:
    """Engine-backed commands report the resolved cache location."""
    if report.store_path is not None:
        print(f"results dir: {report.store_path.parent.resolve()}")


def _print_failures(report: "Any") -> None:
    for failure in report.failures:
        print(f"\nFAILED {failure.key}:\n{failure.error}", file=sys.stderr)


def _build_scenario(name: str, n: Optional[int], horizon: Optional[float]) -> Scenario:
    factory = SCENARIOS[name]
    kwargs = {}
    if n is not None:
        kwargs["n"] = n
    if horizon is not None:
        kwargs["horizon"] = horizon
    return factory(**kwargs)


def cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms:")
    for name, cls in ALGORITHMS.items():
        print(f"  {name:14s} {cls.display_name} -- {cls.__doc__.strip().splitlines()[0]}")
    print("\nscenarios:")
    for name, factory in SCENARIOS.items():
        scen = factory()
        print(f"  {name:16s} n={scen.n:<3d} horizon={scen.horizon:<8.0f} {scen.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scen = _build_scenario(args.scenario, args.n, args.horizon)
    algorithm = ALGORITHMS[args.algorithm]
    print(f"running {algorithm.display_name} on {scen.name} (seed {args.seed})...")
    result = scen.run(algorithm, seed=args.seed)

    report = result.stabilization(margin=scen.margin)
    print(f"\nstabilized: {report.stabilized}")
    if report.leader is not None:
        print(f"leader: p{report.leader} (correct: {report.leader_correct})")
    if report.time is not None:
        print(f"stabilization time: {report.time:.0f}")

    writers = forever_writers(result.memory, result.horizon, window=result.horizon / 20)
    growing = growing_registers(result.memory, result.horizon)
    print(f"forever writers: {sorted(writers)}")
    print(f"still-growing registers: {sorted(growing) if growing else 'none (bounded)'}")
    print(
        f"traffic: {result.memory.total_writes} writes / {result.memory.total_reads} reads; "
        f"{result.sim.events_fired} events"
    )
    if args.timeline:
        print("\nleadership timeline:")
        print(render_timeline(build_timeline(result.trace, result.crash_plan)))
    return 0 if report.stabilized or scen.name.startswith("capped") else 1


def cmd_compare(args: argparse.Namespace) -> int:
    scen = _build_scenario(args.scenario, args.n, args.horizon)
    names = args.algorithms or list(ALGORITHMS)
    rows = []
    for name in names:
        algorithm = ALGORITHMS[name]
        per_seed = []
        for seed in args.seeds:
            result = scen.run(algorithm, seed=seed)
            per_seed.append(summarize_result(result, scen))
        stab = [r for r in per_seed if r.stabilized]
        times = [r.stabilization_time for r in stab]
        rows.append(
            [
                name,
                f"{len(stab)}/{len(per_seed)}",
                sum(times) / len(times) if times else float("inf"),
                max(r.forever_writer_count for r in per_seed),
                max(r.growing_register_count for r in per_seed) == 0,
                sum(r.total_writes for r in per_seed) // len(per_seed),
            ]
        )
    print(f"scenario: {scen.name} ({scen.description}); seeds {args.seeds}")
    print(
        format_table(
            ["algorithm", "stabilized", "mean t_stab", "forever writers", "bounded", "writes/run"],
            rows,
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec

    algorithms = {name: ALGORITHMS[name] for name in (args.algorithms or list(ALGORITHMS))}
    scenarios = [_build_scenario(name, args.n, args.horizon) for name in args.scenarios]
    try:
        spec = ExperimentSpec.from_objects(
            args.name, algorithms, scenarios, args.seeds, window=args.window
        )
    except ValueError as exc:
        print(f"repro sweep: error: {exc}", file=sys.stderr)
        return 2
    report = run_experiment(
        spec,
        jobs=args.jobs,  # None/0 -> one worker per CPU (driver default)
        cache=not args.no_cache,
        results_dir=args.results_dir,
        strict=False,
    )
    print(format_table(SweepRow.headers(), [row.cells() for row in report.rows]))
    cache_note = (
        f"cache: {report.cache_hits} hit(s), file {report.store_path}"
        if not args.no_cache
        else "cache: disabled"
    )
    print(
        f"\n{spec.size()} cell(s): {report.executed} executed on {report.jobs} job(s), "
        f"{report.cache_hits} from cache; wall {report.wall_time_s:.2f}s"
    )
    print(f"spec hash: {spec.content_hash()}; {cache_note}")
    _print_results_dir(report)
    _print_failures(report)
    return 1 if report.failures else 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.engine.driver import run_experiment
    from repro.engine.spec import ExperimentSpec

    algorithms = {name: ALGORITHMS[name] for name in args.algorithms}
    scenarios = [SCENARIOS[name]() for name in args.scenarios]
    spec = ExperimentSpec.from_objects(
        args.name, algorithms, scenarios, args.seeds, window=args.window
    )
    report = run_experiment(
        spec,
        jobs=args.jobs,
        cache=not args.no_cache,
        results_dir=args.results_dir,
        strict=False,
    )
    print(
        f"theorem audit: {len(args.algorithms)} algorithm(s) x "
        f"{len(scenarios)} adversarial scenario(s) x {len(args.seeds)} seed(s)"
    )
    print(format_property_table(report.rows))
    violations = sum(getattr(row, "property_violations", 0) for row in report.rows)
    print(
        f"\n{spec.size()} cell(s): {report.executed} executed on {report.jobs} job(s), "
        f"{report.cache_hits} from cache; wall {report.wall_time_s:.2f}s; "
        f"{violations} violation(s)"
    )
    _print_results_dir(report)
    for row in report.rows:
        props = getattr(row, "properties", None)
        for verdict in props.violations() if props else ():
            print(
                f"VIOLATED T{verdict.theorem} ({verdict.name}) by {row.algorithm} "
                f"on {row.scenario} seed {row.seed}: {verdict.detail}",
                file=sys.stderr,
            )
    _print_failures(report)
    return 1 if (violations or report.failures) else 0


def _add_engine_options(parser: argparse.ArgumentParser, default_name: str) -> None:
    """The options every engine-backed subcommand shares."""
    parser.add_argument("--window", type=float, default=100.0, help="census tail window")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; 1 = serial, omitted or 0 = one per CPU",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="skip the JSONL result cache"
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="cache root (default REPRO_RESULTS_DIR or the repo's results/engine)",
    )
    parser.add_argument(
        "--name", default=default_name, help="experiment name (cache prefix)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventual leader election in asynchronous shared memory (DSN 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and scenarios").set_defaults(func=cmd_list)

    run_p = sub.add_parser("run", help="execute one run and print the report")
    run_p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="alg1")
    run_p.add_argument("--scenario", choices=sorted(SCENARIOS), default="nominal")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--n", type=int, default=None, help="override process count")
    run_p.add_argument("--horizon", type=float, default=None, help="override horizon")
    run_p.add_argument("--timeline", action="store_true", help="render the leadership timeline")
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser(
        "sweep", help="run an (algorithm x scenario x seed) grid through the engine"
    )
    sweep_p.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS), default=None)
    sweep_p.add_argument(
        "--scenarios", nargs="*", choices=sorted(SCENARIOS), default=["nominal"]
    )
    sweep_p.add_argument("--seeds", nargs="*", type=int, default=[0, 1])
    sweep_p.add_argument("--n", type=int, default=None, help="override process count")
    sweep_p.add_argument("--horizon", type=float, default=None, help="override horizon")
    _add_engine_options(sweep_p, default_name="sweep")
    sweep_p.set_defaults(func=cmd_sweep)

    check_p = sub.add_parser(
        "check",
        help="audit Theorems 1-4 over the adversarial scenario suite",
    )
    # nargs="+": an audit whose whole contract is a pass/fail verdict
    # must reject an accidentally emptied axis instead of green-lighting
    # a zero-cell grid.
    check_p.add_argument(
        "--algorithms", nargs="+", choices=sorted(ALGORITHMS), default=["alg1", "alg2"]
    )
    check_p.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=CHECK_SCENARIOS,
        help="scenario factories to audit (defaults to the adversarial suite)",
    )
    check_p.add_argument("--seeds", nargs="+", type=int, default=[0])
    _add_engine_options(check_p, default_name="check")
    check_p.set_defaults(func=cmd_check)

    cmp_p = sub.add_parser("compare", help="compare algorithms on one scenario")
    cmp_p.add_argument("--scenario", choices=sorted(SCENARIOS), default="nominal")
    cmp_p.add_argument("--algorithms", nargs="*", choices=sorted(ALGORITHMS), default=None)
    cmp_p.add_argument("--seeds", nargs="*", type=int, default=[0, 1])
    cmp_p.add_argument("--n", type=int, default=None)
    cmp_p.add_argument("--horizon", type=float, default=None)
    cmp_p.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
