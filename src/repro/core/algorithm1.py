"""Algorithm 1 (paper Figure 2): the write-efficient Omega.

Faithful line-by-line transcription of the paper's Figure 2.  Shared
state (all 1WnR atomic registers):

* ``SUSPICIONS[n][n]`` -- naturals; ``SUSPICIONS[j][k] = x`` means
  ``p_j`` has suspected ``p_k`` ``x`` times.  Row ``j`` owned by
  ``p_j``.  **Not critical** (AWB1 does not constrain accesses to it).
* ``PROGRESS[n]`` -- naturals; ``p_i`` increases ``PROGRESS[i]`` while
  it considers itself leader.  **Critical.**
* ``STOP[n]`` -- booleans; ``p_i`` sets ``STOP[i]`` true when it stops
  competing.  **Critical.**

Per the paper's Section 3.2 remark, a process keeps local copies of the
registers it owns and never issues shared *reads* for them -- only the
writes hit shared memory.  The task structure is:

* ``T1`` (``leader()``): return the least-suspected candidate
  (lines 1-5), as the ``_leader_query`` sub-generator;
* ``T2``: the repeat-forever loop (lines 6-12), :meth:`main_task`;
* ``T3``: the timer handler (lines 13-27), :meth:`timer_task`.

Properties proved in the paper and checked by this repo's tests and
benches: eventual common correct leader (Theorem 1); all shared
variables except ``PROGRESS[ell]`` bounded (Theorem 2); eventually a
single writer, always writing the same variable (Theorem 3);
write-optimality (Theorem 4 via Lemmas 5-6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.core.interfaces import (
    AlgorithmContext,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    Task,
    WriteReg,
)
from repro.core.lexmin import lexmin_pair
from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.memory import SharedMemory


@dataclass
class Algorithm1Shared:
    """Shared-register layout of Algorithm 1."""

    suspicions: RegisterMatrix  # SUSPICIONS[n][n], row-owned, non-critical
    progress: RegisterArray  # PROGRESS[n], self-owned, critical
    stop: RegisterArray  # STOP[n], self-owned, critical
    n: int


class WriteEfficientOmega(OmegaAlgorithm):
    """Per-process instance of the Figure 2 algorithm.

    Config keys (``ctx.config``):

    ``initial_candidates``
        Initial ``candidates_i`` set; any set containing ``i`` is legal
        (the paper allows any).  Default: all processes.
    """

    display_name = "alg1-write-efficient"
    uses_timer = True
    requires_assumption = "awb"
    claimed_theorems = frozenset({1, 2, 3, 4})

    def __init__(self, ctx: AlgorithmContext, shared: Algorithm1Shared) -> None:
        super().__init__(ctx, shared)
        i, n = self.pid, self.n
        #: Timeout policy (ablation knob; the paper's line 27 is "max"):
        #: "max"   -- max_k SUSPICIONS[i][k] + 1 (the paper's rule)
        #: "sum"   -- sum_k SUSPICIONS[i][k] + 1 (grows faster)
        #: "const" -- a fixed timeout (drops adaptivity; Lemma 2 breaks
        #:            whenever the constant under-shoots the leader's
        #:            write period -- the ablation bench shows it).
        self.timeout_policy: str = ctx.config.get("timeout_policy", "max")
        self.const_timeout: float = float(ctx.config.get("const_timeout", 2.0))
        if self.timeout_policy not in ("max", "sum", "const"):
            raise ValueError(f"unknown timeout_policy {self.timeout_policy!r}")
        initial = ctx.config.get("initial_candidates")
        #: candidates_i -- must contain i, and p_i never removes itself.
        self.candidates: Set[int] = set(initial) | {i} if initial is not None else set(range(n))
        #: last_i[k] -- greatest value read from PROGRESS[k]; arbitrary
        #: initial values are tolerated (self-stabilization, footnote 7),
        #: the None sentinel just forces a first-round refresh.
        self.last: List[Optional[int]] = [None] * n
        # Local copies of the registers p_i owns (Section 3.2 remark).
        self._my_progress: int = shared.progress.peek(i)
        self._my_stop: bool = bool(shared.stop.peek(i))
        self._my_suspicions: List[int] = [shared.suspicions.peek(i, k) for k in range(n)]

    # ------------------------------------------------------------------
    # Shared layout
    # ------------------------------------------------------------------
    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> Algorithm1Shared:
        """Lay out Figure 2's registers: ``SUSPICIONS`` (n x n),
        ``PROGRESS`` and ``STOP`` (critical -- AWB1 bounds them)."""
        return Algorithm1Shared(
            suspicions=memory.create_matrix("SUSPICIONS", n, initial=0, critical=False),
            progress=memory.create_array("PROGRESS", n, initial=0, critical=True),
            stop=memory.create_array("STOP", n, initial=True, critical=True),
            n=n,
        )

    # ------------------------------------------------------------------
    # Task T1 -- leader() (lines 1-5)
    # ------------------------------------------------------------------
    def _leader_query(self) -> Task:
        """One ``leader()`` invocation; returns the elected identity.

        Reads ``SUSPICIONS[j][k]`` for every candidate ``k`` and every
        ``j != i`` (own row comes from the local copy).
        """
        ops = 0
        susp: Dict[int, int] = {}
        for k in sorted(self.candidates):
            total = self._my_suspicions[k]
            for j in range(self.n):
                if j == self.pid:
                    continue
                total += yield ReadReg(self.shared.suspicions.register(j, k))  # line 3
                ops += 1
            susp[k] = total
        _, leader = lexmin_pair((susp[k], k) for k in susp)  # line 4
        self._note_leader_invocation(ops)
        return leader  # line 5

    def leader_query(self):
        """Public task ``T1`` (see :class:`OmegaAlgorithm.leader_query`)."""
        return self._leader_query()

    # ------------------------------------------------------------------
    # Task T2 -- main loop (lines 6-12)
    # ------------------------------------------------------------------
    def main_task(self) -> Task:
        """Task T2 (lines 6-12): while leader, bump ``PROGRESS``;
        maintain ``STOP`` on gaining/losing the leadership."""
        while True:  # line 6: repeat forever
            ld = yield from self._leader_query()
            while ld == self.pid:  # line 7
                self._my_progress += 1
                yield WriteReg(self.shared.progress.register(self.pid), self._my_progress)  # line 8
                if self._my_stop:  # line 9
                    self._my_stop = False
                    yield WriteReg(self.shared.stop.register(self.pid), False)
                ld = yield from self._leader_query()  # re-evaluate the while guard
            if not self._my_stop:  # line 11
                self._my_stop = True
                yield WriteReg(self.shared.stop.register(self.pid), True)

    # ------------------------------------------------------------------
    # Task T3 -- timer handler (lines 13-27)
    # ------------------------------------------------------------------
    def timer_task(self) -> Task:
        """Task T3 (lines 13-27): check every peer's progress, suspect
        the silent candidates, re-arm the timer with line 27's rule."""
        i, n = self.pid, self.n
        for k in range(n):  # line 14
            if k == i:
                continue
            stop_k = yield ReadReg(self.shared.stop.register(k))  # line 15
            progress_k = yield ReadReg(self.shared.progress.register(k))  # line 16
            if progress_k != self.last[k]:  # line 17
                self.candidates.add(k)  # line 18
                self.last[k] = progress_k  # line 19
            elif stop_k:  # line 20
                self.candidates.discard(k)  # line 21
            elif k in self.candidates:  # line 22
                self._my_suspicions[k] += 1
                yield WriteReg(self.shared.suspicions.register(i, k), self._my_suspicions[k])  # line 23
                self.candidates.discard(k)  # line 24
        yield SetTimer(self._next_timeout())  # line 27

    def _next_timeout(self) -> float:
        """Line 27: ``max_k SUSPICIONS[i][k] + 1`` over the own row.

        Only registers owned by ``p_i`` are involved, so this uses the
        local copies -- exactly the paper's observation that the timeout
        is computable without shared reads.  Alternative policies are
        ablation knobs (see ``timeout_policy`` in ``__init__``).
        """
        if self.timeout_policy == "sum":
            return float(sum(self._my_suspicions) + 1)
        if self.timeout_policy == "const":
            return self.const_timeout
        return float(max(self._my_suspicions) + 1)

    def initial_timeout(self) -> Optional[float]:
        """First timer arming, by the same line-27 rule."""
        return self._next_timeout()

    # ------------------------------------------------------------------
    # Observer
    # ------------------------------------------------------------------
    def peek_leader(self) -> int:
        """Uncounted ``leader()`` evaluated on current register values."""
        pairs = []
        for k in sorted(self.candidates):
            total = sum(self.shared.suspicions.peek(j, k) for j in range(self.n))
            pairs.append((total, k))
        return lexmin_pair(pairs)[1]


__all__ = ["Algorithm1Shared", "WriteEfficientOmega"]
