"""Operation vocabulary and the algorithm/process interface.

Algorithms are written as generator coroutines that *yield operations*
(one shared-memory access or local step at a time -- the paper's notion
of a step) and receive results through ``send``.  The runner applies
each operation at a virtual-time instant, which is the operation's
linearization point, then delays the process per its step-delay model.

This style keeps algorithm code close to the paper's pseudo-code (each
numbered line maps to one or two yields) while giving the scheduler
total control over interleaving -- the property every experiment relies
on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Union,
)

from repro.memory.mwmr import MultiWriterRegister
from repro.memory.register import AtomicRegister

Register = Union[AtomicRegister, MultiWriterRegister]

#: A process task: yields operations, receives operation results.
Task = Generator["Operation", Any, Any]


# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReadReg:
    """Atomically read ``register``; the read value is sent back."""

    register: Register


@dataclass(frozen=True, slots=True)
class WriteReg:
    """Atomically write ``value`` to ``register`` (owner-checked)."""

    register: Register
    value: Any


@dataclass(frozen=True, slots=True)
class FetchAdd:
    """Atomic fetch&add on a multi-writer register; old value sent back."""

    register: MultiWriterRegister
    amount: int = 1


@dataclass(frozen=True, slots=True)
class SetTimer:
    """Arm this process's timer to timeout value ``timeout``.

    The realized duration is decided by the process's
    :class:`~repro.timers.awb.TimerBehavior` (assumption AWB2).
    """

    timeout: float


@dataclass(frozen=True, slots=True)
class LocalStep:
    """A local computation step: consumes scheduling delay, touches no
    shared memory.  Used by the timer-free variant's counting loop."""


Operation = Union[ReadReg, WriteReg, FetchAdd, SetTimer, LocalStep]


# ----------------------------------------------------------------------
# Algorithm interface
# ----------------------------------------------------------------------
@dataclass
class AlgorithmContext:
    """Everything a per-process algorithm instance may depend on.

    Attributes
    ----------
    pid / n:
        This process's identity and the system size.
    clock:
        Read-only virtual clock (observer use only -- the paper's
        processes have no global clock; algorithms must not branch on
        it.  Mutants *do*, which is the point of mutants).
    rng:
        Per-process random stream for tie-breaking randomness if an
        algorithm wants any (none of the paper's algorithms do).
    config:
        Free-form algorithm options (e.g. initial candidate sets).
    """

    pid: int
    n: int
    clock: Callable[[], float]
    rng: Any
    config: Dict[str, Any] = field(default_factory=dict)


class OmegaAlgorithm(abc.ABC):
    """Base class for per-process Omega algorithm instances.

    Lifecycle: the runner calls :meth:`create_shared` once, constructs
    one instance per process, arms initial timers from
    :meth:`initial_timeout`, then drives :meth:`main_task` (the paper's
    task ``T2``) and, on every timer expiry, a fresh :meth:`timer_task`
    (task ``T3``) -- interleaved round-robin inside the process.
    ``leader()`` (task ``T1``) appears in two forms: as part of
    ``main_task``'s own reads (counted), and as the uncounted observer
    :meth:`peek_leader` used by the harness to sample outputs.
    """

    #: Human-readable name used in reports.
    display_name: str = "omega"
    #: Whether the algorithm arms timers (the step-counter variant doesn't).
    uses_timer: bool = True
    #: Weakest environment-assumption class under which the claimed
    #: theorems are proven: ``"awb"`` (assumptions AWB1+AWB2) or
    #: ``"ev-sync"`` (full eventual synchrony, strictly stronger).  The
    #: property checkers (:mod:`repro.props`) only *expect* a theorem to
    #: hold when the scenario declares at least this assumption class.
    requires_assumption: str = "awb"
    #: Paper theorems (1-4) the algorithm claims under that assumption:
    #: 1 eventual common correct leader, 2 all shared variables except
    #: ``PROGRESS[ell]`` bounded, 3 eventually a single writer of a
    #: single variable, 4 write-optimality (exactly one forever-writer).
    claimed_theorems: FrozenSet[int] = frozenset({1})

    def __init__(self, ctx: AlgorithmContext, shared: Any) -> None:
        self.ctx = ctx
        self.pid = ctx.pid
        self.n = ctx.n
        self.shared = shared
        #: Completed leader() invocations and the largest op count one
        #: needed -- the Termination property's structural witness.
        self.leader_invocations = 0
        self.max_leader_ops = 0

    # -- shared layout --------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def create_shared(cls, memory: Any, n: int, config: Dict[str, Any]) -> Any:
        """Create the algorithm's shared registers; returns the layout."""

    # -- tasks ----------------------------------------------------------
    @abc.abstractmethod
    def main_task(self) -> Task:
        """The paper's task ``T2`` -- an infinite loop."""

    def timer_task(self) -> Optional[Task]:
        """A fresh ``T3`` body for one timer expiry (``None`` if unused)."""
        return None

    def extra_tasks(self) -> List[Task]:
        """Additional perpetual tasks (the step-counter variant's loop)."""
        return []

    def initial_timeout(self) -> Optional[float]:
        """Timeout to arm at start-up, or ``None``."""
        return 1.0 if self.uses_timer else None

    def leader_query(self) -> Task:
        """Task ``T1``: one counted ``leader()`` invocation, usable as a
        sub-generator (``ld = yield from alg.leader_query()``) by the
        algorithm itself or by an application built on the oracle."""
        raise NotImplementedError(f"{type(self).__name__} does not expose leader_query")

    # -- observation ----------------------------------------------------
    @abc.abstractmethod
    def peek_leader(self) -> int:
        """Observer ``leader()``: computed from current register values
        without counting accesses.  Must satisfy Validity."""

    def _note_leader_invocation(self, ops: int) -> None:
        """Record one completed in-algorithm ``leader()`` invocation."""
        self.leader_invocations += 1
        if ops > self.max_leader_ops:
            self.max_leader_ops = ops


__all__ = [
    "AlgorithmContext",
    "FetchAdd",
    "LocalStep",
    "OmegaAlgorithm",
    "Operation",
    "ReadReg",
    "Register",
    "SetTimer",
    "Task",
    "WriteReg",
]
