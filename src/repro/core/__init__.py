"""The paper's contribution: Omega algorithms for ``AS[n, AWB]``.

* :class:`~repro.core.algorithm1.WriteEfficientOmega` -- paper Figure 2:
  after stabilization a single process writes the shared memory and all
  shared variables except one entry of ``PROGRESS`` are bounded.
* :class:`~repro.core.algorithm2.BoundedOmega` -- paper Figure 5: all
  shared variables bounded (boolean hand-shake), every correct process
  writes forever (unavoidable, Theorem 5).
* :mod:`~repro.core.variants` -- Section 3.5: the nWnR (multi-writer)
  suspicion-vector variant and the timer-free step-counter variant.
* :mod:`~repro.core.baseline` -- an eventually-synchronous baseline in
  the style of Guerraoui & Raynal [13], the only prior shared-memory
  Omega the paper cites.
* :mod:`~repro.core.mutants` -- deliberately broken variants used to
  reproduce the lower bounds (Lemmas 5 and 6) as falsification
  experiments.
* :mod:`~repro.core.runner` -- assembles kernel, memory, timers,
  crashes and an algorithm into a reproducible run.
"""

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.algorithm2 import BoundedOmega
from repro.core.baseline import EventuallySynchronousOmega
from repro.core.interfaces import (
    AlgorithmContext,
    FetchAdd,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    WriteReg,
)
from repro.core.lexmin import lexmin_pair
from repro.core.runner import Run, RunResult
from repro.core.variants import MultiWriterOmega, StepCounterOmega

__all__ = [
    "AlgorithmContext",
    "BoundedOmega",
    "EventuallySynchronousOmega",
    "FetchAdd",
    "LocalStep",
    "MultiWriterOmega",
    "OmegaAlgorithm",
    "ReadReg",
    "Run",
    "RunResult",
    "SetTimer",
    "StepCounterOmega",
    "WriteEfficientOmega",
    "WriteReg",
    "lexmin_pair",
]
