"""Exploration of the paper's open question.

Section 5 leaves open: *"Is it possible to design a leader algorithm in
which there is a time after which the eventual leader is not required
to read the shared memory?"* (Algorithm 1 is only quasi-optimal on the
read side: everybody, leader included, reads ``SUSPICIONS`` forever.)

:class:`LazyLeaderOmega` is the natural first attempt: once a process
has seen itself win ``lazy_after`` consecutive ``leader()``
evaluations, it stops reading -- it answers ``leader()`` from its
cached verdict and skips the monitoring reads, while still *writing*
``PROGRESS`` (Lemma 5 forbids it to stop writing).

The experiments show exactly where this attempt stands:

* under **stable** conditions it works and delivers the prize: the
  leader's read traffic drops to zero after the confidence threshold;
* under **post-stabilization disturbance** (the leader is stalled long
  enough for followers to suspect and move on) it fails permanently:
  the lazy leader can never learn it was demoted, so it keeps
  outputting itself -- Eventual Leadership is violated forever.

So the naive approach does not answer the open question positively: a
leader that reads nothing cannot detect demotion, and in the AWB model
demotion is always possible while suspicion counts can still shift.
This is evidence (not proof) that the answer is "no" without either a
stronger model or a mechanism letting followers *write into the
leader's face* something it must see -- which is again a read.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import LocalStep, SetTimer, Task


class LazyLeaderOmega(WriteEfficientOmega):
    """Algorithm 1 plus a leader-side read-elision heuristic.

    Config keys:

    ``lazy_after`` (default 25)
        Consecutive self-elections after which the process stops
        reading.  Unlike the test mutants this is a *candidate
        algorithm*: it consults no clock and uses only information the
        paper's model provides.
    """

    display_name = "alg1-lazy-leader"

    def __init__(self, ctx, shared) -> None:
        super().__init__(ctx, shared)
        self.lazy_after: int = int(ctx.config.get("lazy_after", 25))
        self._confidence = 0
        #: Once true, this process never reads shared memory again.
        self.lazy = False

    def _leader_query(self) -> Task:
        if self.lazy:
            yield LocalStep()  # an invocation still takes a step
            self._note_leader_invocation(0)
            return self.pid
        leader = yield from super()._leader_query()
        if leader == self.pid:
            self._confidence += 1
            if self._confidence >= self.lazy_after:
                self.lazy = True
        else:
            self._confidence = 0
        return leader

    def timer_task(self) -> Optional[Task]:
        """Algorithm 1's T3 until lazy; read-free stepping after."""
        if not self.lazy:
            return super().timer_task()
        return self._lazy_timer_task()

    def _lazy_timer_task(self) -> Task:
        # No reads: burn the monitoring steps and re-arm.  Suspicions
        # are frozen (they are reads away), so the timeout is whatever
        # the local copies last said.
        for k in range(self.n):
            if k != self.pid:
                yield LocalStep()
        yield SetTimer(self._next_timeout())

    def peek_leader(self) -> int:
        """Itself once lazy (the committed answer), else Algorithm 1's."""
        if self.lazy:
            return self.pid
        return super().peek_leader()


__all__ = ["LazyLeaderOmega"]
