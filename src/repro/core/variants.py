"""Section 3.5 variants of Algorithm 1.

Two refinements the paper sketches in prose:

* **nWnR registers** (:class:`MultiWriterOmega`): "each column
  ``SUSPICIONS[.][j]`` can be replaced by a single ``SUSPICIONS[j]``",
  so the ``n x n`` matrix becomes a length-``n`` vector of multi-writer
  counters and ``leader()`` reads ``|candidates|`` registers instead of
  ``n * |candidates|``.
* **No local clocks** (:class:`StepCounterOmega`): the timer is
  replaced by a counting loop in which each decrement "takes at least
  one time unit" -- satisfied here because every scheduled step has a
  positive delay.  Task ``T3``'s body is folded into the perpetual
  counting task exactly as the paper's replacement code shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.core.interfaces import (
    AlgorithmContext,
    FetchAdd,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    Task,
    WriteReg,
)
from repro.core.algorithm1 import Algorithm1Shared, WriteEfficientOmega
from repro.core.lexmin import lexmin_pair
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory
from repro.memory.mwmr import MultiWriterRegister


@dataclass
class MultiWriterShared:
    """Shared layout of the nWnR variant."""

    suspicions: List[MultiWriterRegister]  # SUSPICIONS[n], any writer
    progress: RegisterArray  # PROGRESS[n], self-owned, critical
    stop: RegisterArray  # STOP[n], self-owned, critical
    n: int


class MultiWriterOmega(OmegaAlgorithm):
    """Algorithm 1 over a multi-writer suspicion *vector*.

    Config keys:

    ``atomic_increment`` (default ``True``)
        Use the atomic ``fetch&add`` primitive.  When ``False`` the
        increment is the racy two-step read-then-write that plain nWnR
        read/write registers give; concurrent increments may be lost.
        Lost increments only slow suspicion growth (they never inflate
        the AWB1 process's count), so the election still stabilizes --
        a scenario covered by tests.

    Deviation note: the paper's line 27 timeout reads only registers the
    process owns.  With a shared vector there is no owned row, so the
    timeout is ``max + 1`` over the suspicion values this process has
    most recently *seen* (reads it performs anyway).  Seen values grow
    whenever true suspicions grow, which is all Lemma 2's argument
    needs.
    """

    display_name = "alg1-nwnr"
    uses_timer = True
    requires_assumption = "awb"
    claimed_theorems = frozenset({1, 2, 3, 4})

    def __init__(self, ctx: AlgorithmContext, shared: MultiWriterShared) -> None:
        super().__init__(ctx, shared)
        n = self.n
        initial = ctx.config.get("initial_candidates")
        self.candidates: Set[int] = set(initial) | {self.pid} if initial is not None else set(range(n))
        self.last: List[Optional[int]] = [None] * n
        self.atomic_increment: bool = bool(ctx.config.get("atomic_increment", True))
        self._my_progress: int = shared.progress.peek(self.pid)
        self._my_stop: bool = bool(shared.stop.peek(self.pid))
        self._seen_susp: List[int] = [int(reg.peek()) for reg in shared.suspicions]

    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> MultiWriterShared:
        """Lay out the nWnR variant: one multi-writer ``SUSPICIONS[k]``
        counter per candidate instead of the n x n 1WnR matrix."""
        return MultiWriterShared(
            suspicions=[memory.create_mwmr(f"SUSPICIONS[{k}]", initial=0) for k in range(n)],
            progress=memory.create_array("PROGRESS", n, initial=0, critical=True),
            stop=memory.create_array("STOP", n, initial=True, critical=True),
            n=n,
        )

    # ------------------------------------------------------------------
    def _leader_query(self) -> Task:
        ops = 0
        susp: Dict[int, int] = {}
        for k in sorted(self.candidates):
            value = yield ReadReg(self.shared.suspicions[k])
            ops += 1
            self._seen_susp[k] = value
            susp[k] = value
        _, leader = lexmin_pair((susp[k], k) for k in susp)
        self._note_leader_invocation(ops)
        return leader

    def leader_query(self):
        """Public task ``T1`` (see :class:`OmegaAlgorithm.leader_query`)."""
        return self._leader_query()

    def main_task(self) -> Task:
        """Task T2, unchanged from Algorithm 1 (only T1/T3 differ)."""
        i = self.pid
        while True:
            ld = yield from self._leader_query()
            while ld == i:
                self._my_progress += 1
                yield WriteReg(self.shared.progress.register(i), self._my_progress)
                if self._my_stop:
                    self._my_stop = False
                    yield WriteReg(self.shared.stop.register(i), False)
                ld = yield from self._leader_query()
            if not self._my_stop:
                self._my_stop = True
                yield WriteReg(self.shared.stop.register(i), True)

    def timer_task(self) -> Task:
        """Task T3 with suspicion bumps via ``fetch&add`` on the shared
        counters (or the racy read-then-write under the ablation knob)."""
        i, n = self.pid, self.n
        for k in range(n):
            if k == i:
                continue
            stop_k = yield ReadReg(self.shared.stop.register(k))
            progress_k = yield ReadReg(self.shared.progress.register(k))
            if progress_k != self.last[k]:
                self.candidates.add(k)
                self.last[k] = progress_k
            elif stop_k:
                self.candidates.discard(k)
            elif k in self.candidates:
                if self.atomic_increment:
                    old = yield FetchAdd(self.shared.suspicions[k], 1)
                    self._seen_susp[k] = old + 1
                else:
                    current = yield ReadReg(self.shared.suspicions[k])
                    yield WriteReg(self.shared.suspicions[k], current + 1)
                    self._seen_susp[k] = current + 1
                self.candidates.discard(k)
        yield SetTimer(self._next_timeout())

    def _next_timeout(self) -> float:
        """Line 27's rule over the last-seen shared counter values."""
        return float(max(self._seen_susp) + 1)

    def initial_timeout(self) -> Optional[float]:
        """First timer arming, by the same line-27 rule."""
        return self._next_timeout()

    def peek_leader(self) -> int:
        """Uncounted ``leader()`` on the current counter values."""
        pairs = [(int(self.shared.suspicions[k].peek()), k) for k in sorted(self.candidates)]
        return lexmin_pair(pairs)[1]


class StepCounterOmega(WriteEfficientOmega):
    """Timer-free Algorithm 1 (Section 3.5, "Eliminating the local clocks").

    Task ``T3`` becomes a perpetual counting loop::

        timer_i <- 1
        while true:
            timer_i <- timer_i - 1          # costs >= 1 time unit
            if timer_i = 0:
                <lines 14-26 of Figure 2>
                timer_i <- max_k SUSPICIONS[i][k] + 1

    The ">= one time unit per decrement" premise holds because every
    yielded :class:`LocalStep` is scheduled with the process's positive
    step delay.  The realized "duration" of a countdown from ``x`` is
    then the sum of ``x`` step delays -- asymptotically well-behaved as
    long as step delays do not decay to zero, which no delay model here
    allows.
    """

    display_name = "alg1-step-counter"
    uses_timer = False

    def timer_task(self) -> Optional[Task]:
        """No timer service: T3 lives inside the counting task."""
        return None

    def initial_timeout(self) -> Optional[float]:
        """Never armed -- the variant eliminates the local clocks."""
        return None

    def extra_tasks(self) -> List[Task]:
        """The perpetual countdown task replacing the timer."""
        return [self._counting_task()]

    def _counting_task(self) -> Task:
        countdown = 1.0
        while True:
            yield LocalStep()  # timer_i <- timer_i - 1 (>= 1 time unit)
            countdown -= 1
            if countdown <= 0:
                yield from self._check_body()
                countdown = self._next_timeout()

    def _check_body(self) -> Task:
        """Lines 14-26 of Figure 2 (identical to the timer handler, sans
        the final SetTimer)."""
        i, n = self.pid, self.n
        for k in range(n):
            if k == i:
                continue
            stop_k = yield ReadReg(self.shared.stop.register(k))
            progress_k = yield ReadReg(self.shared.progress.register(k))
            if progress_k != self.last[k]:
                self.candidates.add(k)
                self.last[k] = progress_k
            elif stop_k:
                self.candidates.discard(k)
            elif k in self.candidates:
                self._my_suspicions[k] += 1
                yield WriteReg(self.shared.suspicions.register(i, k), self._my_suspicions[k])
                self.candidates.discard(k)


__all__ = ["MultiWriterOmega", "MultiWriterShared", "StepCounterOmega"]
