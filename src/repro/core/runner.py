"""Run assembly: algorithm + kernel + memory + timers + crash plan.

A :class:`Run` wires one algorithm class into the substrates and drives
it to a horizon; the outcome is a :class:`RunResult` bundling the trace,
the shared-memory access log, and everything the analysis layer needs.
Every run is a pure function of its configuration and seed.

Execution model
---------------
Each process multiplexes its tasks (``T2``, ``T3`` instances, extras)
round-robin, one *operation* per scheduled step -- the paper's "step"
granularity.  After each operation the process is re-scheduled after a
delay drawn from the run's step-delay model; that model is where
asynchrony and assumption AWB1 live.  Timer expirations enqueue a fresh
``T3`` task.  Crashes stop a process between steps, permanently.

When a :class:`~repro.memory.disk.Disk` is attached, every register
operation becomes an interval: the process blocks for the sampled
latency and the operation takes effect at the sampled linearization
point inside the interval (the SAN deployment of Section 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.interfaces import (
    AlgorithmContext,
    FetchAdd,
    LocalStep,
    OmegaAlgorithm,
    Operation,
    ReadReg,
    SetTimer,
    Task,
    WriteReg,
)
from repro.memory.backend import create_memory
from repro.memory.disk import Disk
from repro.memory.emulated import EmulatedMemory
from repro.memory.memory import SharedMemory
from repro.sim.crash import CrashPlan
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import StepDelayModel, UniformDelay
from repro.sim.tracing import RunTrace
from repro.timers.awb import AsymptoticallyWellBehavedTimer, TimerBehavior
from repro.timers.functions import LinearF
from repro.timers.service import TimerService


@dataclass
class _TaskState:
    """One task coroutine plus the value to send on its next turn."""

    gen: Task
    name: str
    inbox: Any = None
    started: bool = False


class ProcessRuntime:
    """Drives one process: task multiplexing, stepping, crash, timers.

    The step loop is the simulation's hottest code.  Everything it
    touches per operation is pre-bound at construction time: the step
    callback itself (one bound method, reused by every reschedule
    instead of a fresh closure per step), the delay model and kernel
    entry points, and an exact-type operation dispatch table
    (``type(op) -> handler``) that replaces the old ``isinstance``
    ladder.  Operation classes are final frozen dataclasses
    (:mod:`repro.core.interfaces`), so exact-type dispatch is safe.
    """

    def __init__(self, run: "Run", pid: int, algorithm: OmegaAlgorithm) -> None:
        self.run = run
        self.pid = pid
        self.algorithm = algorithm
        self.tasks: deque[_TaskState] = deque()
        self.tasks.append(_TaskState(algorithm.main_task(), "T2"))
        for idx, gen in enumerate(algorithm.extra_tasks()):
            self.tasks.append(_TaskState(gen, f"extra{idx}"))
        self.crashed = False
        self.blocked = False
        self.steps_taken = 0
        self.timer_expirations = 0
        # Pre-bound hot-path collaborators.
        self._sim = run.sim
        self._step_cb = self.step
        self._delay_of = run.delay_model.delay
        self._schedule_after = run.sim.schedule_after
        self._is_crashed_at = run.crash_plan.is_crashed
        # Exact-type operation dispatch.  A handler returns True when it
        # schedules the process's continuation itself (the disk and
        # emulated-memory paths, whose operations are intervals).
        if run.disk is not None:
            read_op, write_op = self._op_read_disk, self._op_write_disk
            fetch_op = self._op_fetch_add
        elif isinstance(run.memory, EmulatedMemory):
            read_op, write_op = self._op_read_emulated, self._op_write_emulated
            fetch_op = self._op_fetch_add_emulated
        else:
            read_op, write_op = self._op_read, self._op_write
            fetch_op = self._op_fetch_add
        self._dispatch: Dict[type, Callable[[_TaskState, Any], Any]] = {
            ReadReg: read_op,
            WriteReg: write_op,
            SetTimer: self._op_set_timer,
            LocalStep: self._op_local,
            FetchAdd: fetch_op,
        }

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the initial timer and schedule the first step."""
        timeout = self.algorithm.initial_timeout()
        if timeout is not None:
            self.run.timer_service.set_timer(self.pid, timeout, self.on_timer)
        self._schedule_next_step()

    def crash(self) -> None:
        """Crash-stop: no further step or timer action, ever."""
        self.crashed = True
        self.run.timer_service.cancel(self.pid)

    def on_timer(self) -> None:
        """Timer expiry: enqueue a fresh ``T3`` task."""
        if self.crashed:
            return
        self.timer_expirations += 1
        handle = self.run.timer_service.active_timer(self.pid)
        if handle is not None:
            self.run.trace.record_timer_fired(
                self._sim._now, self.pid, handle.fires_at - handle.set_at
            )
        gen = self.algorithm.timer_task()
        if gen is not None:
            self.tasks.append(_TaskState(gen, "T3"))

    # ------------------------------------------------------------------
    def _schedule_next_step(self) -> None:
        delay = self._delay_of(self.pid, self._sim._now)
        if delay <= 0:
            raise ValueError(f"step-delay model returned non-positive delay {delay}")
        self._schedule_after(delay, self._step_cb, kind="step", pid=self.pid)

    def step(self) -> None:
        """Execute one operation of the front task."""
        if self.crashed or self.blocked:
            return
        if self._is_crashed_at(self.pid, self._sim._now):
            self.crash()
            return
        tasks = self.tasks
        if not tasks:
            return  # all tasks exhausted; process is passive (not crashed)
        task = tasks[0]
        try:
            if task.started:
                op = task.gen.send(task.inbox)
            else:
                task.started = True
                op = next(task.gen)
        except StopIteration:
            tasks.popleft()
            self._schedule_next_step()
            return
        task.inbox = None
        self.steps_taken += 1
        handler = self._dispatch.get(op.__class__)
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unknown operation {op!r}")
        if handler(task, op):
            return  # the disk path schedules the continuation itself
        tasks.rotate(-1)
        self._schedule_next_step()

    # ------------------------------------------------------------------
    # Operation handlers (exact-type dispatch targets)
    # ------------------------------------------------------------------
    def _op_read(self, task: _TaskState, op: ReadReg) -> None:
        task.inbox = op.register.read(self.pid)

    def _op_write(self, task: _TaskState, op: WriteReg) -> None:
        op.register.write(self.pid, op.value)

    def _op_fetch_add(self, task: _TaskState, op: FetchAdd) -> None:
        task.inbox = op.register.fetch_add(self.pid, op.amount)

    def _op_local(self, task: _TaskState, op: LocalStep) -> None:
        pass

    def _op_set_timer(self, task: _TaskState, op: SetTimer) -> None:
        run = self.run
        run.timer_service.set_timer(self.pid, op.timeout, self.on_timer)
        run.trace.record_timer_set(self._sim._now, self.pid, op.timeout)

    def _op_read_disk(self, task: _TaskState, op: ReadReg) -> bool:
        self._apply_via_disk(task, op)
        return True

    def _op_write_disk(self, task: _TaskState, op: WriteReg) -> bool:
        self._apply_via_disk(task, op)
        return True

    def _apply_via_disk(self, task: _TaskState, op: Operation) -> None:
        """Interval semantics: block, linearize mid-interval, resume."""
        run = self.run
        disk = run.disk
        assert disk is not None
        sample = disk.sample(self.pid)
        inv = run.sim.now
        lin_t = inv + sample.lin_offset
        resp_t = inv + sample.resp_offset
        cell: Dict[str, Any] = {}
        register = op.register

        def linearize() -> None:
            # An in-flight operation takes effect even if the invoker
            # crashed meanwhile (it already left the process).
            if isinstance(op, WriteReg):
                register.write(self.pid, op.value)
                disk.note_write(self.pid, register.name, inv, lin_t, resp_t)
            else:
                cell["value"] = register.read(self.pid)
                disk.note_read(self.pid, register.name, inv, lin_t, resp_t)

        def resume() -> None:
            self.blocked = False
            if self.crashed:
                return
            task.inbox = cell.get("value")
            self.tasks.rotate(-1)
            self._schedule_next_step()

        self.blocked = True
        run.sim.schedule_after(sample.lin_offset, linearize, kind="disk-lin", pid=self.pid)
        run.sim.schedule_after(sample.resp_offset, resume, kind="disk-resp", pid=self.pid)

    # ------------------------------------------------------------------
    # Emulated-memory handlers (ABD quorum phases; interval semantics)
    # ------------------------------------------------------------------
    def _emulated_resume(self, task: _TaskState) -> Callable[[Any], None]:
        """Completion callback: unblock, deliver the value, reschedule.

        Quorum operations outlive their invoker exactly like in-flight
        disk operations: replica state already changed, so a write
        completes even if the writer crashed mid-phase -- only the
        process's continuation is suppressed.
        """

        def resume(value: Any) -> None:
            self.blocked = False
            if self.crashed:
                return
            task.inbox = value
            self.tasks.rotate(-1)
            self._schedule_next_step()

        return resume

    def _op_read_emulated(self, task: _TaskState, op: ReadReg) -> bool:
        self.blocked = True
        self.run.memory.emu_read(self.pid, op.register, self._emulated_resume(task))
        return True

    def _op_write_emulated(self, task: _TaskState, op: WriteReg) -> bool:
        self.blocked = True
        self.run.memory.emu_write(self.pid, op.register, op.value, self._emulated_resume(task))
        return True

    def _op_fetch_add_emulated(self, task: _TaskState, op: FetchAdd) -> bool:
        self.blocked = True
        self.run.memory.emu_fetch_add(self.pid, op.register, op.amount, self._emulated_resume(task))
        return True


# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Everything a finished run produced."""

    algorithm_name: str
    n: int
    horizon: float
    seed: int
    trace: RunTrace
    memory: SharedMemory
    sim: Simulator
    crash_plan: CrashPlan
    algorithms: List[OmegaAlgorithm]
    timer_service: TimerService
    disk: Optional[Disk]
    snapshots: List[Tuple[float, Tuple[Tuple[str, Any], ...]]] = field(default_factory=list)
    #: Which memory backend produced this run ("shared" or "emulated").
    memory_backend: str = "shared"

    # Convenience delegations to the analysis layer --------------------
    def stabilization(self, margin: float = 0.0) -> "Any":
        """Eventual-leadership verdict (see :mod:`repro.analysis.omega_props`)."""
        from repro.analysis.omega_props import check_eventual_leadership

        return check_eventual_leadership(self.trace, self.crash_plan, self.horizon, margin=margin)

    def final_leaders(self) -> Dict[int, int]:
        """Last sampled ``leader()`` output of each live process.

        "Last" is by sample *time*.  Simulation-produced traces append
        samples in non-decreasing time order, so a single pass taking
        the last occurrence per pid is equivalent to the old
        stable-sort-then-scan -- the monotonicity is verified on the fly
        and the sort only happens in the (never simulator-produced)
        out-of-order case.
        """
        samples = self.trace.leader_samples()
        prev = float("-inf")
        for t, _, _ in samples:
            if t < prev:
                samples = sorted(samples, key=lambda s: s[0])
                break
            prev = t
        latest: Dict[int, int] = {}
        for _, pid, leader in samples:
            latest[pid] = leader
        is_correct = self.crash_plan.is_correct
        return {pid: leader for pid, leader in latest.items() if is_correct(pid)}

    def audit_consistency(self) -> "Any":
        """Consistency audit of the recorded emulated history.

        Returns a
        :class:`~repro.memory.linearizability.LinearizabilityReport`
        checked at the run's own consistency level (atomic histories
        against full linearizability, regular ones against regularity),
        or ``None`` when there is nothing to audit -- a non-emulated
        backend, or a run whose emulation config left
        ``record_history`` off.
        """
        mem = self.memory
        if not isinstance(mem, EmulatedMemory) or not mem.config.record_history:
            return None
        from repro.memory.linearizability import (
            check_atomic_history,
            check_regular_history,
        )

        history = mem.recorded_history()
        if mem.config.consistency == "atomic":
            return check_atomic_history(history)
        return check_regular_history(history)

    def check_properties(
        self,
        *,
        assumption: str = "awb",
        margin: float = 0.0,
        window: float = 100.0,
    ) -> "Any":
        """Theorem 1-4 audit of this run (see :mod:`repro.props`)."""
        from repro.props.report import check_properties

        return check_properties(
            self, assumption=assumption, margin=margin, window=window
        )

    def summarize(
        self,
        *,
        scenario_name: str = "",
        margin: float = 0.0,
        window: float = 100.0,
        assumption: str = "awb",
    ) -> "Any":
        """Condense this result into a compact, picklable
        :class:`~repro.engine.summary.RunSummary` -- the in-place path
        the parallel engine's workers use instead of shipping the whole
        result bundle across process boundaries."""
        from repro.engine.summary import summarize_run

        return summarize_run(
            self,
            scenario_name=scenario_name,
            margin=margin,
            window=window,
            assumption=assumption,
        )


class Run:
    """A configured, reproducible execution.

    Parameters
    ----------
    algorithm_cls:
        The :class:`OmegaAlgorithm` subclass to run.
    n:
        Number of processes (>= 2).
    seed:
        Run seed; every random stream derives from it.
    horizon:
        Virtual-time end of the run.
    delay_model:
        Step-delay model; defaults to mild uniform asynchrony.
    timer_behaviors:
        Per-pid timer behaviours; default is an immediately
        well-behaved AWB timer with ``f(x) = x`` (no chaotic prefix).
    crash_plan:
        Defaults to fault-free.
    sample_interval:
        Observer ``leader()`` sampling period.
    snapshot_interval:
        If set, record full shared-memory snapshots at this period
        (Theorem 5 harness).
    disk:
        Optional SAN model; when present every register access is an
        interval operation.
    scramble:
        Optional hook ``scramble(memory, rng)`` run after layout
        creation and before instances are built -- used to set arbitrary
        initial register values (self-stabilization, footnote 7).
    algo_config:
        Passed to the algorithm via ``AlgorithmContext.config``.
    log_reads:
        Forwarded to :class:`SharedMemory`.
    trace_events:
        Forwarded to :class:`~repro.sim.kernel.Simulator`; disable to
        skip per-kind event accounting on the hot path (the engine's
        low-overhead run mode).
    memory:
        Memory backend name (:data:`repro.memory.backend.BACKENDS`):
        ``"shared"`` (instantaneous registers, the default) or
        ``"emulated"`` (ABD quorum emulation over message passing, in
        which case every register access becomes an interval operation
        like the disk path).
    emulation:
        Plain-dict :class:`~repro.memory.emulated.EmulationConfig`
        knobs for the emulated backend (replica count, link model,
        replica crashes); only valid with ``memory="emulated"``.
    consistency:
        Consistency level of the emulated registers (``"regular"`` or
        ``"atomic"``; see
        :data:`repro.memory.emulated.CONSISTENCY_LEVELS`).  A non-None
        value overrides the ``consistency`` key of ``emulation`` and is
        only valid with ``memory="emulated"`` -- the shared backend's
        instantaneous registers are atomic by construction, so forcing
        a level onto it would be dead configuration.
    membership:
        Dynamic-membership mode of the emulated replica set
        (:data:`repro.memory.membership.MEMBERSHIP_MODES`): ``"none"``
        strips any membership plan from ``emulation`` (the churn-free
        control) and ``"churn"`` installs the canonical
        :func:`~repro.memory.membership.churn_plan` replace-one-replica
        reconfiguration scaled to the horizon.  A non-None value
        overrides the ``membership_plan`` key of ``emulation`` and is
        only valid with ``memory="emulated"`` -- the shared backend has
        no replica set to reconfigure.
    """

    def __init__(
        self,
        algorithm_cls: Type[OmegaAlgorithm],
        n: int,
        *,
        seed: int = 0,
        horizon: float = 2000.0,
        delay_model: Optional[StepDelayModel] = None,
        timer_behaviors: Optional[Dict[int, TimerBehavior]] = None,
        crash_plan: Optional[CrashPlan] = None,
        sample_interval: float = 5.0,
        snapshot_interval: Optional[float] = None,
        disk: Optional[Disk] = None,
        scramble: Optional[Callable[[SharedMemory, Any], None]] = None,
        algo_config: Optional[Dict[str, Any]] = None,
        log_reads: bool = True,
        trace_events: bool = True,
        memory: str = "shared",
        emulation: Optional[Dict[str, Any]] = None,
        consistency: Optional[str] = None,
        membership: Optional[str] = None,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two processes")
        if memory == "emulated" and disk is not None:
            raise ValueError(
                "the emulated backend and the SAN disk model both make register "
                "accesses interval operations; pick one"
            )
        if consistency is not None:
            if memory != "emulated":
                raise ValueError(
                    "consistency is an axis of the emulated backend; "
                    "pass memory='emulated' or drop the option"
                )
            emulation = dict(emulation or {})
            emulation["consistency"] = consistency
        if membership is not None:
            from repro.memory.membership import MEMBERSHIP_MODES, churn_plan

            if memory != "emulated":
                raise ValueError(
                    "membership is an axis of the emulated backend; "
                    "pass memory='emulated' or drop the option"
                )
            if membership not in MEMBERSHIP_MODES:
                raise ValueError(
                    f"unknown membership mode {membership!r}; "
                    f"choose from {list(MEMBERSHIP_MODES)}"
                )
            emulation = dict(emulation or {})
            if membership == "none":
                emulation["membership_plan"] = []
            else:  # churn
                replicas = int(emulation.get("replicas", 3))
                emulation["membership_plan"] = churn_plan(
                    replicas, horizon
                ).to_jsonable()
        self.algorithm_cls = algorithm_cls
        self.n = n
        self.seed = seed
        self.horizon = horizon
        self.sample_interval = sample_interval
        self.snapshot_interval = snapshot_interval
        self.disk = disk
        self.rng = RngRegistry(seed)

        self.sim = Simulator(trace_events=trace_events)
        self.memory_backend = memory
        self.memory = create_memory(
            memory,
            clock=lambda: self.sim.now,
            log_reads=log_reads,
            sim=self.sim,
            rng=self.rng,
            emulation=emulation,
        )
        self.delay_model: StepDelayModel = delay_model or UniformDelay(self.rng, 0.5, 1.5)
        self.crash_plan = crash_plan or CrashPlan.none(n)
        self.trace = RunTrace()
        config = dict(algo_config or {})

        behaviors: Dict[int, TimerBehavior] = dict(timer_behaviors or {})
        for pid in range(n):
            if pid not in behaviors:
                behaviors[pid] = AsymptoticallyWellBehavedTimer(
                    LinearF(1.0), self.rng, chaos_until=0.0, jitter=0.25
                )
        self.timer_service = TimerService(self.sim, behaviors)

        shared = algorithm_cls.create_shared(self.memory, n, config)
        if scramble is not None:
            scramble(self.memory, self.rng.stream("scramble"))
        self.algorithms: List[OmegaAlgorithm] = []
        for pid in range(n):
            ctx = AlgorithmContext(
                pid=pid,
                n=n,
                clock=lambda: self.sim.now,
                rng=self.rng.stream(f"algo:{pid}"),
                config=config,
            )
            self.algorithms.append(algorithm_cls(ctx, shared))
        self.runtimes = [ProcessRuntime(self, pid, alg) for pid, alg in enumerate(self.algorithms)]
        self.snapshots: List[Tuple[float, Tuple[Tuple[str, Any], ...]]] = []

    # ------------------------------------------------------------------
    def _install_crashes(self) -> None:
        for pid in range(self.n):
            t = self.crash_plan.crash_time(pid)
            if t <= self.horizon:
                runtime = self.runtimes[pid]

                def crash(rt: ProcessRuntime = runtime, when: float = t) -> None:
                    rt.crash()
                    self.trace.record(when, "crash", pid=rt.pid)

                self.sim.schedule_at(t, crash, kind="crash", pid=pid)

    def _sample(self) -> None:
        now = self.sim.now
        record = self.trace.record_leader_sample
        algorithms = self.algorithms
        for pid, runtime in enumerate(self.runtimes):
            if not runtime.crashed:
                record(now, pid, algorithms[pid].peek_leader())
        nxt = now + self.sample_interval
        if nxt <= self.horizon:
            self.sim.schedule_at(nxt, self._sample, kind="sample")

    def _snapshot(self) -> None:
        assert self.snapshot_interval is not None
        self.snapshots.append((self.sim.now, self.memory.snapshot()))
        nxt = self.sim.now + self.snapshot_interval
        if nxt <= self.horizon:
            self.sim.schedule_at(nxt, self._snapshot, kind="snapshot")

    # ------------------------------------------------------------------
    def execute(self, max_events: Optional[int] = None) -> RunResult:
        """Run to the horizon and return the result bundle."""
        self._install_crashes()
        if isinstance(self.memory, EmulatedMemory):
            # Seed the replicas from the (possibly scrambled) initial
            # register values and schedule replica crashes.
            self.memory.start(self.horizon)
        for runtime in self.runtimes:
            runtime.start()
        self.sim.schedule_at(0.0, self._sample, kind="sample")
        if self.snapshot_interval is not None:
            self.sim.schedule_at(0.0, self._snapshot, kind="snapshot")
        self.sim.run(until=self.horizon, max_events=max_events)
        # Final observer sample at the horizon.
        for pid, runtime in enumerate(self.runtimes):
            if not runtime.crashed:
                self.trace.record_leader_sample(
                    self.horizon, pid, self.algorithms[pid].peek_leader()
                )
        return RunResult(
            algorithm_name=self.algorithm_cls.display_name,
            n=self.n,
            horizon=self.horizon,
            seed=self.seed,
            trace=self.trace,
            memory=self.memory,
            sim=self.sim,
            crash_plan=self.crash_plan,
            algorithms=self.algorithms,
            timer_service=self.timer_service,
            disk=self.disk,
            snapshots=self.snapshots,
            memory_backend=self.memory_backend,
        )


__all__ = ["ProcessRuntime", "Run", "RunResult"]
