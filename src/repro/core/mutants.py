"""Lower-bound mutants: Lemmas 5 and 6 as falsification experiments.

The paper's lower bounds are indistinguishability proofs over *any*
algorithm; an implementation cannot re-prove them, but it can exhibit
exactly the failure the proofs predict:

* **Lemma 5** -- the elected leader must write forever.
  :class:`MutedLeaderOmega` is Algorithm 1 whose designated process
  silently *stops writing* ``PROGRESS`` (and everything else) after a
  chosen time while still believing it leads.  The proof's run ``R'``
  (where the leader crashed instead) is indistinguishable to everyone
  else, so the followers eventually suspect and elect someone new --
  the mutant run loses Eventual Leadership exactly as predicted.

* **Lemma 6** -- every other correct process must read forever.
  :class:`BlindProcessOmega` makes one follower *stop reading* after a
  chosen time (it keeps answering ``leader()`` from stale local data).
  Crash the leader after that moment: the blind process keeps
  outputting the dead leader forever while the rest move on --
  violating Eventual Leadership, as the proof's indistinguishability
  argument demands.

Mutants consult the virtual clock, which real algorithms must not do --
they are adversarial test fixtures, not algorithms.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.algorithm1 import WriteEfficientOmega
from repro.core.interfaces import LocalStep, ReadReg, SetTimer, Task, WriteReg


class MutedLeaderOmega(WriteEfficientOmega):
    """Algorithm 1, but the configured pid stops all writes after
    ``mute_after`` (config keys ``muted_pid``, ``mute_after``).

    The muted process keeps *executing* (it still evaluates
    ``leader()``, still reads) -- it only suppresses its writes, which
    is the precise behaviour Lemma 5's contradiction hypothesizes.
    """

    display_name = "mutant-muted-leader"

    @property
    def _muted(self) -> bool:
        return (
            self.pid == self.ctx.config.get("muted_pid", 0)
            and self.ctx.clock() >= self.ctx.config.get("mute_after", 0.0)
        )

    def main_task(self) -> Task:
        """Algorithm 1's T2, except the muted pid stops writing
        ``PROGRESS``/``STOP`` after ``mute_after`` (the injected fault)."""
        i = self.pid
        while True:
            ld = yield from self._leader_query()
            while ld == i:
                if self._muted:
                    yield LocalStep()  # the write "happens" locally only
                else:
                    self._my_progress += 1
                    yield WriteReg(self.shared.progress.register(i), self._my_progress)
                    if self._my_stop:
                        self._my_stop = False
                        yield WriteReg(self.shared.stop.register(i), False)
                ld = yield from self._leader_query()
            if not self._my_stop and not self._muted:
                self._my_stop = True
                yield WriteReg(self.shared.stop.register(i), True)

    def timer_task(self) -> Task:
        """Algorithm 1's T3, but the muted pid never writes suspicions."""
        if not self._muted:
            yield from super().timer_task()
            return
        # Muted: perform the checks but never write a suspicion.
        i, n = self.pid, self.n
        for k in range(n):
            if k == i:
                continue
            stop_k = yield ReadReg(self.shared.stop.register(k))
            progress_k = yield ReadReg(self.shared.progress.register(k))
            if progress_k != self.last[k]:
                self.candidates.add(k)
                self.last[k] = progress_k
            elif stop_k:
                self.candidates.discard(k)
            elif k in self.candidates:
                self.candidates.discard(k)  # suspicion not published
        yield SetTimer(self._next_timeout())


class BlindProcessOmega(WriteEfficientOmega):
    """Algorithm 1, but the configured pid stops reading shared memory
    after ``blind_after`` (config keys ``blind_pid``, ``blind_after``).

    While blind, ``leader()`` is answered from the last suspicion
    values the process read, and the monitoring task burns local steps
    instead of reads -- so a leader crash after ``blind_after`` is
    invisible to it, exactly Lemma 6's scenario.
    """

    display_name = "mutant-blind-process"

    def __init__(self, ctx: Any, shared: Any) -> None:
        super().__init__(ctx, shared)
        # Cache of the last full suspicion sums this process computed.
        self._cached_susp: dict[int, int] = {k: 0 for k in range(self.n)}
        self._cached_leader: Optional[int] = None

    @property
    def _blind(self) -> bool:
        return (
            self.pid == self.ctx.config.get("blind_pid", 1)
            and self.ctx.clock() >= self.ctx.config.get("blind_after", 0.0)
        )

    def _leader_query(self) -> Task:
        if not self._blind:
            leader = yield from super()._leader_query()
            self._cached_leader = leader
            return leader
        yield LocalStep()  # an invocation still takes a step
        self._note_leader_invocation(0)
        if self._cached_leader is not None:
            return self._cached_leader
        return self.pid

    def timer_task(self) -> Task:
        """Algorithm 1's T3 until blindness strikes; read-free after."""
        if not self._blind:
            yield from super().timer_task()
            return
        # Blind: no reads; just burn a step per peer and re-arm.
        for k in range(self.n):
            if k != self.pid:
                yield LocalStep()
        yield SetTimer(self._next_timeout())

    def peek_leader(self) -> int:
        """The frozen pre-blindness answer once blind, else live."""
        if self._blind and self._cached_leader is not None:
            return self._cached_leader
        leader = super().peek_leader()
        self._cached_leader = leader
        return leader


__all__ = ["BlindProcessOmega", "MutedLeaderOmega"]
