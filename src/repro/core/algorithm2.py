"""Algorithm 2 (paper Figure 5): Omega with bounded shared memory.

The unbounded ``PROGRESS[n]`` array of Algorithm 1 and the local
``last_i[n]`` arrays are replaced by two boolean matrices implementing a
per-pair *hand-shake*:

* ``PROGRESS[n][n]`` -- booleans; entry ``(i, k)`` owned by ``p_i``.
  ``p_i`` signals ``p_k`` it is alive by making ``PROGRESS[i][k]``
  *differ* from ``LAST[i][k]`` (line 8.R2: ``PROGRESS[i][k] <-
  not LAST[i][k]``; the original PDF's negation glyph is lost in the
  text extraction, but the hand-shake semantics in Section 4.2 -- raise
  a signal, partner cancels it -- force it).
* ``LAST[n][n]`` -- booleans; entry ``(i, k)`` owned by ``p_k`` (the
  *column* process -- the partner, not the row process).  ``p_k``
  acknowledges by copying: ``LAST[i][k] <- PROGRESS[i][k]``.

``SUSPICIONS`` and ``STOP`` are exactly as in Algorithm 1.  A signal
from ``p_i`` to ``p_k`` is *pending* iff ``PROGRESS[i][k] !=
LAST[i][k]``; the test at line 17.R1 is that inequality.

Every shared variable is bounded (Theorem 6: booleans, plus the
Theorem 2 argument for ``SUSPICIONS``), and after stabilization only
``PROGRESS[ell][i]`` (written by the leader) and ``LAST[ell][i]``
(written by each ``p_i``) are still written (Theorem 7) -- the price
Theorem 5 proves unavoidable: with bounded memory, *all* correct
processes keep writing forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.core.interfaces import (
    AlgorithmContext,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    Task,
    WriteReg,
)
from repro.core.lexmin import lexmin_pair
from repro.memory.arrays import RegisterArray, RegisterMatrix
from repro.memory.memory import SharedMemory


@dataclass
class Algorithm2Shared:
    """Shared-register layout of Algorithm 2."""

    suspicions: RegisterMatrix  # SUSPICIONS[n][n], row-owned, non-critical
    progress: RegisterMatrix  # PROGRESS[n][n] booleans, row-owned, critical
    last: RegisterMatrix  # LAST[n][n] booleans, COLUMN-owned, non-critical
    stop: RegisterArray  # STOP[n] booleans, self-owned, critical
    n: int


class BoundedOmega(OmegaAlgorithm):
    """Per-process instance of the Figure 5 algorithm."""

    display_name = "alg2-bounded"
    uses_timer = True
    requires_assumption = "awb"
    # Theorems 3/4 are deliberately traded away: bounded memory forces
    # every correct process to write forever (Theorem 5 / Corollary 1).
    claimed_theorems = frozenset({1, 2})

    def __init__(self, ctx: AlgorithmContext, shared: Algorithm2Shared) -> None:
        super().__init__(ctx, shared)
        i, n = self.pid, self.n
        initial = ctx.config.get("initial_candidates")
        self.candidates: Set[int] = set(initial) | {i} if initial is not None else set(range(n))
        # Local copies of owned registers (Section 3.2 remark):
        # row i of PROGRESS, column i of LAST, STOP[i], row i of SUSPICIONS.
        self._my_progress: List[bool] = [bool(shared.progress.peek(i, k)) for k in range(n)]
        self._my_last: List[bool] = [bool(shared.last.peek(k, i)) for k in range(n)]
        self._my_stop: bool = bool(shared.stop.peek(i))
        self._my_suspicions: List[int] = [shared.suspicions.peek(i, k) for k in range(n)]

    # ------------------------------------------------------------------
    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> Algorithm2Shared:
        """Lay out Figure 5's registers: ``SUSPICIONS``, the boolean
        ``PROGRESS``/``LAST`` hand-shake matrices and ``STOP``."""
        return Algorithm2Shared(
            suspicions=memory.create_matrix("SUSPICIONS", n, initial=0, critical=False),
            progress=memory.create_matrix("PROGRESS", n, initial=False, critical=True),
            last=memory.create_matrix(
                "LAST", n, initial=False, critical=False, owner_of=lambda row, col: col
            ),
            stop=memory.create_array("STOP", n, initial=True, critical=True),
            n=n,
        )

    # ------------------------------------------------------------------
    # Task T1 -- leader() (lines 1-5, unchanged from Algorithm 1)
    # ------------------------------------------------------------------
    def _leader_query(self) -> Task:
        ops = 0
        susp: Dict[int, int] = {}
        for k in sorted(self.candidates):
            total = self._my_suspicions[k]
            for j in range(self.n):
                if j == self.pid:
                    continue
                total += yield ReadReg(self.shared.suspicions.register(j, k))  # line 3
                ops += 1
            susp[k] = total
        _, leader = lexmin_pair((susp[k], k) for k in susp)  # line 4
        self._note_leader_invocation(ops)
        return leader

    def leader_query(self):
        """Public task ``T1`` (see :class:`OmegaAlgorithm.leader_query`)."""
        return self._leader_query()

    # ------------------------------------------------------------------
    # Task T2 -- main loop (lines 6-12 with 8.R1-8.R3)
    # ------------------------------------------------------------------
    def main_task(self) -> Task:
        """Task T2 (lines 6-12 with 8.R1-8.R3): while leader, raise the
        boolean hand-shake flag toward every follower."""
        i = self.pid
        while True:  # line 6
            ld = yield from self._leader_query()
            while ld == i:  # line 7
                for k in range(self.n):  # line 8.R1
                    if k == i:
                        continue
                    last_ik = yield ReadReg(self.shared.last.register(i, k))  # owned by p_k
                    raised = not bool(last_ik)
                    self._my_progress[k] = raised
                    yield WriteReg(self.shared.progress.register(i, k), raised)  # line 8.R2
                if self._my_stop:  # line 9
                    self._my_stop = False
                    yield WriteReg(self.shared.stop.register(i), False)
                ld = yield from self._leader_query()
            if not self._my_stop:  # line 11
                self._my_stop = True
                yield WriteReg(self.shared.stop.register(i), True)

    # ------------------------------------------------------------------
    # Task T3 -- timer handler (lines 13-27 with 16.R1/17.R1/19.R1)
    # ------------------------------------------------------------------
    def timer_task(self) -> Task:
        """Task T3 (lines 13-27 with 16.R1/17.R1/19.R1): acknowledge
        pending hand-shake signals, suspect the silent candidates."""
        i, n = self.pid, self.n
        for k in range(n):  # line 14
            if k == i:
                continue
            stop_k = yield ReadReg(self.shared.stop.register(k))  # line 15
            progress_k = yield ReadReg(self.shared.progress.register(k, i))  # line 16.R1
            progress_k = bool(progress_k)
            if progress_k != self._my_last[k]:  # line 17.R1: pending signal?
                self.candidates.add(k)  # line 18
                self._my_last[k] = progress_k
                yield WriteReg(self.shared.last.register(k, i), progress_k)  # line 19.R1
            elif stop_k:  # line 20
                self.candidates.discard(k)  # line 21
            elif k in self.candidates:  # line 22
                self._my_suspicions[k] += 1
                yield WriteReg(self.shared.suspicions.register(i, k), self._my_suspicions[k])  # line 23
                self.candidates.discard(k)  # line 24
        yield SetTimer(self._next_timeout())  # line 27

    def _next_timeout(self) -> float:
        """Line 27: ``max_k SUSPICIONS[i][k] + 1`` from local copies."""
        return float(max(self._my_suspicions) + 1)

    def initial_timeout(self) -> Optional[float]:
        """First timer arming, by the same line-27 rule."""
        return self._next_timeout()

    # ------------------------------------------------------------------
    def peek_leader(self) -> int:
        """Uncounted ``leader()`` on current register values."""
        pairs = []
        for k in sorted(self.candidates):
            total = sum(self.shared.suspicions.peek(j, k) for j in range(self.n))
            pairs.append((total, k))
        return lexmin_pair(pairs)[1]


__all__ = ["Algorithm2Shared", "BoundedOmega"]
