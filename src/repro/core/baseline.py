"""Baseline: an Omega for *eventually synchronous* shared memory.

The only prior shared-memory Omega the paper cites is Guerraoui &
Raynal's SEUS 2006 protocol [13], which assumes the whole system is
eventually synchronous: "there is a time after which there are a lower
bound and an upper bound for any process to execute a local step, or a
shared memory access" -- a strictly stronger assumption than AWB, where
only one process must become timely.

This module implements a faithful representative of that class: the
classic heartbeat / adaptive-timeout construction.

* Every process increments its own ``HB[i]`` forever (so *all*
  processes write the shared memory forever, and ``HB`` is unbounded --
  both costs Algorithm 1 avoids).
* Every process periodically checks every other heartbeat; if ``HB[k]``
  did not move for ``patience[k]`` consecutive checks, ``k`` is
  suspected.  When a suspected process shows progress the false
  suspicion doubles ``patience[k]`` (the usual adaptive-timeout trick,
  mirroring [2, 17]).
* ``leader() = min(id not currently suspected)``.

Under eventual synchrony the doubling stabilizes and the smallest
correct id wins.  Under AWB-only scenarios (followers stay arbitrarily
asynchronous) the baseline's output can keep changing -- the comparison
benches demonstrate precisely that assumption gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.interfaces import (
    AlgorithmContext,
    LocalStep,
    OmegaAlgorithm,
    ReadReg,
    SetTimer,
    Task,
    WriteReg,
)
from repro.memory.arrays import RegisterArray
from repro.memory.memory import SharedMemory


@dataclass
class BaselineShared:
    """Shared layout: a single heartbeat array."""

    heartbeat: RegisterArray  # HB[n], self-owned, critical
    n: int


class EventuallySynchronousOmega(OmegaAlgorithm):
    """Heartbeat + adaptive timeout leader election.

    Config keys:

    ``check_timeout`` (default ``4.0``)
        Timer value between monitoring sweeps.
    ``initial_patience`` (default ``2``)
        Initial number of unchanged sweeps before suspecting.
    """

    display_name = "baseline-ev-sync"
    uses_timer = True
    requires_assumption = "ev-sync"
    # Eventual leadership only: HB grows unboundedly for every process
    # and everyone writes forever -- Theorems 2-4 are not claimed.
    claimed_theorems = frozenset({1})

    def __init__(self, ctx: AlgorithmContext, shared: BaselineShared) -> None:
        super().__init__(ctx, shared)
        n = self.n
        self.check_timeout: float = float(ctx.config.get("check_timeout", 4.0))
        initial_patience: int = int(ctx.config.get("initial_patience", 2))
        self._my_hb: int = shared.heartbeat.peek(self.pid)
        self.last_seen: List[Optional[int]] = [None] * n
        self.misses: List[int] = [0] * n
        self.patience: List[int] = [initial_patience] * n
        self.suspected: List[bool] = [False] * n

    @classmethod
    def create_shared(cls, memory: SharedMemory, n: int, config: Dict[str, Any]) -> BaselineShared:
        """Lay out the heartbeat array (critical: timeliness carries
        the eventual-synchrony assumption)."""
        return BaselineShared(
            heartbeat=memory.create_array("HB", n, initial=0, critical=True),
            n=n,
        )

    # ------------------------------------------------------------------
    def main_task(self) -> Task:
        """Increment the own heartbeat forever -- every process writes
        the shared memory forever, by design of this algorithm class."""
        i = self.pid
        while True:
            self._my_hb += 1
            yield WriteReg(self.shared.heartbeat.register(i), self._my_hb)

    def timer_task(self) -> Task:
        """Check every peer's heartbeat; suspect after ``patience``
        consecutive misses, doubling patience on false suspicion."""
        i, n = self.pid, self.n
        for k in range(n):
            if k == i:
                continue
            hb_k = yield ReadReg(self.shared.heartbeat.register(k))
            if hb_k != self.last_seen[k]:
                if self.suspected[k]:
                    # False suspicion: back off.
                    self.patience[k] *= 2
                    self.suspected[k] = False
                self.misses[k] = 0
                self.last_seen[k] = hb_k
            else:
                self.misses[k] += 1
                if self.misses[k] >= self.patience[k]:
                    self.suspected[k] = True
        yield SetTimer(self.check_timeout)

    def initial_timeout(self) -> Optional[float]:
        """Fixed monitoring period (no adaptive growth: the point)."""
        return self.check_timeout

    def leader_query(self) -> Task:
        """Public task ``T1``: this algorithm answers from local
        suspicion state, so the invocation costs one local step."""
        yield LocalStep()
        self._note_leader_invocation(0)
        return self.peek_leader()

    # ------------------------------------------------------------------
    def peek_leader(self) -> int:
        """``min(id not suspected)``; self is never suspected."""
        for k in range(self.n):
            if k == self.pid or not self.suspected[k]:
                return k
        return self.pid  # unreachable: the loop always hits self.pid


__all__ = ["BaselineShared", "EventuallySynchronousOmega"]
