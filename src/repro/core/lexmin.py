"""The paper's ``lex min`` tie-breaking rule.

``leader()`` returns the *least suspected* candidate; ties on the
suspicion count are broken by process identity:

    ``(a, i) < (b, j)  iff  a < b  or  (a = b and i < j)``

which is exactly lexicographic order on ``(count, id)`` pairs.  Kept in
its own module because three algorithms and the observer all share it,
and because it is a natural target for property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple


def lexmin_pair(pairs: Iterable[Tuple[int, int]]) -> Tuple[int, int]:
    """Return the lexicographically smallest ``(count, id)`` pair.

    Raises ``ValueError`` on an empty iterable (the algorithms guarantee
    ``i in candidates_i``, so their calls are never empty).
    """
    best: Tuple[int, int] | None = None
    for pair in pairs:
        if best is None or pair < best:
            best = pair
    if best is None:
        raise ValueError("lexmin of an empty collection")
    return best


def least_suspected(suspicions: Mapping[int, int]) -> int:
    """The id minimising ``(suspicions[id], id)`` -- the elected leader.

    >>> least_suspected({2: 5, 0: 7, 1: 5})
    1
    """
    count, pid = lexmin_pair((count, pid) for pid, count in suspicions.items())
    return pid


__all__ = ["least_suspected", "lexmin_pair"]
