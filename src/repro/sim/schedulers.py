"""Step-delay models: how asynchrony (and assumption AWB1) is realized.

In the paper's model a process executes a sequence of *steps* (one
shared-memory access or local operation per step) with arbitrary finite
delays between consecutive steps.  A *step-delay model* is a function
``delay(pid, now) -> float`` giving the delay the scheduler inserts
after a process's current step.

Assumption **AWB1** -- "there are a time tau_1, a bound beta and a
correct process p_ell such that after tau_1 any two consecutive
accesses by p_ell to its critical registers complete within beta" --
is realized by :class:`PartiallySynchronousDelay`: after its ``gst``
(global stabilization time, the model's tau_1) the designated process's
per-step delays fall inside a bounded interval.  Since the algorithms
execute a bounded number of steps between consecutive critical-register
accesses, this bounds the critical-access gap, i.e. yields the paper's
beta.  All other processes may remain arbitrarily asynchronous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Protocol, Sequence

from repro.sim.rng import RngRegistry


class StepDelayModel(Protocol):
    """Protocol for per-step scheduling delays."""

    def delay(self, pid: int, now: float) -> float:
        """Return the delay inserted after the step ``pid`` takes at ``now``."""
        ...


@dataclass
class FixedDelay:
    """Every step of every process takes exactly ``step`` time units.

    This is the fully synchronous special case -- useful as a control in
    experiments and for making hand-computed traces in unit tests.
    """

    step: float = 1.0

    def delay(self, pid: int, now: float) -> float:
        """The fixed step duration (rejects a non-positive config)."""
        if self.step <= 0:
            raise ValueError("step delay must be positive")
        return self.step


class UniformDelay:
    """Steps take a uniformly random time in ``[lo, hi]`` per process.

    Each process draws from its own named stream so schedules of
    different processes are independent yet reproducible.
    """

    def __init__(self, rng: RngRegistry, lo: float = 0.5, hi: float = 1.5) -> None:
        if not (0 < lo <= hi):
            raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
        self.lo = lo
        self.hi = hi
        self._rng = rng

    def delay(self, pid: int, now: float) -> float:
        """A uniform draw in ``[lo, hi]`` from the pid's stream."""
        return self._rng.stream(f"delay:{pid}").uniform(self.lo, self.hi)


class HeavyTailDelay:
    """Pareto-tailed step delays: mostly fast, occasionally very slow.

    Models the "arbitrary but finite" delays of a genuinely asynchronous
    process: there is no bound that holds for all steps, but every delay
    is finite.  ``cap`` bounds the tail so simulated runs still converge
    within their horizon (delays stay *finite* either way; the cap only
    controls experiment duration, not the asynchrony semantics).
    """

    def __init__(
        self,
        rng: RngRegistry,
        scale: float = 0.5,
        shape: float = 1.3,
        cap: float = 200.0,
    ) -> None:
        if scale <= 0 or shape <= 0 or cap <= 0:
            raise ValueError("scale, shape and cap must be positive")
        self.scale = scale
        self.shape = shape
        self.cap = cap
        self._rng = rng

    def delay(self, pid: int, now: float) -> float:
        """A capped Pareto draw: mostly fast, occasionally very slow."""
        u = self._rng.stream(f"delay:{pid}").random()
        # Inverse-CDF sample of a Pareto(shape) scaled by `scale`.
        raw = self.scale / max(1e-12, (1.0 - u)) ** (1.0 / self.shape)
        return min(raw, self.cap)


class PartiallySynchronousDelay:
    """AWB1: the designated process becomes timely after ``gst``.

    Parameters
    ----------
    base:
        Model used for every process before ``gst`` and for
        non-designated processes forever (the "fully asynchronous" part
        of AWB: nobody but ``p_ell`` is required to be timely).
    timely_pids:
        Processes whose speed is lower-bounded after ``gst`` -- usually a
        single pid, the paper's ``p_ell``.
    gst:
        The stabilization time tau_1.
    timely_lo / timely_hi:
        Per-step delay bounds for timely processes after ``gst``.  The
        induced bound beta on consecutive critical accesses is
        ``timely_hi * (steps between critical accesses)``, which the
        algorithms keep constant.
    """

    def __init__(
        self,
        base: StepDelayModel,
        timely_pids: Iterable[int],
        gst: float,
        rng: RngRegistry,
        timely_lo: float = 0.5,
        timely_hi: float = 1.0,
    ) -> None:
        if not (0 < timely_lo <= timely_hi):
            raise ValueError("need 0 < timely_lo <= timely_hi")
        if gst < 0:
            raise ValueError("gst must be non-negative")
        self.base = base
        self.timely_pids = frozenset(timely_pids)
        self.gst = gst
        self.timely_lo = timely_lo
        self.timely_hi = timely_hi
        self._rng = rng

    def delay(self, pid: int, now: float) -> float:
        """Timely band for designated pids after gst; ``base`` otherwise."""
        if pid in self.timely_pids and now >= self.gst:
            return self._rng.stream(f"timely:{pid}").uniform(self.timely_lo, self.timely_hi)
        return self.base.delay(pid, now)


@dataclass(frozen=True)
class StallWindow:
    """A scheduling stall: ``pid`` takes no step inside ``[start, end)``."""

    pid: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("stall window must have positive length")


class AdversarialStallDelay:
    """Wrap a model and inject long, targeted stalls.

    The adversary used by the lower-bound experiments (paper Section 4.1,
    Figure 4): chosen processes are frozen over chosen windows, which is
    legal behaviour for an asynchronous process.  A stalled process's
    next step is pushed to the end of the stall window.
    """

    def __init__(self, base: StepDelayModel, stalls: Sequence[StallWindow]) -> None:
        self.base = base
        self.stalls = sorted(stalls, key=lambda s: (s.pid, s.start))

    def delay(self, pid: int, now: float) -> float:
        """The base delay, pushed past any stall window it lands in."""
        d = self.base.delay(pid, now)
        wake = now + d
        for stall in self.stalls:
            if stall.pid == pid and stall.start <= wake < stall.end:
                wake = stall.end
        return wake - now


class CompositeDelay:
    """Dispatch to a per-pid model, with a default.

    Lets scenarios give one process (say, a slow follower) a different
    asynchrony profile than everyone else.
    """

    def __init__(self, default: StepDelayModel, per_pid: Optional[Dict[int, StepDelayModel]] = None) -> None:
        self.default = default
        self.per_pid = dict(per_pid or {})

    def delay(self, pid: int, now: float) -> float:
        """Delegate to the pid's own model, or the default."""
        model = self.per_pid.get(pid, self.default)
        return model.delay(pid, now)


class GstRampDelay:
    """A GST *ramp*: asynchrony decays linearly toward ``gst``.

    Instead of the sharp before/after cut of
    :class:`PartiallySynchronousDelay`, per-step delays start inflated
    by ``start_scale`` and shrink linearly until, at ``gst``, every
    process (or only ``timely_pids`` when given) draws from the timely
    band ``[lo, hi]`` forever.  Satisfies AWB1 by construction -- the
    adversarial content is the long, slowly improving prefix, which
    feeds the timers a moving target of false-suspicion intervals.
    """

    def __init__(
        self,
        rng: RngRegistry,
        gst: float,
        start_scale: float = 8.0,
        lo: float = 0.5,
        hi: float = 1.5,
        timely_pids: Optional[Iterable[int]] = None,
    ) -> None:
        if gst <= 0:
            raise ValueError("gst must be positive")
        if start_scale < 1.0:
            raise ValueError("start_scale must be >= 1")
        if not (0 < lo <= hi):
            raise ValueError("need 0 < lo <= hi")
        self.gst = gst
        self.start_scale = start_scale
        self.lo, self.hi = lo, hi
        self.timely_pids = None if timely_pids is None else frozenset(timely_pids)
        self._rng = rng

    def delay(self, pid: int, now: float) -> float:
        """A timely draw scaled by the linearly decaying ramp factor."""
        base = self._rng.stream(f"delay:{pid}").uniform(self.lo, self.hi)
        if self.timely_pids is not None and pid not in self.timely_pids:
            # Non-designated processes stay at the ramp's start forever
            # (they are never required to become timely, so they never
            # enter the ramp either).
            return base * self.start_scale
        if now >= self.gst:
            return base
        remaining = 1.0 - now / self.gst
        return base * (1.0 + (self.start_scale - 1.0) * remaining)


class AlternatingBurstDelay:
    """Alternating asynchrony bursts: calm phases and slow phases cycle.

    Every process alternates between a calm band and a burst band on a
    fixed ``period``; after ``gst`` the processes in ``timely_pids``
    drop out of the cycle and stay calm forever (that is AWB1), while
    everyone else keeps bursting for the whole run -- legal behaviour
    for an asynchronous process, and a hard target for timeout tuning
    because follower speeds never settle.
    """

    def __init__(
        self,
        rng: RngRegistry,
        period: float = 400.0,
        burst_fraction: float = 0.5,
        calm_lo: float = 0.5,
        calm_hi: float = 1.5,
        burst_lo: float = 5.0,
        burst_hi: float = 20.0,
        timely_pids: Iterable[int] = (),
        gst: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if not (0 < calm_lo <= calm_hi) or not (0 < burst_lo <= burst_hi):
            raise ValueError("need 0 < lo <= hi for both bands")
        self.period = period
        self.burst_fraction = burst_fraction
        self.calm_lo, self.calm_hi = calm_lo, calm_hi
        self.burst_lo, self.burst_hi = burst_lo, burst_hi
        self.timely_pids = frozenset(timely_pids)
        self.gst = gst
        self._rng = rng

    def delay(self, pid: int, now: float) -> float:
        """Calm- or burst-band draw by cycle phase (timely pids exit at gst)."""
        stream = self._rng.stream(f"delay:{pid}")
        if pid in self.timely_pids and now >= self.gst:
            return stream.uniform(self.calm_lo, self.calm_hi)
        phase = (now % self.period) / self.period
        if phase < 1.0 - self.burst_fraction:
            return stream.uniform(self.calm_lo, self.calm_hi)
        return stream.uniform(self.burst_lo, self.burst_hi)


class ChurningTimelyDelay:
    """AWB1 with source churn: *which* process is timely keeps changing.

    Before ``settle_at`` the timely identity rotates through
    ``candidates`` every ``epoch`` time units (everyone else follows
    ``base``); from ``settle_at`` on, ``final_pid`` is timely forever.
    The churning prefix is the shared-memory analogue of the eventual
    t-source *source-set churn* of Aguilera et al. (see
    :class:`repro.netsim.network.SourceChurnLinks`): assumptions that
    only eventually pick their witness must tolerate arbitrarily long
    periods where the witness moves.
    """

    def __init__(
        self,
        base: StepDelayModel,
        candidates: Sequence[int],
        epoch: float,
        settle_at: float,
        final_pid: int,
        rng: RngRegistry,
        timely_lo: float = 0.5,
        timely_hi: float = 1.0,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate")
        if epoch <= 0 or settle_at < 0:
            raise ValueError("epoch must be positive and settle_at non-negative")
        if not (0 < timely_lo <= timely_hi):
            raise ValueError("need 0 < timely_lo <= timely_hi")
        self.base = base
        self.candidates = list(candidates)
        self.epoch = epoch
        self.settle_at = settle_at
        self.final_pid = final_pid
        self.timely_lo, self.timely_hi = timely_lo, timely_hi
        self._rng = rng

    def timely_at(self, now: float) -> int:
        """The identity that is timely at virtual time ``now``."""
        if now >= self.settle_at:
            return self.final_pid
        return self.candidates[int(now // self.epoch) % len(self.candidates)]

    def delay(self, pid: int, now: float) -> float:
        """Timely band for the epoch's rotating witness; ``base`` otherwise."""
        if pid == self.timely_at(now):
            return self._rng.stream(f"timely:{pid}").uniform(self.timely_lo, self.timely_hi)
        return self.base.delay(pid, now)


@dataclass
class RampDelay:
    """Delays that grow over time: ``base * (1 + rate * now)``.

    Used in negative tests: a process whose steps slow down without
    bound never satisfies AWB1, and a run where *every* process uses
    this model should not be required to elect a stable leader.
    """

    base: float = 1.0
    rate: float = 0.01

    def delay(self, pid: int, now: float) -> float:
        """``base * (1 + rate * now)`` -- grows without bound (violates AWB1)."""
        if self.base <= 0 or self.rate < 0:
            raise ValueError("base must be positive and rate non-negative")
        return self.base * (1.0 + self.rate * now)


def mean_delay(model: StepDelayModel, pid: int, now: float, samples: int = 256) -> float:
    """Empirical mean of a model's delay at a point in time (test helper)."""
    total = 0.0
    for _ in range(samples):
        d = model.delay(pid, now)
        if not math.isfinite(d) or d < 0:
            raise ValueError(f"model produced invalid delay {d}")
        total += d
    return total / samples


__all__ = [
    "AdversarialStallDelay",
    "AlternatingBurstDelay",
    "ChurningTimelyDelay",
    "CompositeDelay",
    "FixedDelay",
    "GstRampDelay",
    "HeavyTailDelay",
    "PartiallySynchronousDelay",
    "RampDelay",
    "StallWindow",
    "StepDelayModel",
    "UniformDelay",
    "mean_delay",
]
