"""Named, seeded random streams.

Every stochastic component of a run (each process's step-delay model,
each timer, the crash plan, the workload) draws from its *own* named
stream derived from the run seed.  This has two payoffs:

* **Reproducibility** -- a run is a pure function of ``(config, seed)``.
* **Insensitivity** -- adding a random draw to one component does not
  shift the sequence seen by any other component, so scenarios remain
  comparable across library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash()``, which is salted per interpreter).
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("crash").random()
    >>> b = RngRegistry(seed=7).stream("crash").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))


__all__ = ["RngRegistry", "derive_seed"]
