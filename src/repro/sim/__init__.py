"""Discrete-event simulation substrate.

The paper's system model -- the classical asynchronous crash-prone shared
memory model ``AS[n, t=n-1]`` enriched with the behavioural assumption
``AWB`` -- is a *logical* model: process steps may be delayed arbitrarily
(but finitely), register operations linearize at points in a global time
line, and timers realize durations that may misbehave for an arbitrarily
long prefix.  A deterministic discrete-event simulator reproduces exactly
that semantics while keeping every run a pure function of its seed, which
is what the correctness experiments need.  (Real Python threads would add
GIL-scheduling noise without adding fidelity; see DESIGN.md.)

Modules
-------
``events``
    The time-ordered event queue: plain tuple heap entries, stable
    within equal timestamps, with opt-in cancellation handles.
``kernel``
    The :class:`~repro.sim.kernel.Simulator`: virtual clock, callback
    scheduling, run-loop with stop predicates.
``schedulers``
    Step-delay models, including the partially-synchronous model that
    enforces assumption *AWB1* for a designated process.
``crash``
    Crash plans: which process crashes when.
``rng``
    Named, seeded random streams so independent components never share a
    random sequence.
``tracing``
    Structured run traces (leader samples, custom records).
"""

from repro.sim.crash import CrashPlan
from repro.sim.events import EventHandle, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import (
    AdversarialStallDelay,
    CompositeDelay,
    FixedDelay,
    HeavyTailDelay,
    PartiallySynchronousDelay,
    StepDelayModel,
    UniformDelay,
)
from repro.sim.tracing import RunTrace, TraceRecord

__all__ = [
    "AdversarialStallDelay",
    "CompositeDelay",
    "CrashPlan",
    "EventHandle",
    "EventQueue",
    "FixedDelay",
    "HeavyTailDelay",
    "PartiallySynchronousDelay",
    "RngRegistry",
    "RunTrace",
    "Simulator",
    "StepDelayModel",
    "TraceRecord",
    "UniformDelay",
]
