"""The discrete-event simulator kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Higher
layers (the process runner in :mod:`repro.core.runner`, the timer service
in :mod:`repro.timers.service`) schedule callbacks; the kernel advances
time to each event in order and fires it.

The kernel deliberately knows nothing about processes, registers or
timers -- it is a plain DES core, which keeps it easy to test in
isolation and reusable by every substrate.

Scheduling comes in two flavours: :meth:`Simulator.schedule_at` /
:meth:`Simulator.schedule_after` are the dominant schedule-and-fire path
and allocate nothing but the heap tuple; the ``*_cancellable`` variants
additionally allocate and return an
:class:`~repro.sim.events.EventHandle` for callers that may need to
disarm the event later (the timer service, the netsim timer table).
"""

from __future__ import annotations

from heapq import heappop
from typing import Callable, Optional

from repro.sim.events import _KIND_NAMES, EventHandle, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    trace_events:
        When true, keep a count per event kind (cheap observability used
        by tests and benches).

    Notes
    -----
    Time is a ``float`` number of abstract *time units*.  Nothing in the
    library interprets a unit as a second; the paper's model is untimed
    except for the AWB bounds, which are expressed in the same units.
    """

    def __init__(self, trace_events: bool = True) -> None:
        self._queue = EventQueue()
        # Direct reference to the queue's heap list for the fused
        # peek/pop run loop (the list identity is stable; see
        # EventQueue.clear).
        self._heap = self._queue._heap
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.events_skipped = 0
        self._trace_events = trace_events
        self.fired_by_kind: dict[str, int] = {}

    @property
    def trace_events(self) -> bool:
        """Whether per-kind event accounting is enabled."""
        return self._trace_events

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` at absolute virtual time ``time``.

        ``time`` may equal ``now`` (fires after currently-firing event)
        but may not precede it.  The fast path: no handle is created;
        use :meth:`schedule_at_cancellable` when the event may need to
        be disarmed.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        self._queue.push(time, kind, callback, pid=pid)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> None:
        """Schedule ``callback`` after a non-negative ``delay`` (no handle)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback, kind=kind, pid=pid)

    def schedule_at_cancellable(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellation handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push_cancellable(time, kind, callback, pid=pid)

    def schedule_after_cancellable(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Like :meth:`schedule_after`, but returns a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at_cancellable(self._now + delay, callback, kind=kind, pid=pid)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Fire events in order until a stop condition holds.

        Parameters
        ----------
        until:
            Inclusive virtual-time horizon.  Events scheduled strictly
            after it stay queued; the clock is advanced to ``until``.
        max_events:
            Safety valve on the number of events fired *by this
            invocation* (not the simulator-lifetime ``events_fired``
            counter, so repeated ``run()`` calls each get a fresh
            budget).
        stop_when:
            Optional predicate evaluated after every event.

        Returns
        -------
        float
            The virtual time when the loop returned.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        # Hoisted out of the loop: the hot path touches only locals and
        # two instance counters.  ``heap`` aliases the queue's list, so
        # callbacks that schedule new events grow it in place.
        heap = self._heap
        pop = heappop
        fired_by_kind = self.fired_by_kind if self._trace_events else None
        kind_names = _KIND_NAMES
        # ``fired`` shadows the cumulative counter in a local; the
        # attribute is kept in sync every event so callbacks and
        # ``stop_when`` predicates reading ``events_fired`` mid-run see
        # live values (as they did before the loop was fused).
        start = fired = self.events_fired
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                entry = pop(heap)
                self._now = entry[0]
                callback = entry[4]
                handle = entry[5]
                if callback is None or (handle is not None and handle.cancelled):
                    self.events_skipped += 1
                    continue
                callback()
                fired += 1
                self.events_fired = fired
                if fired_by_kind is not None:
                    kind = kind_names[entry[2]]
                    fired_by_kind[kind] = fired_by_kind.get(kind, 0) + 1
                if self._stopped:
                    break
                if max_events is not None and fired - start >= max_events:
                    break
                if stop_when is not None and stop_when():
                    break
            else:
                # Queue drained; advance the clock to the horizon if given.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)


__all__ = ["SimulationError", "Simulator"]
