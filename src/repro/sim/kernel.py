"""The discrete-event simulator kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Higher
layers (the process runner in :mod:`repro.core.runner`, the timer service
in :mod:`repro.timers.service`) schedule callbacks; the kernel advances
time to each event in order and fires it.

The kernel deliberately knows nothing about processes, registers or
timers -- it is a plain DES core, which keeps it easy to test in
isolation and reusable by every substrate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import EventHandle, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    trace_events:
        When true, keep a count per event kind (cheap observability used
        by tests and benches).

    Notes
    -----
    Time is a ``float`` number of abstract *time units*.  Nothing in the
    library interprets a unit as a second; the paper's model is untimed
    except for the AWB bounds, which are expressed in the same units.
    """

    def __init__(self, trace_events: bool = True) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_fired = 0
        self.events_skipped = 0
        self._trace_events = trace_events
        self.fired_by_kind: dict[str, int] = {}

    @property
    def trace_events(self) -> bool:
        """Whether per-kind event accounting is enabled."""
        return self._trace_events

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        ``time`` may equal ``now`` (fires after currently-firing event)
        but may not precede it.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, kind, callback, pid=pid)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: str = "event",
        pid: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, kind=kind, pid=pid)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Fire events in order until a stop condition holds.

        Parameters
        ----------
        until:
            Inclusive virtual-time horizon.  Events scheduled strictly
            after it stay queued; the clock is advanced to ``until``.
        max_events:
            Safety valve on the number of fired events.
        stop_when:
            Optional predicate evaluated after every event.

        Returns
        -------
        float
            The virtual time when the loop returned.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        # Hoisted out of the loop: with tracing off the hot path touches
        # neither the flag nor the per-kind dict.
        fired_by_kind = self.fired_by_kind if self._trace_events else None
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    self._now = until
                    break
                event, handle = self._queue.pop()
                self._now = event.time
                if handle.cancelled or event.callback is None:
                    self.events_skipped += 1
                    continue
                event.callback()
                self.events_fired += 1
                if fired_by_kind is not None:
                    fired_by_kind[event.kind] = fired_by_kind.get(event.kind, 0) + 1
                if self._stopped:
                    break
                if max_events is not None and self.events_fired >= max_events:
                    break
                if stop_when is not None and stop_when():
                    break
            else:
                # Queue drained; advance the clock to the horizon if given.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)


__all__ = ["SimulationError", "Simulator"]
